//! Quickstart: the pigeonring principle on all four τ-selection problems.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small seeded dataset for each problem, runs the pigeonhole
//! baseline (`l = 1`) and the pigeonring engine (`l > 1`) on the same
//! index, and prints the candidate reduction.

use pigeonring::core::viability::{find_prefix_viable, Direction, ThresholdScheme};
use pigeonring::datagen::{GraphConfig, SetConfig, StringConfig, VectorConfig};
use pigeonring::editdist::{GramOrder, QGramCollection, RingEdit};
use pigeonring::graph::RingGraph;
use pigeonring::hamming::{AllocationStrategy, RingHamming};
use pigeonring::setsim::{Collection, RingSetSim, Threshold};

fn main() {
    principle_demo();
    hamming_demo();
    setsim_demo();
    editdist_demo();
    graph_demo();
}

/// The raw principle (Example 1 of the paper): both box layouts total
/// 8 > 5 items, pass the pigeonhole filter, and are caught by the
/// pigeonring filter at chain length 2.
fn principle_demo() {
    println!("— the principle itself —");
    let scheme = ThresholdScheme::uniform(5i64, 5);
    for boxes in [[2i64, 1, 2, 2, 1], [2, 0, 3, 1, 2]] {
        let hole = find_prefix_viable(&boxes, &scheme, Direction::Le, 1).is_some();
        let ring = find_prefix_viable(&boxes, &scheme, Direction::Le, 2).is_some();
        println!("  boxes {boxes:?}: pigeonhole admits = {hole}, pigeonring (l=2) admits = {ring}");
    }
}

fn hamming_demo() {
    println!("— Hamming distance search (GPH vs Ring) —");
    let data = VectorConfig::gist_like(3000).generate();
    let q = data[42].clone();
    let mut eng = RingHamming::build(data, 16, AllocationStrategy::CostModel);
    let (tau, best_l) = (48u32, 5usize);
    let (res_hole, s_hole) = eng.search(&q, tau, 1);
    let (res_ring, s_ring) = eng.search(&q, tau, best_l);
    assert_eq!(res_hole, res_ring, "both engines are exact");
    println!(
        "  τ={tau}: {} results; candidates {} (pigeonhole) → {} (pigeonring l={best_l})",
        s_ring.results, s_hole.candidates, s_ring.candidates
    );
}

fn setsim_demo() {
    println!("— set similarity search (pkwise vs Ring) —");
    let coll = Collection::new(SetConfig::dblp_like(3000).generate());
    let q = coll.record(17).to_vec();
    let mut eng = RingSetSim::build(coll, Threshold::jaccard(0.8), 5);
    let (res_hole, s_hole) = eng.search(&q, 1);
    let (res_ring, s_ring) = eng.search(&q, 2);
    assert_eq!(res_hole, res_ring);
    println!(
        "  J ≥ 0.8: {} results; candidates {} (pkwise) → {} (Ring l=2)",
        s_ring.results, s_hole.candidates, s_ring.candidates
    );
}

fn editdist_demo() {
    println!("— string edit distance search (Pivotal vs Ring) —");
    let strings = StringConfig::imdb_like(3000).generate();
    let q = strings[7].clone();
    let coll = QGramCollection::build(strings, 2, GramOrder::Frequency);
    let mut eng = RingEdit::build(coll, 2);
    let (res_hole, s_hole) = eng.search(&q, 1);
    let (res_ring, s_ring) = eng.search(&q, 3);
    assert_eq!(res_hole, res_ring);
    println!(
        "  ed ≤ 2: {} results; candidates {} (pivotal prefix) → {} (Ring l=3)",
        s_ring.results, s_hole.candidates, s_ring.candidates
    );
}

fn graph_demo() {
    println!("— graph edit distance search (Pars vs Ring) —");
    let graphs = GraphConfig::aids_like(400).generate();
    let q = graphs[3].clone();
    let eng = RingGraph::build(graphs, 4);
    let (res_hole, s_hole) = eng.search(&q, 1);
    let (res_ring, s_ring) = eng.search(&q, 4);
    assert_eq!(res_hole, res_ring);
    println!(
        "  ged ≤ 4: {} results; candidates {} (Pars) → {} (Ring l=4)",
        s_ring.results, s_hole.candidates, s_ring.candidates
    );
}
