//! Entity resolution over person names — the paper's motivating
//! edit-distance application (§2.2: "the same entity may differ in
//! spellings or formats, e.g., al-Qaeda, al-Qaida, and al-Qa'ida. A
//! string similarity search with an edit distance threshold of 2 can
//! capture these alternative spellings").
//!
//! ```sh
//! cargo run --release --example entity_resolution
//! ```

use pigeonring::datagen::{sample_query_ids, StringConfig};
use pigeonring::editdist::{GramOrder, Pivotal, QGramCollection, RingEdit};

fn main() {
    // A registry of names with planted spelling variants.
    let names = StringConfig::imdb_like(30_000).generate();
    println!("registry: {} names (avg len ≈ 16)", names.len());

    let tau = 2usize; // the paper's alternative-spelling threshold
    let kappa = 2usize;

    let coll = QGramCollection::build(names.clone(), kappa, GramOrder::Frequency);
    let mut ring = RingEdit::build(coll, tau);
    let coll = QGramCollection::build(names.clone(), kappa, GramOrder::Frequency);
    let mut pivotal = Pivotal::build(coll, tau);

    let queries = sample_query_ids(names.len(), 200, 5);
    let (mut c1, mut c2, mut cr, mut matches) = (0usize, 0usize, 0usize, 0usize);
    for &qid in &queries {
        let q = &names[qid];
        let (res_p, sp) = pivotal.search(q);
        let (res_r, sr) = ring.search(q, 3); // l = min(3, τ+1)
        assert_eq!(res_p, res_r, "both engines are exact");
        c1 += sp.cand1;
        c2 += sp.cand2;
        cr += sr.candidates;
        matches += sr.results;
    }
    let nq = queries.len() as f64;
    println!("τ = {tau}, {} queries:", queries.len());
    println!(
        "  Pivotal prefix filter (Cand-1): {:>8.1} candidates/query",
        c1 as f64 / nq
    );
    println!(
        "  + alignment filter    (Cand-2): {:>8.1} candidates/query",
        c2 as f64 / nq
    );
    println!(
        "  Ring strong-form filter (l=3) : {:>8.1} candidates/query",
        cr as f64 / nq
    );
    println!(
        "  matching entities             : {:>8.1} per query",
        matches as f64 / nq
    );
    println!(
        "Ring reaches Pivotal-level filtering power with popcount bounds\n\
         instead of per-gram edit-distance DPs (§6.3)."
    );
}
