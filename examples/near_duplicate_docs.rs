//! Near-duplicate document detection with Jaccard similarity — the
//! paper's set-similarity application (near-duplicate detection, data
//! cleaning; §2.2).
//!
//! ```sh
//! cargo run --release --example near_duplicate_docs
//! ```
//!
//! Tokenized documents (Enron-like: avg 142 tokens, Zipfian vocabulary)
//! searched at J ≥ 0.8 with all four engines of §8.1: pkwise, Ring,
//! AdaptSearch (AllPairs/PPJoin search version), and PartAlloc.

use pigeonring::datagen::{sample_query_ids, SetConfig};
use pigeonring::setsim::{AdaptSearch, Collection, PartAlloc, RingSetSim, Threshold};
use std::time::Instant;

fn report(name: &str, cands: usize, res: usize, ms: f64, nq: usize) {
    println!(
        "  {name:<12} {:>8.1} cand/query  {:>6.3} ms/query  ({:.1} dupes/query)",
        cands as f64 / nq as f64,
        ms / nq as f64,
        res as f64 / nq as f64
    );
}

fn main() {
    let docs = Collection::new(SetConfig::enron_like(8_000).generate());
    println!(
        "corpus: {} documents, {} distinct tokens",
        docs.len(),
        docs.universe()
    );
    let t = Threshold::jaccard(0.8);
    let queries = sample_query_ids(docs.len(), 100, 7);
    let nq = queries.len();
    println!("J ≥ 0.8, {nq} queries:");

    let mut ring = RingSetSim::build(docs.clone(), t, 5);
    let mut adapt = AdaptSearch::build(docs.clone(), t);
    let mut part = PartAlloc::build(docs.clone(), t);

    // All four engines must return identical result sets; collect the
    // first query's answer from each for the cross-check.
    let mut answers: Vec<Vec<u32>> = Vec::new();

    for (name, engine_idx, l) in [
        ("pkwise", 0usize, 1usize),
        ("Ring(l=2)", 0, 2),
        ("AdaptSearch", 1, 0),
        ("PartAlloc", 2, 0),
    ] {
        let start = Instant::now();
        let (mut cands, mut res) = (0usize, 0usize);
        let mut first: Vec<u32> = Vec::new();
        for &qid in &queries {
            let q = docs.record(qid).to_vec();
            let (r, c) = match engine_idx {
                0 => {
                    let (r, s) = ring.search(&q, l);
                    (r, s.candidates)
                }
                1 => {
                    let (r, s) = adapt.search(&q);
                    (r, s.candidates)
                }
                _ => {
                    let (r, s) = part.search(&q);
                    (r, s.candidates)
                }
            };
            cands += c;
            res += r.len();
            if qid == queries[0] {
                first = r;
            }
        }
        report(name, cands, res, start.elapsed().as_secs_f64() * 1e3, nq);
        answers.push(first);
    }
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "all engines must agree exactly"
    );
    println!("all four engines returned identical duplicate sets ✓");
}
