//! Near-duplicate image detection over binary signatures — the paper's
//! motivating Hamming-distance application (§2.2: "in image retrieval,
//! images are converted to binary vectors and the vectors whose Hamming
//! distances to the query are within a threshold of 16 are identified
//! for further image-level verification").
//!
//! ```sh
//! cargo run --release --example image_dedup
//! ```
//!
//! Simulates a library of 256-bit image signatures with planted
//! near-duplicate groups, then answers τ = 16 duplicate queries with GPH
//! (pigeonhole) and Ring (pigeonring) over the same index, reporting the
//! filtering-power difference.

use pigeonring::datagen::{sample_query_ids, VectorConfig};
use pigeonring::hamming::{AllocationStrategy, LinearScan, RingHamming};

fn main() {
    // A "photo library": clustered signatures = burst shots / re-encodes.
    let cfg = VectorConfig {
        count: 30_000,
        dims: 256,
        clusters: 500,
        flip_prob: 0.02, // re-encodes flip ~2% of signature bits
        background: 0.4,
        seed: 0xD1CE,
    };
    let library = cfg.generate();
    println!("library: {} signatures of {} bits", library.len(), cfg.dims);

    let tau = 16u32; // the paper's image-retrieval threshold
    let queries = sample_query_ids(library.len(), 200, 99);
    let mut engine = RingHamming::build(library.clone(), 16, AllocationStrategy::CostModel);

    let mut totals = [(0usize, 0usize); 2]; // (candidates, results) per engine
    for &qid in &queries {
        let q = library[qid].clone();
        let (res_hole, s_hole) = engine.search(&q, tau, 1); // GPH
        let (res_ring, s_ring) = engine.search(&q, tau, 5); // Ring, best l
        assert_eq!(res_hole, res_ring, "both engines are exact");
        totals[0].0 += s_hole.candidates;
        totals[0].1 += s_hole.results;
        totals[1].0 += s_ring.candidates;
        totals[1].1 += s_ring.results;
    }
    let nq = queries.len();
    println!(
        "GPH  (pigeonhole): {:>8.1} candidates/query, {:>6.1} duplicates/query",
        totals[0].0 as f64 / nq as f64,
        totals[0].1 as f64 / nq as f64
    );
    println!(
        "Ring (pigeonring): {:>8.1} candidates/query, {:>6.1} duplicates/query",
        totals[1].0 as f64 / nq as f64,
        totals[1].1 as f64 / nq as f64
    );

    // Sanity: the index answers exactly what a full scan answers.
    let q = library[queries[0]].clone();
    assert_eq!(
        engine.search(&q, tau, 5).0,
        LinearScan::new(engine.data()).search(&q, tau)
    );
    println!("verified against linear scan ✓");
}
