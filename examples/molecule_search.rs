//! Structure search over molecule-like labeled graphs — the paper's
//! graph-edit-distance application (§2.2/§6.4, Figure 4 shows chemical
//! compounds with atom vertex labels and bond edge labels).
//!
//! ```sh
//! cargo run --release --example molecule_search
//! ```
//!
//! Screens an AIDS-like compound library (sparse, label-rich) and a
//! Protein-like one (denser, label-poor) at GED ≤ τ, showing the
//! label-selectivity contrast the paper reports in §8.3: the Ring gain
//! is large when part features are selective and small when they are
//! not.

use pigeonring::datagen::{sample_query_ids, GraphConfig};
use pigeonring::graph::{Pars, RingGraph};

fn screen(name: &str, cfg: GraphConfig, tau: usize) {
    let library = cfg.generate();
    let queries = sample_query_ids(library.len(), 30, 13);
    let pars = Pars::build(library.clone(), tau);
    let ring = RingGraph::build(library.clone(), tau);

    let (mut cp, mut cr, mut hits) = (0usize, 0usize, 0usize);
    for &qid in &queries {
        let q = &library[qid];
        let (res_p, sp) = pars.search(q);
        let (res_r, sr) = ring.search(q, tau); // best l ∈ [τ−2, τ]
        assert_eq!(res_p, res_r, "both engines are exact");
        cp += sp.candidates;
        cr += sr.candidates;
        hits += sr.results;
    }
    let nq = queries.len() as f64;
    println!(
        "{name}: {} compounds, ged ≤ {tau} → Pars {:.1} cand/query, Ring {:.1} cand/query, {:.1} hits/query",
        library.len(),
        cp as f64 / nq,
        cr as f64 / nq,
        hits as f64 / nq,
    );
}

fn main() {
    screen(
        "AIDS-like   (many labels)",
        GraphConfig::aids_like(2_000),
        4,
    );
    screen(
        "Protein-like (few labels)",
        GraphConfig::protein_like(1_000),
        4,
    );
    println!(
        "\nLabel-rich parts are selective, so the pigeonring chain check\n\
         removes many Pars candidates; label-poor parts embed almost\n\
         anywhere, leaving little for the chain to filter (§8.3)."
    );
}
