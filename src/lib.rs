//! # pigeonring
//!
//! Facade crate for the full reproduction of *"Pigeonring: A Principle for
//! Faster Thresholded Similarity Search"* (Qin & Xiao, VLDB 2018).
//!
//! Re-exports the workspace crates under one roof:
//!
//! * [`core`] — the pigeonring principle, threshold schemes, filtering
//!   framework, and the §3.1 performance analysis.
//! * [`hamming`] — Hamming distance search (GPH baseline + Ring).
//! * [`setsim`] — set similarity search (pkwise, AllPairs/PPJoin-style,
//!   PartAlloc baselines + Ring).
//! * [`editdist`] — string edit distance search (Pivotal baseline + Ring).
//! * [`graph`] — graph edit distance search (Pars baseline + Ring).
//! * [`datagen`] — seeded synthetic dataset generators standing in for the
//!   paper's eight real datasets.
//! * [`service`] — the sharded, batched query-service layer unifying all
//!   four domain engines behind one `SearchEngine` trait.
//!
//! See `examples/quickstart.rs` for a tour of all four τ-selection
//! problems.

pub use pigeonring_core as core;
pub use pigeonring_datagen as datagen;
pub use pigeonring_editdist as editdist;
pub use pigeonring_graph as graph;
pub use pigeonring_hamming as hamming;
pub use pigeonring_service as service;
pub use pigeonring_setsim as setsim;
