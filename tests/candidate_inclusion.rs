//! Lemma 1/4 at the system level: for every engine, the pigeonring
//! candidate set is a subset of the pigeonhole candidate set (we assert
//! the count form plus result equality — the engines dedup internally,
//! so counts are exact set sizes), and candidate counts are monotone
//! non-increasing in the chain length `l`.

use pigeonring::datagen::{sample_query_ids, GraphConfig, SetConfig, StringConfig, VectorConfig};
use pigeonring::editdist::{GramOrder, QGramCollection, RingEdit};
use pigeonring::graph::RingGraph;
use pigeonring::hamming::{AllocationStrategy, RingHamming};
use pigeonring::setsim::{Collection, RingSetSim, Threshold};

#[test]
fn hamming_candidates_monotone() {
    let data = VectorConfig::gist_like(1500).generate();
    let queries = sample_query_ids(data.len(), 8, 31);
    let mut ring = RingHamming::build(data.clone(), 16, AllocationStrategy::CostModel);
    for &qid in &queries {
        let q = data[qid].clone();
        for tau in [24u32, 48] {
            let mut prev = usize::MAX;
            for l in 1..=8usize {
                let (_, stats) = ring.search(&q, tau, l);
                assert!(
                    stats.candidates <= prev,
                    "qid={qid} tau={tau} l={l}: {} > {prev}",
                    stats.candidates
                );
                prev = stats.candidates;
            }
        }
    }
}

#[test]
fn hamming_l_equals_m_candidates_are_results() {
    let data = VectorConfig::gist_like(800).generate();
    let queries = sample_query_ids(data.len(), 5, 37);
    let mut ring = RingHamming::build(data.clone(), 16, AllocationStrategy::Even);
    for &qid in &queries {
        let q = data[qid].clone();
        let (_, stats) = ring.search(&q, 48, 16);
        assert_eq!(stats.candidates, stats.results, "qid={qid}");
    }
}

#[test]
fn setsim_candidates_monotone() {
    let coll = Collection::new(SetConfig::enron_like(400).generate());
    let queries = sample_query_ids(coll.len(), 8, 41);
    let mut ring = RingSetSim::build(coll.clone(), Threshold::jaccard(0.7), 5);
    for &qid in &queries {
        let q = coll.record(qid).to_vec();
        let mut prev = usize::MAX;
        for l in 1..=3usize {
            let (_, stats) = ring.search(&q, l);
            assert!(stats.candidates <= prev, "qid={qid} l={l}");
            prev = stats.candidates;
        }
    }
}

#[test]
fn editdist_candidates_monotone() {
    let strings = StringConfig::pubmed_like(300).generate();
    let queries = sample_query_ids(strings.len(), 6, 43);
    let coll = QGramCollection::build(strings.clone(), 4, GramOrder::Frequency);
    let mut ring = RingEdit::build(coll, 6);
    for &qid in &queries {
        let mut prev = usize::MAX;
        for l in 1..=5usize {
            let (_, stats) = ring.search(&strings[qid], l);
            assert!(stats.candidates <= prev, "qid={qid} l={l}");
            prev = stats.candidates;
        }
    }
}

#[test]
fn graph_candidates_monotone() {
    let graphs = GraphConfig::aids_like(200).generate();
    let queries = sample_query_ids(graphs.len(), 6, 47);
    let ring = RingGraph::build(graphs.clone(), 4);
    for &qid in &queries {
        let mut prev = usize::MAX;
        for l in 1..=5usize {
            let (_, stats) = ring.search(&graphs[qid], l);
            assert!(stats.candidates <= prev, "qid={qid} l={l}");
            prev = stats.candidates;
        }
    }
}

#[test]
fn stats_invariants_hold_everywhere() {
    // results ≤ candidates for every engine and setting.
    let data = VectorConfig::sift_like(500).generate();
    let mut hamming = RingHamming::build(data.clone(), 32, AllocationStrategy::CostModel);
    let (_, s) = hamming.search(&data[0].clone(), 64, 5);
    assert!(s.results <= s.candidates);

    let coll = Collection::new(SetConfig::dblp_like(400).generate());
    let mut sets = RingSetSim::build(coll.clone(), Threshold::jaccard(0.8), 5);
    let (_, s) = sets.search(coll.record(0), 2);
    assert!(s.results <= s.candidates);

    let strings = StringConfig::imdb_like(400).generate();
    let qcoll = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
    let mut edit = RingEdit::build(qcoll, 2);
    let (_, s) = edit.search(&strings[0], 3);
    assert!(s.results <= s.candidates);

    let graphs = GraphConfig::protein_like(80).generate();
    let ring = RingGraph::build(graphs.clone(), 3);
    let (_, s) = ring.search(&graphs[0], 3);
    assert!(s.results <= s.candidates);
}
