//! Monte-Carlo validation of the §3.1 analysis: the `Pr(CAND_l)` word-set
//! recurrence and the exact `Pr(RES)` convolution are compared against
//! direct simulation — sample `m` i.i.d. boxes, run the *actual*
//! strong-form filter from `pigeonring-core`, repeat.

use pigeonring::core::analysis::{DiscreteDist, FilterAnalysis};
use pigeonring::core::viability::{find_prefix_viable, Direction, ThresholdScheme};
use rand::Rng;
use rand::SeedableRng;

fn monte_carlo(dist: &DiscreteDist, m: usize, tau: i64, l: usize, samples: usize) -> (f64, f64) {
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0xC0FFEE);
    let scheme = ThresholdScheme::uniform(tau, m);
    let mut cand = 0usize;
    let mut res = 0usize;
    let mut boxes = vec![0i64; m];
    for _ in 0..samples {
        for b in boxes.iter_mut() {
            *b = dist.sample(rng.gen::<f64>()) as i64;
        }
        if find_prefix_viable(&boxes, &scheme, Direction::Le, l).is_some() {
            cand += 1;
        }
        if boxes.iter().sum::<i64>() <= tau {
            res += 1;
        }
    }
    (cand as f64 / samples as f64, res as f64 / samples as f64)
}

#[test]
fn result_probability_is_exact() {
    // Pr(RES) is an exact convolution: Monte-Carlo must agree within
    // sampling error.
    let dist = DiscreteDist::binomial(8, 0.5);
    let fa = FilterAnalysis::new(dist.clone(), 8, 36);
    let (_, mc_res) = monte_carlo(&dist, 8, 36, 1, 200_000);
    let exact = fa.result_prob();
    assert!(
        (mc_res - exact).abs() < 0.01,
        "mc {mc_res} vs exact {exact}"
    );
}

#[test]
fn cand_probability_recurrence_tracks_simulation() {
    // The paper's N(m) is derived from a word-decomposition argument; we
    // accept a modest relative tolerance against simulation and require
    // the absolute gap to be small at every chain length.
    let dist = DiscreteDist::binomial(16, 0.5);
    let m = 8;
    let tau = 72i64;
    let fa = FilterAnalysis::new(dist.clone(), m, tau);
    for l in 1..=4usize {
        let (mc_cand, _) = monte_carlo(&dist, m, tau, l, 120_000);
        let est = fa.cand_prob(l);
        let gap = (mc_cand - est).abs();
        assert!(
            gap < 0.03 || gap / mc_cand.max(1e-9) < 0.25,
            "l={l}: mc {mc_cand} vs recurrence {est}"
        );
    }
}

#[test]
fn l1_recurrence_is_exact_vs_simulation() {
    // At l = 1 the recurrence reduces to the closed-form pigeonhole
    // probability, which must match simulation within sampling error.
    let dist = DiscreteDist::binomial(16, 0.5);
    let fa = FilterAnalysis::new(dist.clone(), 8, 64);
    let (mc_cand, _) = monte_carlo(&dist, 8, 64, 1, 200_000);
    assert!(
        (mc_cand - fa.cand_prob(1)).abs() < 0.01,
        "mc {mc_cand} vs exact {}",
        fa.cand_prob(1)
    );
}

#[test]
fn uniform_box_distribution_also_tracks() {
    let dist = DiscreteDist::from_weights(&[1.0; 17]);
    let m = 8;
    let tau = 48i64;
    let fa = FilterAnalysis::new(dist.clone(), m, tau);
    for l in [1usize, 2, 3] {
        let (mc_cand, mc_res) = monte_carlo(&dist, m, tau, l, 120_000);
        let est = fa.cand_prob(l);
        let gap = (mc_cand - est).abs();
        assert!(
            gap < 0.03 || gap / mc_cand.max(1e-9) < 0.25,
            "l={l}: mc {mc_cand} vs recurrence {est}"
        );
        assert!((mc_res - fa.result_prob()).abs() < 0.01);
    }
}
