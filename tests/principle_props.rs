//! Property tests machine-checking the paper's theorems on random
//! inputs: the principle statements themselves (Theorems 1–3, 6, 7 and
//! both directions), the candidate-set inclusions (Lemmata 1 and 4), and
//! the equivalence of the Corollary-2 skipping scan with the naive scan.

use pigeonring::core::theorem;
use pigeonring::core::viability::{
    check_prefix_viable, find_prefix_viable, find_prefix_viable_noskip, find_viable_window,
    Direction, ThresholdScheme,
};
use proptest::prelude::*;

fn boxes_strategy(m: usize, vmax: i64) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0..=vmax, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn theorem1_pigeonhole(b in boxes_strategy(8, 10), n in 0i64..=80) {
        prop_assume!(b.iter().sum::<i64>() <= n);
        prop_assert!(theorem::pigeonhole(&b, n).is_some());
    }

    #[test]
    fn theorem2_basic_form(b in boxes_strategy(8, 10), n in 0i64..=80, l in 1usize..=8) {
        prop_assume!(b.iter().sum::<i64>() <= n);
        prop_assert!(theorem::pigeonring_basic(&b, n, l).is_some());
    }

    #[test]
    fn theorem3_strong_form(b in boxes_strategy(8, 10), n in 0i64..=80, l in 1usize..=8) {
        prop_assume!(b.iter().sum::<i64>() <= n);
        let start = theorem::pigeonring_strong(&b, n, l);
        prop_assert!(start.is_some());
        // The witness is genuinely prefix-viable.
        let scheme = ThresholdScheme::uniform(n, b.len());
        prop_assert_eq!(
            check_prefix_viable(&b, &scheme, Direction::Le, start.unwrap(), l),
            Ok(())
        );
    }

    #[test]
    fn theorem3_real_valued(
        b in prop::collection::vec(-10.0f64..10.0, 6),
        n in -5.0f64..60.0,
        l in 1usize..=6,
    ) {
        prop_assume!(b.iter().sum::<f64>() <= n);
        prop_assert!(theorem::pigeonring_strong(&b, n, l).is_some());
    }

    #[test]
    fn theorem6_variable_thresholds(
        b in boxes_strategy(6, 8),
        t in boxes_strategy(6, 12),
        l in 1usize..=6,
    ) {
        let n: i64 = t.iter().sum();
        prop_assume!(b.iter().sum::<i64>() <= n);
        prop_assert!(theorem::pigeonring_variable(&b, t, l).is_some());
    }

    #[test]
    fn theorem7_integer_reduction(
        b in boxes_strategy(6, 8),
        t in boxes_strategy(6, 8),
        l in 1usize..=6,
    ) {
        let n: i64 = t.iter().sum::<i64>() + 6 - 1; // ‖T‖₁ = n − m + 1
        prop_assume!(b.iter().sum::<i64>() <= n);
        prop_assert!(theorem::pigeonring_integer_reduced(&b, t, l).is_some());
    }

    #[test]
    fn theorem7_ge_direction(
        b in boxes_strategy(6, 8),
        t in boxes_strategy(6, 8),
        l in 1usize..=6,
    ) {
        let tsum: i64 = t.iter().sum();
        let n = tsum - (6 - 1); // ‖T‖₁ = n + m − 1
        prop_assume!(b.iter().sum::<i64>() >= n);
        prop_assert!(theorem::pigeonring_integer_reduced_ge(&b, t, l).is_some());
    }

    #[test]
    fn lemma1_and_4_inclusions(b in boxes_strategy(8, 10), n in 0i64..=80, l in 1usize..=8) {
        // Strong-form candidates ⊆ basic-form candidates ⊆ pigeonhole
        // candidates, for any input (no hypothesis needed).
        let strong = theorem::pigeonring_strong(&b, n, l).is_some();
        let basic = theorem::pigeonring_basic(&b, n, l).is_some();
        let hole = theorem::pigeonhole(&b, n).is_some();
        prop_assert!(!strong || basic, "strong ⊆ basic");
        prop_assert!(!basic || l > 1 || hole, "basic at l = 1 is pigeonhole");
        prop_assert!(!strong || hole, "strong ⊆ pigeonhole");
    }

    #[test]
    fn candidates_monotone_in_l(b in boxes_strategy(8, 10), n in 0i64..=80) {
        let scheme = ThresholdScheme::uniform(n, b.len());
        let mut prev = true;
        for l in 1..=b.len() {
            let cand = find_prefix_viable(&b, &scheme, Direction::Le, l).is_some();
            prop_assert!(prev || !cand, "candidate sets must shrink with l");
            prev = cand;
        }
    }

    #[test]
    fn skip_equals_noskip_le(b in boxes_strategy(10, 6), n in 0i64..=60, l in 1usize..=10) {
        let scheme = ThresholdScheme::uniform(n, b.len());
        prop_assert_eq!(
            find_prefix_viable(&b, &scheme, Direction::Le, l).is_some(),
            find_prefix_viable_noskip(&b, &scheme, Direction::Le, l).is_some()
        );
    }

    #[test]
    fn skip_equals_noskip_variable(
        b in boxes_strategy(7, 6),
        t in boxes_strategy(7, 6),
        l in 1usize..=7,
        ge in prop::bool::ANY,
    ) {
        let dir = if ge { Direction::Ge } else { Direction::Le };
        let scheme = ThresholdScheme::integer_reduced(t);
        prop_assert_eq!(
            find_prefix_viable(&b, &scheme, dir, l).is_some(),
            find_prefix_viable_noskip(&b, &scheme, dir, l).is_some()
        );
    }

    #[test]
    fn complete_chain_equals_verification(b in boxes_strategy(8, 10), n in 0i64..=80) {
        // §3: at l = m (uniform scheme, ‖B‖₁ = f), candidates == results.
        let m = b.len();
        let total: i64 = b.iter().sum();
        let cand = theorem::pigeonring_strong(&b, n, m).is_some();
        prop_assert_eq!(cand, total <= n);
    }

    #[test]
    fn basic_form_window_exists_for_all_l(b in boxes_strategy(9, 10), n in 0i64..=90) {
        prop_assume!(b.iter().sum::<i64>() <= n);
        let scheme = ThresholdScheme::uniform(n, b.len());
        for l in 1..=b.len() {
            prop_assert!(find_viable_window(&b, &scheme, Direction::Le, l).is_some());
        }
    }
}
