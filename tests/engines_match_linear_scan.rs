//! End-to-end exactness: every engine returns exactly the linear-scan
//! answer on generated datasets, across thresholds and chain lengths.
//! This is the completeness test the whole filter-and-refine design
//! rests on (no result may ever be lost, at any `l`).

use pigeonring::datagen::{sample_query_ids, GraphConfig, SetConfig, StringConfig, VectorConfig};
use pigeonring::editdist::verify::edit_distance;
use pigeonring::editdist::{GramOrder, Pivotal, QGramCollection, RingEdit};
use pigeonring::graph::pars::LinearScanGraphs;
use pigeonring::graph::{Pars, RingGraph};
use pigeonring::hamming::{AllocationStrategy, LinearScan, RingHamming};
use pigeonring::setsim::{
    AdaptSearch, Collection, LinearScanSets, PartAlloc, RingSetSim, Threshold,
};

#[test]
fn hamming_engines_are_exact() {
    let data = VectorConfig::gist_like(800).generate();
    let queries = sample_query_ids(data.len(), 6, 11);
    let scan = LinearScan::new(&data);
    for strategy in [AllocationStrategy::Even, AllocationStrategy::CostModel] {
        let mut ring = RingHamming::build(data.clone(), 16, strategy);
        for &qid in &queries {
            let q = data[qid].clone();
            for tau in [8u32, 32, 64] {
                let expect = scan.search(&q, tau);
                for l in [1usize, 2, 5, 16] {
                    let (got, stats) = ring.search(&q, tau, l);
                    assert_eq!(
                        got, expect,
                        "strategy={strategy:?} qid={qid} tau={tau} l={l}"
                    );
                    assert_eq!(stats.results, expect.len());
                }
            }
        }
    }
}

#[test]
fn setsim_engines_are_exact() {
    let coll = Collection::new(SetConfig::dblp_like(600).generate());
    let queries = sample_query_ids(coll.len(), 8, 13);
    let scan = LinearScanSets::new(&coll);
    for tau in [0.7f64, 0.85] {
        let t = Threshold::jaccard(tau);
        let mut ring = RingSetSim::build(coll.clone(), t, 5);
        let mut adapt = AdaptSearch::build(coll.clone(), t);
        let mut part = PartAlloc::build(coll.clone(), t);
        for &qid in &queries {
            let q = coll.record(qid).to_vec();
            let expect = scan.search(&q, t);
            for l in [1usize, 2, 3] {
                assert_eq!(
                    ring.search(&q, l).0,
                    expect,
                    "ring tau={tau} qid={qid} l={l}"
                );
            }
            assert_eq!(adapt.search(&q).0, expect, "adapt tau={tau} qid={qid}");
            assert_eq!(part.search(&q).0, expect, "partalloc tau={tau} qid={qid}");
        }
    }
}

#[test]
fn editdist_engines_are_exact() {
    let strings = StringConfig::imdb_like(500).generate();
    let queries = sample_query_ids(strings.len(), 8, 17);
    let scan = |q: &[u8], tau: u32| -> Vec<u32> {
        strings
            .iter()
            .enumerate()
            .filter(|(_, x)| edit_distance(x, q) <= tau)
            .map(|(id, _)| id as u32)
            .collect()
    };
    for tau in [1usize, 2, 3] {
        let coll = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut ring = RingEdit::build(coll, tau);
        let coll = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
        let mut piv = Pivotal::build(coll, tau);
        for &qid in &queries {
            let q = &strings[qid];
            let expect = scan(q, tau as u32);
            for l in [1usize, 2, 3, tau + 1] {
                assert_eq!(
                    ring.search(q, l).0,
                    expect,
                    "ring tau={tau} qid={qid} l={l}"
                );
            }
            assert_eq!(piv.search(q).0, expect, "pivotal tau={tau} qid={qid}");
        }
    }
}

#[test]
fn graph_engines_are_exact() {
    let graphs = GraphConfig::aids_like(150).generate();
    let queries = sample_query_ids(graphs.len(), 6, 19);
    let scan = LinearScanGraphs::new(&graphs);
    for tau in [2usize, 4] {
        let pars = Pars::build(graphs.clone(), tau);
        let ring = RingGraph::build(graphs.clone(), tau);
        for &qid in &queries {
            let q = &graphs[qid];
            let expect = scan.search(q, tau as u32);
            assert_eq!(pars.search(q).0, expect, "pars tau={tau} qid={qid}");
            for l in [1usize, 2, tau, tau + 1] {
                assert_eq!(
                    ring.search(q, l).0,
                    expect,
                    "ring tau={tau} qid={qid} l={l}"
                );
            }
        }
    }
}

#[test]
fn label_poor_graphs_are_exact_too() {
    // Protein-like graphs (few labels) stress the unselective-feature
    // path the paper discusses in §8.3.
    let graphs = GraphConfig::protein_like(100).generate();
    let queries = sample_query_ids(graphs.len(), 4, 23);
    let scan = LinearScanGraphs::new(&graphs);
    let ring = RingGraph::build(graphs.clone(), 3);
    for &qid in &queries {
        let q = &graphs[qid];
        let expect = scan.search(q, 3);
        for l in [1usize, 3] {
            assert_eq!(ring.search(q, l).0, expect, "qid={qid} l={l}");
        }
    }
}
