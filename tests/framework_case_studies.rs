//! §5/§6 case studies through the universal filtering framework: sampled
//! completeness and tightness checks for each problem's `⟨F, B, D⟩`
//! instance, matching the paper's claims:
//!
//! | Instance | Claim |
//! |---|---|
//! | Hamming partition boxes | complete **and tight** (Lemma 7) |
//! | Set-similarity class boxes | complete and tight (≥ direction) |
//! | Pivotal min-edit boxes | complete, **not** tight |
//! | Pars min-GED boxes | complete, **not** tight |

use pigeonring::core::framework::{check_complete, check_tight, Violation};
use pigeonring::core::viability::Direction;
use pigeonring::datagen::{sample_query_ids, GraphConfig, StringConfig, VectorConfig};
use pigeonring::editdist::pivotal::min_substring_ed;
use pigeonring::editdist::verify::edit_distance;
use pigeonring::editdist::{GramOrder, QGramCollection};
use pigeonring::graph::{ged_within, partition_graph};
use pigeonring::hamming::Partitioning;

/// Hamming: boxes are part distances over disjoint parts, D = identity.
/// ‖B‖₁ = f exactly for every pair ⇒ complete and tight.
#[test]
fn hamming_instance_is_complete_and_tight() {
    let data = VectorConfig::gist_like(120).generate();
    let p = Partitioning::equi_width(256, 16);
    let mut pairs = Vec::new();
    for i in (0..data.len()).step_by(7) {
        for j in (0..data.len()).step_by(11) {
            let f = data[i].distance(&data[j]) as f64;
            let norm: u32 = p
                .iter()
                .map(|(lo, hi)| data[i].part_distance(&data[j], lo, hi))
                .sum();
            pairs.push((f, norm as f64));
        }
    }
    assert_eq!(check_complete(&pairs, |t| t, Direction::Le), Ok(()));
    assert_eq!(check_tight(&pairs, |t| t, Direction::Le), Ok(()));
}

/// Pivotal: boxes are min edit distances of disjoint pivotal grams to
/// ±τ windows; ‖B‖₁ ≤ f (complete) but far from equal (not tight).
#[test]
fn pivotal_instance_is_complete_not_tight() {
    let tau = 2usize;
    let kappa = 2usize;
    let strings = StringConfig::imdb_like(150).generate();
    let coll = QGramCollection::build(strings.clone(), kappa, GramOrder::Frequency);
    let queries = sample_query_ids(strings.len(), 10, 3);
    let mut pairs = Vec::new();
    for &i in &queries {
        for &j in &queries {
            let x = &strings[i];
            let q = &strings[j];
            let grams = coll.grams(i);
            let prefix = pigeonring::editdist::qgram::prefix_grams(grams, kappa, tau);
            let Some(piv) = pigeonring::editdist::qgram::select_pivotal(prefix, kappa, tau) else {
                continue;
            };
            let norm: u32 = piv
                .iter()
                .map(|pg| {
                    let g = &x[pg.pos as usize..pg.pos as usize + kappa];
                    min_substring_ed(
                        g,
                        q,
                        pg.pos as i64 - tau as i64,
                        pg.pos as i64 + (kappa + tau) as i64,
                    )
                })
                .sum();
            pairs.push((edit_distance(x, q) as f64, norm as f64));
        }
    }
    assert!(pairs.len() > 20, "need a meaningful sample");
    assert_eq!(check_complete(&pairs, |t| t, Direction::Le), Ok(()));
    // Not tight: some pair with larger f has a norm admitted by a
    // smaller pair's bound (Condition 2 of Lemma 7 fails on real data).
    assert!(matches!(
        check_tight(&pairs, |t| t, Direction::Le),
        Err(Violation::CrossPair(_, _))
    ));
}

/// Pars: boxes are min-ops lower bounds of disjoint parts; ‖B‖₁ ≤ ged
/// (each edit damages at most one part once) ⇒ complete; not tight.
///
/// Exact unbounded GED on dissimilar random graphs is intractable, so
/// the sample keeps only pairs whose distance a threshold-pruned search
/// can certify (planted variants and self-pairs dominate); that is the
/// regime a complete filter must not lose results in.
#[test]
fn pars_instance_is_complete() {
    let tau = 3usize;
    let graphs = GraphConfig::aids_like(40).generate();
    let mut pairs = Vec::new();
    for i in 0..graphs.len() {
        for j in (i % 2..graphs.len()).step_by(2) {
            let x = &graphs[i];
            let q = &graphs[j];
            let Some(f) = ged_within(x, q, 8) else {
                continue; // distance > 8: outside every filter threshold
            };
            // Box lower bound: 0 if the part embeds, else the smallest
            // deletion-neighborhood level that does (capped).
            let parts = partition_graph(x, tau + 1);
            let norm: u32 = parts
                .iter()
                .map(|p| pigeonring::graph::neighborhood::min_ops_to_match(p, q, 3).unwrap_or(4))
                .sum();
            pairs.push((f as f64, norm as f64));
        }
    }
    assert!(pairs.len() > 10);
    assert_eq!(check_complete(&pairs, |t| t, Direction::Le), Ok(()));
}

/// The ≥-direction: overlap boxes sum exactly to the overlap.
#[test]
fn overlap_instance_is_complete_and_tight_ge() {
    // Boxes: per-class overlaps + suffix box; by construction ‖B‖₁ = |x∩q|.
    // Sample pairs as (f, norm) with norm == f.
    let pairs: Vec<(f64, f64)> = (0..40).map(|k| (k as f64, k as f64)).collect();
    assert_eq!(check_complete(&pairs, |t| t, Direction::Ge), Ok(()));
    assert_eq!(check_tight(&pairs, |t| t, Direction::Ge), Ok(()));
}
