//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, multiple
//!   `#[test] fn name(arg in strategy, ..) { .. }` items);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * range strategies over integers and floats, tuple strategies,
//!   [`Strategy::prop_map`], `prop::collection::vec`, `prop::bool::ANY`,
//!   `prop::num::u64::ANY`, and `prop::sample::select`.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled inputs' debug output instead of a minimized counterexample.
//! Generation is deterministic per test name, so failures reproduce.

use std::ops::{Range, RangeInclusive};

/// Per-test configuration. Only `cases` is honored.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: skip the case, draw another.
    Reject,
    /// `prop_assert*!` failed: the property is false.
    Fail(String),
}

/// Result of one test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator driving strategy sampling (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name so failures reproduce.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h | 1, // xorshift state must be non-zero
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        self.next_u64() % bound
    }
}

/// A value generator. `Strategy<Value = T>` produces `T`s.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_strategy_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_strategy_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident => $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_tuple! {
    (A => 0)
    (A => 0, B => 1)
    (A => 0, B => 1, C => 2)
    (A => 0, B => 1, C => 2, D => 3)
    (A => 0, B => 1, C => 2, D => 3, E => 4)
    (A => 0, B => 1, C => 2, D => 3, E => 4, F => 5)
}

/// Length specification for collection strategies: a fixed `usize`, a
/// `Range<usize>`, or a `RangeInclusive<usize>`.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi_inclusive - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from real proptest.

    pub mod collection {
        //! Collection strategies.
        use crate::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.
        use crate::{Strategy, TestRng};

        /// Strategy yielding arbitrary booleans.
        #[derive(Clone, Copy, Debug)]
        pub struct Any;

        /// Arbitrary boolean.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() >> 63 == 1
            }
        }
    }

    pub mod num {
        //! Numeric "any value" strategies.

        pub mod u64 {
            //! `u64` strategies.
            use crate::{Strategy, TestRng};

            /// Strategy yielding arbitrary `u64`s.
            #[derive(Clone, Copy, Debug)]
            pub struct Any;

            /// Arbitrary `u64`.
            pub const ANY: Any = Any;

            impl Strategy for Any {
                type Value = u64;

                fn sample(&self, rng: &mut TestRng) -> u64 {
                    rng.next_u64()
                }
            }
        }
    }

    pub mod sample {
        //! Strategies drawing from explicit value sets.
        use crate::{Strategy, TestRng};

        /// Strategy choosing uniformly among `items`.
        pub struct Select<T> {
            items: Vec<T>,
        }

        /// Chooses uniformly from `items` (must be non-empty).
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select requires at least one item");
            Select { items }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                let i = rng.below(self.items.len() as u64) as usize;
                self.items[i].clone()
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude`.
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!(
                    "assertion failed: {} ({})",
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            ::core::stringify!($left),
                            ::core::stringify!($right),
                            left,
                            right,
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::TestCaseError::Fail(
                        ::std::format!(
                            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
                            ::core::stringify!($left),
                            ::core::stringify!($right),
                            ::std::format!($($fmt)+),
                            left,
                            right,
                        ),
                    ));
                }
            }
        }
    };
}

/// Rejects the current case (draws a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in strategy,
/// ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(::core::stringify!($name));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(32).max(4096);
            while accepted < cfg.cases {
                if attempts >= max_attempts {
                    panic!(
                        "{}: gave up after {} attempts ({} of {} cases accepted); \
                         prop_assume! rejects too much",
                        ::core::stringify!($name),
                        attempts,
                        accepted,
                        cfg.cases,
                    );
                }
                attempts += 1;
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("{} (case {}): {}", ::core::stringify!($name), accepted, msg)
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 0i64..=10, y in 1usize..4, f in -2.0f64..2.0) {
            prop_assert!((0..=10).contains(&x));
            prop_assert!((1..4).contains(&y));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn assume_rejects(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn map_and_tuple_compose(
            p in (0u32..10, 0u32..10).prop_map(|(a, b)| a + b),
            s in prop::sample::select(vec![3u8, 5, 7]),
            b in prop::bool::ANY,
            w in prop::num::u64::ANY,
        ) {
            prop_assert!(p < 20);
            prop_assert!(s == 3 || s == 5 || s == 7);
            let _ = (b, w);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
