//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements exactly the surface the workspace uses — [`rngs::SmallRng`]
//! (xoshiro256++ seeded via SplitMix64, matching the statistical quality the
//! datagen crate needs), [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen::<f64>()`, `gen::<bool>()`, and `gen_range` over
//! integer ranges. Determinism contract: same seed → same stream, forever;
//! the seeded datasets in `pigeonring-datagen` depend on it.

use std::ops::{Range, RangeInclusive};

/// Source of raw random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of an RNG from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (SplitMix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from all bit patterns (or, for `f64`, from
/// `[0, 1)`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Types with uniform sampling over an interval. The blanket
/// [`SampleRange`] impls below are deliberately generic over this trait (one
/// impl per range type, as in real rand) so that type inference can unify an
/// unannotated literal range with its use site, e.g. `b'a' + rng.gen_range(0..26)`.
pub trait SampleUniform: Sized {
    /// Uniform in `[lo, hi)`. Panics when the range is empty.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform in `[lo, hi]`. Panics when the range is empty.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo < hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "cannot sample from empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Range types from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// The user-facing extension trait, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    /// xoshiro256++: fast, small, and statistically solid — the same
    /// algorithm the real `rand::rngs::SmallRng` uses on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn next_word(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.next_word()
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = r.gen_range(-2i64..=2);
            assert!((-2..=2).contains(&v));
            seen[(v + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of -2..=2 reachable");
        for _ in 0..100 {
            let v = r.gen_range(0usize..3);
            assert!(v < 3);
        }
    }

    #[test]
    fn bool_is_balanced() {
        let mut r = SmallRng::seed_from_u64(3);
        let trues = (0..10_000).filter(|_| r.gen::<bool>()).count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }
}
