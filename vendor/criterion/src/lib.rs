//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the benchmarking surface the workspace uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`black_box`], [`criterion_group!`], [`criterion_main!`] — with plain
//! wall-clock median-of-samples reporting instead of criterion's full
//! statistical machinery. Bench targets must set `harness = false`, exactly
//! as with real criterion.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished benchmark's timing summary, in nanoseconds per call.
/// Collected by [`Criterion::bench_function`] and exposed through
/// [`Criterion::summaries`] so bench binaries with a custom `main` can
/// emit machine-readable artifacts (e.g. `BENCH_kernels.json`).
#[derive(Clone, Debug)]
pub struct Summary {
    /// The benchmark id (`group/name` for grouped benches).
    pub id: String,
    /// Median of the recorded samples.
    pub median_ns: f64,
    /// Fastest recorded sample.
    pub low_ns: f64,
    /// Slowest recorded sample.
    pub high_ns: f64,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    summaries: Vec<Summary>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            summaries: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the routine under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        if let Some(summary) = report(&id, &mut bencher.samples) {
            self.summaries.push(summary);
        }
        self
    }

    /// Timing summaries of every benchmark run so far, in run order.
    pub fn summaries(&self) -> &[Summary] {
        &self.summaries
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Ends the group. (No-op here; kept for API parity.)
    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times repeated calls of `routine`, auto-scaling iterations per sample
    /// so that very fast routines still get measurable samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up and iteration-count calibration: aim for ≥ ~1ms per sample.
        let mut iters_per_sample: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn report(id: &str, samples: &mut [Duration]) -> Option<Summary> {
    if samples.is_empty() {
        println!("{id:<48} (no samples: Bencher::iter never called)");
        return None;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{id:<48} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
    Some(Summary {
        id: id.to_string(),
        median_ns: median.as_nanos() as f64,
        low_ns: lo.as_nanos() as f64,
        high_ns: hi.as_nanos() as f64,
    })
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function. Both the positional form
/// `criterion_group!(name, target, ..)` and the `name = ..; config = ..;
/// targets = ..` form are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[doc = "Runs this criterion benchmark group."]
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.bench_function(format!("l{}", 3), |b| b.iter(|| black_box(3) * 2));
        group.finish();
    }

    #[test]
    fn harness_runs_and_reports() {
        let mut criterion = Criterion::default().sample_size(3);
        sample_bench(&mut criterion);
    }

    criterion_group!(positional, sample_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(2);
        targets = sample_bench, sample_bench
    }

    #[test]
    fn groups_are_callable() {
        positional();
        configured();
    }

    #[test]
    fn summaries_record_every_bench_in_run_order() {
        let mut criterion = Criterion::default().sample_size(3);
        sample_bench(&mut criterion);
        let ids: Vec<&str> = criterion
            .summaries()
            .iter()
            .map(|s| s.id.as_str())
            .collect();
        assert_eq!(ids, ["sum_small", "grouped/l3"]);
        for s in criterion.summaries() {
            assert!(s.low_ns <= s.median_ns && s.median_ns <= s.high_ns);
            assert!(s.median_ns > 0.0);
        }
    }
}
