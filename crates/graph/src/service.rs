//! [`SearchEngine`] adapter: plugs [`RingGraph`] into the
//! `pigeonring-service` sharded query layer.
//!
//! [`RingGraph`] keeps no interior per-query buffers (its Corollary-2
//! optimization is intentionally disabled, see the engine docs), so its
//! scratch is the empty [`GraphScratch`].

use crate::graph::Graph;
use crate::pars::GraphStats;
use crate::ring::RingGraph;
use pigeonring_service::{MergeStats, SearchEngine};

/// Per-batch parameters for graph-edit-distance search through the
/// service layer (`τ` is fixed at index-build time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphParams {
    /// Chain length `l` (clamped to `[1..τ+1]` by the engine).
    pub l: usize,
}

/// Empty per-thread scratch: the graph engine is stateless per query.
#[derive(Clone, Copy, Debug, Default)]
pub struct GraphScratch;

impl MergeStats for GraphStats {
    fn merge(&mut self, other: &Self) {
        GraphStats::merge(self, other);
    }

    fn visit(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("candidates", self.candidates as u64);
        emit("results", self.results as u64);
        emit("subiso_calls", self.subiso_calls as u64);
        emit("boxes_checked", self.boxes_checked as u64);
        emit("skipped_by_corollary2", self.skipped_by_corollary2 as u64);
    }
}

impl SearchEngine for RingGraph {
    type Query = Graph;
    type Params = GraphParams;
    type Stats = GraphStats;
    type Scratch = GraphScratch;
    /// Graph queries decompose against each record's partitions, not a
    /// shared dictionary, so there is no shard-independent query-side
    /// work to hoist: the plan is empty.
    type Plan = ();

    fn num_records(&self) -> usize {
        self.graphs().len()
    }

    fn plan(&self, _scratch: &mut GraphScratch, _query: &Graph) {}

    fn search_planned(
        &self,
        _scratch: &mut GraphScratch,
        _plan: &(),
        query: &Graph,
        params: &GraphParams,
        out: &mut Vec<u32>,
    ) -> GraphStats {
        let (ids, stats) = self.search(query, params.l);
        out.extend(ids);
        stats
    }
}
