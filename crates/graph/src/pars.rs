//! The Pars baseline \[136\] and shared candidate generation.
//!
//! Each data graph is partitioned into `τ + 1` parts at build time. At
//! query time a graph is a candidate iff some part embeds intact in `q`
//! (the pigeonhole filter: `τ` edits damage at most `τ` parts). A cheap
//! label-multiset prefilter (part vertex labels ⊑ query vertex labels,
//! part edge labels ⊑ query edge labels) stands in for Pars' feature
//! index and skips most embedding tests, and the standard size filter
//! `||V_x| − |V_q|| + ||E_x| − |E_q|| > τ` prunes whole graphs first.

use crate::ged::ged_within;
use crate::graph::{Graph, WILDCARD};
use crate::partition::{partition_graph, Part};
use crate::subiso::part_embeds;
use pigeonring_core::fxhash::FxHashMap;

/// Per-query counters for the graph engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GraphStats {
    /// Unique graphs passed to GED verification.
    pub candidates: usize,
    /// Graphs with `ged(x, q) ≤ τ`.
    pub results: usize,
    /// Part embedding tests performed.
    pub subiso_calls: usize,
    /// Ring box evaluations (deletion-neighborhood probes).
    pub boxes_checked: usize,
    /// Chain checks skipped via Corollary 2.
    pub skipped_by_corollary2: usize,
}

impl GraphStats {
    /// Folds `other` into `self`, saturating on overflow (shard
    /// aggregation in the service layer).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.results = self.results.saturating_add(other.results);
        self.subiso_calls = self.subiso_calls.saturating_add(other.subiso_calls);
        self.boxes_checked = self.boxes_checked.saturating_add(other.boxes_checked);
        self.skipped_by_corollary2 = self
            .skipped_by_corollary2
            .saturating_add(other.skipped_by_corollary2);
    }
}

/// Precomputed per-part filter data.
pub(crate) struct PartMeta {
    pub part: Part,
    /// Sorted non-wildcard vertex labels.
    pub vlabels_sorted: Vec<u32>,
    /// Sorted edge labels (full + stubs).
    pub elabels_sorted: Vec<u32>,
}

impl PartMeta {
    pub(crate) fn new(part: Part) -> Self {
        let mut vl: Vec<u32> = part
            .vlabels
            .iter()
            .copied()
            .filter(|&l| l != WILDCARD)
            .collect();
        vl.sort_unstable();
        let mut el: Vec<u32> = part
            .edges
            .iter()
            .map(|&(_, _, l)| l)
            .chain(part.half.iter().map(|&(_, l)| l))
            .collect();
        el.sort_unstable();
        PartMeta {
            part,
            vlabels_sorted: vl,
            elabels_sorted: el,
        }
    }

    /// Label-multiset prefilter: every label the part requires must be
    /// available in the query in sufficient multiplicity.
    pub(crate) fn label_feasible(
        &self,
        q_vcounts: &FxHashMap<u32, u32>,
        q_ecounts: &FxHashMap<u32, u32>,
    ) -> bool {
        multiset_contained(&self.vlabels_sorted, q_vcounts)
            && multiset_contained(&self.elabels_sorted, q_ecounts)
    }
}

fn multiset_contained(sorted: &[u32], counts: &FxHashMap<u32, u32>) -> bool {
    let mut i = 0;
    while i < sorted.len() {
        let l = sorted[i];
        let mut need = 1u32;
        while i + 1 < sorted.len() && sorted[i + 1] == l {
            need += 1;
            i += 1;
        }
        if counts.get(&l).copied().unwrap_or(0) < need {
            return false;
        }
        i += 1;
    }
    true
}

pub(crate) fn query_label_counts(q: &Graph) -> (FxHashMap<u32, u32>, FxHashMap<u32, u32>) {
    let mut vc: FxHashMap<u32, u32> = FxHashMap::default();
    for &l in q.vlabels() {
        *vc.entry(l).or_insert(0) += 1;
    }
    let mut ec: FxHashMap<u32, u32> = FxHashMap::default();
    for (_, _, l) in q.edges() {
        *ec.entry(l).or_insert(0) += 1;
    }
    (vc, ec)
}

/// Size filter: `ged ≥ ||V_x|−|V_q|| + ||E_x|−|E_q||`.
pub(crate) fn size_compatible(x: &Graph, q: &Graph, tau: usize) -> bool {
    x.num_vertices().abs_diff(q.num_vertices()) + x.num_edges().abs_diff(q.num_edges()) <= tau
}

/// The Pars baseline engine.
pub struct Pars {
    graphs: Vec<Graph>,
    tau: usize,
    parts: Vec<Vec<PartMeta>>,
}

impl Pars {
    /// Partitions every data graph into `τ + 1` parts and precomputes the
    /// label prefilter data.
    pub fn build(graphs: Vec<Graph>, tau: usize) -> Self {
        let m = tau + 1;
        let parts = graphs
            .iter()
            .map(|g| {
                partition_graph(g, m)
                    .into_iter()
                    .map(PartMeta::new)
                    .collect()
            })
            .collect();
        Pars { graphs, tau, parts }
    }

    /// The data graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Searches for all graphs with `ged(x, q) ≤ τ`. Returns ascending
    /// ids and statistics.
    pub fn search(&self, q: &Graph) -> (Vec<u32>, GraphStats) {
        let (cands, mut stats) = self.candidates(q);
        let results: Vec<u32> = cands
            .into_iter()
            .filter(|&id| ged_within(&self.graphs[id as usize], q, self.tau as u32).is_some())
            .collect();
        stats.results = results.len();
        (results, stats)
    }

    /// Candidate generation only (no GED verification), for timing the
    /// filter separately (Figure 8's "Cand." series).
    pub fn candidates(&self, q: &Graph) -> (Vec<u32>, GraphStats) {
        let mut stats = GraphStats::default();
        let (qv, qe) = query_label_counts(q);
        let mut cands = Vec::new();
        for (id, g) in self.graphs.iter().enumerate() {
            if !size_compatible(g, q, self.tau) {
                continue;
            }
            for pm in &self.parts[id] {
                if !pm.label_feasible(&qv, &qe) {
                    continue;
                }
                stats.subiso_calls += 1;
                if part_embeds(&pm.part, q) {
                    cands.push(id as u32);
                    break;
                }
            }
        }
        stats.candidates = cands.len();
        (cands, stats)
    }
}

/// Linear-scan reference: verifies every graph.
pub struct LinearScanGraphs<'a> {
    graphs: &'a [Graph],
}

impl<'a> LinearScanGraphs<'a> {
    /// Wraps a dataset.
    pub fn new(graphs: &'a [Graph]) -> Self {
        LinearScanGraphs { graphs }
    }

    /// All ids with `ged(x, q) ≤ τ`, ascending.
    pub fn search(&self, q: &Graph, tau: u32) -> Vec<u32> {
        self.graphs
            .iter()
            .enumerate()
            .filter(|(_, g)| ged_within(g, q, tau).is_some())
            .map(|(id, _)| id as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn molecule_like(seed: u64, n: usize, labels: u32) -> Graph {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut g = Graph::new((0..n).map(|_| (next() % labels as u64) as u32).collect());
        // Sparse connected backbone + a few extra edges.
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            g.add_edge(u, v, (next() % 3) as u32);
        }
        for _ in 0..n / 4 {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v && g.edge_label(u, v).is_none() {
                g.add_edge(u.min(v), u.max(v), (next() % 3) as u32);
            }
        }
        g
    }

    pub(crate) fn edited(g: &Graph, ops: usize, seed: u64) -> Graph {
        // Apply `ops` random label edits (keeps ged ≤ ops).
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut labels = g.vlabels().to_vec();
        let mut edges: Vec<(u32, u32, u32)> = g.edges().collect();
        for _ in 0..ops {
            if next() % 2 == 0 && !labels.is_empty() {
                let i = (next() as usize) % labels.len();
                labels[i] = (labels[i] + 1) % 8;
            } else if !edges.is_empty() {
                let i = (next() as usize) % edges.len();
                edges[i].2 = (edges[i].2 + 1) % 3;
            }
        }
        let mut out = Graph::new(labels);
        for (u, v, l) in edges {
            out.add_edge(u, v, l);
        }
        out
    }

    fn dataset() -> Vec<Graph> {
        let mut graphs = Vec::new();
        for i in 0..30u64 {
            let base = molecule_like(i * 37 + 5, 8, 6);
            graphs.push(base.clone());
            if i % 2 == 0 {
                graphs.push(edited(&base, 1 + (i % 3) as usize, i * 91 + 7));
            }
        }
        graphs
    }

    #[test]
    fn pars_matches_linear_scan() {
        let graphs = dataset();
        let scan = LinearScanGraphs::new(&graphs);
        for tau in 1..=3usize {
            let pars = Pars::build(graphs.clone(), tau);
            for (qid, q) in graphs.iter().enumerate().step_by(7) {
                let expect = scan.search(q, tau as u32);
                let (got, _) = pars.search(q);
                assert_eq!(got, expect, "tau={tau} qid={qid}");
            }
        }
    }

    #[test]
    fn self_query_found() {
        let graphs = dataset();
        let pars = Pars::build(graphs.clone(), 2);
        for qid in (0..graphs.len()).step_by(11) {
            let (res, _) = pars.search(&graphs[qid]);
            assert!(res.contains(&(qid as u32)), "qid={qid}");
        }
    }

    #[test]
    fn prefilter_reduces_subiso_calls() {
        // A query sharing no labels with the data must trigger zero
        // embedding tests.
        let graphs = dataset();
        let pars = Pars::build(graphs.clone(), 2);
        let mut alien = Graph::new(vec![99, 98, 97, 96, 95, 94, 93, 92]);
        for v in 1..8u32 {
            alien.add_edge(v - 1, v, 9);
        }
        let (res, stats) = pars.search(&alien);
        assert!(res.is_empty());
        assert_eq!(stats.subiso_calls, 0);
    }
}
