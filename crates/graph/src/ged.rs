//! Exact graph edit distance with threshold pruning.
//!
//! Depth-first branch-and-bound over vertex mappings (the A* search of
//! Riesen & Bunke in its memory-friendly DFS form): vertices of `a` are
//! assigned in descending-degree order to vertices of `b` or to ε
//! (deletion); edge costs are charged when the *second* endpoint of an
//! edge is resolved, so every edge is counted exactly once. States are
//! pruned with an admissible lower bound: vertex label-multiset distance
//! of the unresolved sides plus the unresolved edge-count gap. The
//! operations priced (all unit cost) are exactly the paper's §2.2 set.

use crate::graph::Graph;
use pigeonring_core::fxhash::FxHashMap;

const EPS: u32 = u32::MAX - 1;
const UNASSIGNED: u32 = u32::MAX;

struct Search<'a> {
    a: &'a Graph,
    b: &'a Graph,
    tau: u32,
    /// a-vertices in assignment order.
    order: Vec<u32>,
    mapping: Vec<u32>,
    used: Vec<bool>,
    /// Unresolved-label counts (a side / b side).
    la: FxHashMap<u32, i32>,
    lb: FxHashMap<u32, i32>,
    /// Edges with ≥1 unresolved endpoint on each side.
    ea: i32,
    eb: i32,
    best: Option<u32>,
}

impl<'a> Search<'a> {
    fn new(a: &'a Graph, b: &'a Graph, tau: u32) -> Self {
        let mut order: Vec<u32> = (0..a.num_vertices() as u32).collect();
        order.sort_by_key(|&v| core::cmp::Reverse(a.degree(v)));
        let mut la: FxHashMap<u32, i32> = FxHashMap::default();
        for &l in a.vlabels() {
            *la.entry(l).or_insert(0) += 1;
        }
        let mut lb: FxHashMap<u32, i32> = FxHashMap::default();
        for &l in b.vlabels() {
            *lb.entry(l).or_insert(0) += 1;
        }
        Search {
            a,
            b,
            tau,
            order,
            mapping: vec![UNASSIGNED; a.num_vertices()],
            used: vec![false; b.num_vertices()],
            la,
            lb,
            ea: a.num_edges() as i32,
            eb: b.num_edges() as i32,
            best: None,
        }
    }

    /// Admissible lower bound on the remaining cost.
    fn h(&self) -> u32 {
        // Vertex part: max(|R1|, |R2|) − |multiset ∩|.
        let r1: i32 = self.la.values().sum();
        let r2: i32 = self.lb.values().sum();
        let mut inter = 0i32;
        for (l, &c1) in &self.la {
            if let Some(&c2) = self.lb.get(l) {
                inter += c1.min(c2);
            }
        }
        let hv = r1.max(r2) - inter;
        // Edge part: the unresolved edge counts can differ only through
        // insert/delete operations.
        let he = (self.ea - self.eb).abs();
        (hv + he) as u32
    }

    /// Cost of assigning a-vertex `v` to b-vertex `u` (or ε): vertex op
    /// plus all edges resolved by this assignment.
    fn assign_cost(&self, v: u32, u: u32) -> u32 {
        let mut cost = 0u32;
        if u == EPS {
            cost += 1; // delete v (edge deletions are charged below)
        } else if self.a.vlabel(v) != self.b.vlabel(u) {
            cost += 1; // relabel
        }
        // Edges of `a` between v and already-assigned vertices.
        for &(w, l1) in self.a.neighbors(v) {
            let img = self.mapping[w as usize];
            if img == UNASSIGNED {
                continue;
            }
            if u == EPS || img == EPS {
                cost += 1; // edge must be deleted
            } else {
                match self.b.edge_label(u, img) {
                    Some(l2) if l2 == l1 => {}
                    Some(_) => cost += 1, // relabel edge
                    None => cost += 1,    // delete edge
                }
            }
        }
        // Edges of `b` between u and images of assigned vertices that have
        // no counterpart in `a` (insertions).
        if u != EPS {
            for &(w2, _) in self.b.neighbors(u) {
                if !self.used[w2 as usize] {
                    continue;
                }
                // Find the a-vertex mapped to w2.
                // (Linear scan is fine at these sizes; mapping is dense.)
                let pre = self
                    .mapping
                    .iter()
                    .position(|&img| img == w2)
                    .expect("used image has a preimage") as u32;
                if self.a.edge_label(v, pre).is_none() {
                    cost += 1;
                }
            }
        }
        cost
    }

    /// Number of `v`'s edges resolved by assigning it now.
    fn edges_resolved_a(&self, v: u32) -> i32 {
        self.a
            .neighbors(v)
            .iter()
            .filter(|&&(w, _)| self.mapping[w as usize] != UNASSIGNED)
            .count() as i32
    }

    fn edges_resolved_b(&self, u: u32) -> i32 {
        self.b
            .neighbors(u)
            .iter()
            .filter(|&&(w, _)| self.used[w as usize])
            .count() as i32
    }

    fn dfs(&mut self, depth: usize, g: u32) {
        if let Some(b) = self.best {
            if g >= b {
                return; // cannot improve
            }
        }
        if depth == self.order.len() {
            // Remaining b vertices are insertions; remaining b edges with
            // an unused endpoint are insertions.
            let mut total = g;
            total += self.used.iter().filter(|&&u| !u).count() as u32;
            let mut eb_rest = 0u32;
            for (u, v, _) in self.b.edges() {
                if !self.used[u as usize] || !self.used[v as usize] {
                    eb_rest += 1;
                }
            }
            total += eb_rest;
            if total <= self.tau && self.best.is_none_or(|b| total < b) {
                self.best = Some(total);
            }
            return;
        }
        let v = self.order[depth];
        let vl = self.a.vlabel(v);
        let res_a = self.edges_resolved_a(v);

        // Try mapping v to each unused u (label-matching first for better
        // bounds early).
        let mut candidates: Vec<u32> = (0..self.b.num_vertices() as u32)
            .filter(|&u| !self.used[u as usize])
            .collect();
        candidates.sort_by_key(|&u| self.b.vlabel(u) != vl);
        for u in candidates {
            let step = self.assign_cost(v, u);
            let res_b = self.edges_resolved_b(u);
            // Apply.
            self.mapping[v as usize] = u;
            self.used[u as usize] = true;
            *self.la.get_mut(&vl).expect("label tracked") -= 1;
            *self.lb.get_mut(&self.b.vlabel(u)).expect("label tracked") -= 1;
            self.ea -= res_a;
            self.eb -= res_b;
            if g + step + self.h() <= self.tau {
                self.dfs(depth + 1, g + step);
            }
            // Undo.
            self.ea += res_a;
            self.eb += res_b;
            *self.la.get_mut(&vl).expect("label tracked") += 1;
            *self.lb.get_mut(&self.b.vlabel(u)).expect("label tracked") += 1;
            self.mapping[v as usize] = UNASSIGNED;
            self.used[u as usize] = false;
        }
        // Try v → ε.
        let step = self.assign_cost(v, EPS);
        self.mapping[v as usize] = EPS;
        *self.la.get_mut(&vl).expect("label tracked") -= 1;
        self.ea -= res_a;
        if g + step + self.h() <= self.tau {
            self.dfs(depth + 1, g + step);
        }
        self.ea += res_a;
        *self.la.get_mut(&vl).expect("label tracked") += 1;
        self.mapping[v as usize] = UNASSIGNED;
    }
}

/// Exact threshold check: returns `Some(ged(a, b))` iff it is `≤ tau`.
pub fn ged_within(a: &Graph, b: &Graph, tau: u32) -> Option<u32> {
    // Cheap necessary condition first.
    let size_gap =
        a.num_vertices().abs_diff(b.num_vertices()) + a.num_edges().abs_diff(b.num_edges());
    if size_gap > tau as usize {
        return None;
    }
    let mut s = Search::new(a, b, tau);
    if s.h() > tau {
        return None;
    }
    s.dfs(0, 0);
    s.best
}

/// Exact graph edit distance (iterative deepening over [`ged_within`]).
/// Intended for tests and small graphs.
pub fn ged(a: &Graph, b: &Graph) -> u32 {
    let cap = (a.num_vertices() + b.num_vertices() + a.num_edges() + b.num_edges()) as u32;
    for tau in 0..=cap {
        if let Some(d) = ged_within(a, b, tau) {
            return d;
        }
    }
    unreachable!("deleting everything and inserting everything always fits the cap");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(vl: &[u32], el: &[u32]) -> Graph {
        let mut g = Graph::new(vl.to_vec());
        for (i, &l) in el.iter().enumerate() {
            g.add_edge(i as u32, i as u32 + 1, l);
        }
        g
    }

    #[test]
    fn identical_graphs_distance_zero() {
        let g = path(&[1, 2, 3], &[7, 8]);
        assert_eq!(ged(&g, &g), 0);
        assert_eq!(ged_within(&g, &g, 0), Some(0));
    }

    #[test]
    fn single_operations_cost_one() {
        let g = path(&[1, 2, 3], &[7, 8]);
        // Vertex relabel.
        let g2 = path(&[1, 2, 4], &[7, 8]);
        assert_eq!(ged(&g, &g2), 1);
        // Edge relabel.
        let g3 = path(&[1, 2, 3], &[7, 9]);
        assert_eq!(ged(&g, &g3), 1);
        // Edge deletion.
        let mut g4 = Graph::new(vec![1, 2, 3]);
        g4.add_edge(0, 1, 7);
        assert_eq!(ged(&g, &g4), 1);
        // Isolated vertex insertion.
        let mut g5 = Graph::new(vec![1, 2, 3, 9]);
        g5.add_edge(0, 1, 7);
        g5.add_edge(1, 2, 8);
        assert_eq!(ged(&g, &g5), 1);
    }

    #[test]
    fn vertex_with_edges_needs_deletions_first() {
        // Removing a degree-2 vertex costs 2 edge deletions + 1 vertex
        // deletion.
        let g = path(&[1, 2, 1], &[5, 5]);
        let h = Graph::new(vec![1, 1]);
        assert_eq!(ged(&g, &h), 3);
    }

    #[test]
    fn symmetric() {
        let a = path(&[1, 2, 3, 4], &[1, 1, 2]);
        let b = path(&[1, 3, 3], &[1, 2]);
        assert_eq!(ged(&a, &b), ged(&b, &a));
    }

    #[test]
    fn triangle_inequality_on_samples() {
        let gs = [
            path(&[1, 2, 3], &[1, 1]),
            path(&[1, 2, 4], &[1, 2]),
            path(&[2, 2, 3, 3], &[1, 1, 1]),
            Graph::new(vec![5]),
        ];
        for a in &gs {
            for b in &gs {
                for c in &gs {
                    assert!(ged(a, c) <= ged(a, b) + ged(b, c));
                }
            }
        }
    }

    #[test]
    fn within_respects_threshold() {
        let a = path(&[1, 2, 3, 4, 5], &[1, 1, 1, 1]);
        let b = path(&[5, 4, 3, 2, 1], &[1, 1, 1, 1]);
        let d = ged(&a, &b);
        assert_eq!(ged_within(&a, &b, d), Some(d));
        if d > 0 {
            assert_eq!(ged_within(&a, &b, d - 1), None);
        }
    }

    #[test]
    fn size_gap_shortcut() {
        let a = Graph::new(vec![1]);
        let b = path(&[1, 2, 3, 4, 5, 6], &[1, 1, 1, 1, 1]);
        assert_eq!(ged_within(&a, &b, 3), None);
    }

    #[test]
    fn empty_vs_nonempty() {
        let a = Graph::new(vec![]);
        let b = path(&[1, 2], &[3]);
        assert_eq!(ged(&a, &b), 3); // insert 2 vertices + 1 edge
    }

    #[test]
    fn brute_force_cross_check_small() {
        // Pseudo-random small graphs; check ged via op-count witness:
        // apply k random ops to a graph, distance must be ≤ k.
        let mut s = 0xABCDu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for _ in 0..40 {
            let n = 3 + (next() % 3) as usize;
            let mut g = Graph::new((0..n).map(|_| (next() % 3) as u32).collect());
            for u in 0..n as u32 {
                for v in u + 1..n as u32 {
                    if next() % 2 == 0 {
                        g.add_edge(u, v, (next() % 2) as u32);
                    }
                }
            }
            // Apply one relabel.
            let mut h = g.clone();
            let mut labels = h.vlabels().to_vec();
            let v = (next() % n as u64) as usize;
            labels[v] = labels[v].wrapping_add(1) % 5;
            let mut h2 = Graph::new(labels);
            for (u, v, l) in h.edges() {
                h2.add_edge(u, v, l);
            }
            h = h2;
            let d = ged(&g, &h);
            assert!(d <= 1, "one op must cost at most 1, got {d}");
        }
    }
}
