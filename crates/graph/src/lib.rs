//! # pigeonring-graph
//!
//! Graph edit distance search (Problem 5 of the paper): given a
//! collection of labeled undirected graphs and a query graph `q`, find
//! all `x` with `ged(x, q) ≤ τ`. Edit operations are those of §2.2:
//! insert/delete an isolated labeled vertex, change a vertex label,
//! insert/delete a labeled edge, change an edge label.
//!
//! Engines:
//!
//! * [`Pars`] — the Pars baseline \[136\]: each data graph is divided into
//!   `τ + 1` disjoint subgraphs (possibly holding *half-edges*: edge stubs
//!   whose far endpoint lies in another part). One edit operation damages
//!   at most one part, so a result must have at least one part that
//!   embeds intact in `q` (subgraph isomorphism including half-edges).
//! * [`RingGraph`] — the §6.4 pigeonring engine: from each embedding part
//!   `i` (box value 0), extend the chain over the following parts, lower
//!   bounding each box by the *deletion neighborhood* \[62, 106\]: part
//!   `x_j` needs more than `b` operations iff no variant of `x_j`
//!   produced by at most `b` operations (delete an edge/stub, delete an
//!   isolated vertex, wildcard a vertex label) embeds in `q`.
//!
//! The filtering instance `⟨partition, min-GED-to-subgraph boxes,
//! D(τ) = τ⟩` satisfies `‖B(x, q)‖₁ ≤ ged(x, q)` (each edit damages one
//! part by at most one operation), hence is complete but not tight;
//! candidates are verified by an exact threshold-pruned A* GED
//! ([`ged::ged_within`]).

pub mod ged;
pub mod graph;
pub mod neighborhood;
pub mod pars;
pub mod partition;
pub mod ring;
pub mod service;
pub mod subiso;

pub use ged::{ged, ged_within};
pub use graph::Graph;
pub use pars::{GraphStats, Pars};
pub use partition::{partition_graph, Part};
pub use ring::RingGraph;
pub use service::{GraphParams, GraphScratch};
pub use subiso::part_embeds;
