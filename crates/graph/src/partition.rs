//! Partitioning a data graph into `τ + 1` disjoint parts with half-edges
//! (the featuring function of §6.4, following Pars \[136\]).
//!
//! Vertices are split into `τ + 1` groups (BFS order, near-equal sizes,
//! so parts tend to be connected). An edge whose endpoints fall in the
//! same group is a *full edge* of that part; an edge crossing groups is
//! assigned to exactly one endpoint's part as a *half-edge* (a labeled
//! stub on the local endpoint). With this ownership every edit operation
//! damages at most one part: a vertex relabel damages the vertex's part;
//! an edge operation damages the edge's owning part; vertex
//! insert/delete only involves isolated vertices. Hence
//! `‖B(x, q)‖₁ ≤ ged(x, q)` for the box values of §6.4.

use crate::graph::Graph;

/// One part of a partitioned data graph: an induced subgraph plus
/// half-edge stubs.
#[derive(Clone, Debug, Default)]
pub struct Part {
    /// Labels of the part's vertices (local indexing `0..k`).
    pub vlabels: Vec<u32>,
    /// Full edges `(local_u, local_v, label)` with `local_u < local_v`.
    pub edges: Vec<(u32, u32, u32)>,
    /// Half-edge stubs `(local_v, edge_label)`.
    pub half: Vec<(u32, u32)>,
}

impl Part {
    /// Total structure size: vertices + full edges + stubs (the maximum
    /// number of operations that can damage this part).
    pub fn size(&self) -> usize {
        self.vlabels.len() + self.edges.len() + self.half.len()
    }
}

/// Splits `g` into `m` parts (BFS vertex order, near-equal group sizes).
/// Cross-group edges are owned by the part of their smaller-group
/// endpoint (deterministic).
///
/// # Panics
/// Panics if `m == 0`.
pub fn partition_graph(g: &Graph, m: usize) -> Vec<Part> {
    assert!(m > 0, "need at least one part");
    let n = g.num_vertices();
    // BFS order over all components for locality.
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    for root in 0..n as u32 {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        let mut queue = std::collections::VecDeque::from([root]);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &(v, _) in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    // Assign near-equal contiguous chunks of the BFS order to parts.
    let mut group = vec![0usize; n];
    let base = n / m;
    let extra = n % m;
    let mut idx = 0usize;
    for (p, g_assign) in (0..m).map(|p| (p, base + usize::from(p < extra))) {
        for _ in 0..g_assign {
            group[order[idx] as usize] = p;
            idx += 1;
        }
    }
    // Local vertex numbering within each part.
    let mut local = vec![0u32; n];
    let mut parts: Vec<Part> = vec![Part::default(); m];
    for &u in &order {
        let p = group[u as usize];
        local[u as usize] = parts[p].vlabels.len() as u32;
        parts[p].vlabels.push(g.vlabel(u));
    }
    for (u, v, l) in g.edges() {
        let (pu, pv) = (group[u as usize], group[v as usize]);
        if pu == pv {
            let (a, b) = (local[u as usize], local[v as usize]);
            let (a, b) = if a < b { (a, b) } else { (b, a) };
            parts[pu].edges.push((a, b, l));
        } else {
            // Deterministic ownership: the smaller-group endpoint keeps
            // the stub.
            let owner = pu.min(pv);
            let lv = if owner == pu {
                local[u as usize]
            } else {
                local[v as usize]
            };
            parts[owner].half.push((lv, l));
        }
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(labels: &[u32]) -> Graph {
        let mut g = Graph::new(labels.to_vec());
        for i in 0..labels.len() - 1 {
            g.add_edge(i as u32, i as u32 + 1, 0);
        }
        g
    }

    #[test]
    fn partition_covers_all_vertices() {
        let g = path_graph(&[1, 2, 3, 4, 5, 6, 7]);
        for m in 1..=4usize {
            let parts = partition_graph(&g, m);
            assert_eq!(parts.len(), m);
            let total: usize = parts.iter().map(|p| p.vlabels.len()).sum();
            assert_eq!(total, 7, "m={m}");
            // Sizes differ by at most one.
            let sizes: Vec<usize> = parts.iter().map(|p| p.vlabels.len()).collect();
            let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(mx - mn <= 1, "m={m}: {sizes:?}");
        }
    }

    #[test]
    fn every_edge_owned_exactly_once() {
        let mut g = Graph::new(vec![0, 1, 2, 3, 4, 5]);
        g.add_edge(0, 1, 9);
        g.add_edge(1, 2, 8);
        g.add_edge(2, 3, 7);
        g.add_edge(3, 4, 6);
        g.add_edge(4, 5, 5);
        g.add_edge(0, 5, 4);
        for m in 1..=3usize {
            let parts = partition_graph(&g, m);
            let owned: usize = parts.iter().map(|p| p.edges.len() + p.half.len()).sum();
            assert_eq!(owned, g.num_edges(), "m={m}");
        }
    }

    #[test]
    fn single_part_keeps_whole_graph() {
        let g = path_graph(&[7, 8, 9]);
        let parts = partition_graph(&g, 1);
        assert_eq!(parts[0].vlabels.len(), 3);
        assert_eq!(parts[0].edges.len(), 2);
        assert!(parts[0].half.is_empty());
    }

    #[test]
    fn disconnected_graphs_partition_fine() {
        let g = Graph::new(vec![1, 1, 2, 2]); // four isolated vertices
        let parts = partition_graph(&g, 2);
        assert_eq!(parts.iter().map(|p| p.vlabels.len()).sum::<usize>(), 4);
    }

    #[test]
    fn part_size_counts_structure() {
        let g = path_graph(&[1, 2, 3, 4]);
        let parts = partition_graph(&g, 2);
        let total_size: usize = parts.iter().map(|p| p.size()).sum();
        // 4 vertices + 3 edges (full or half) = 7.
        assert_eq!(total_size, 7);
    }
}
