//! Subgraph-isomorphism test for parts (with half-edges and wildcards).
//!
//! [`part_embeds`] decides whether a [`Part`] appears intact in a query
//! graph: an injective mapping of the part's vertices to query vertices
//! such that (1) vertex labels match (the wildcard label matches
//! anything), (2) every full edge exists in the query with the same
//! label, and (3) for every mapped vertex, the query vertex has enough
//! incident edges of each label to cover the part's full edges plus
//! half-edge stubs at that vertex (a sound per-label counting relaxation
//! of exact distinct-stub matching: an intact part always satisfies it,
//! so filtering stays complete; it can only admit extra candidates).
//!
//! The search is VF2-flavored backtracking with label/degree pruning,
//! visiting part vertices in a connectivity-aware static order.

use crate::graph::{Graph, WILDCARD};
use crate::partition::Part;

/// Per-part precomputed matching state, reused across query probes.
struct PartView<'a> {
    part: &'a Part,
    /// Full-edge adjacency within the part: `(other_local, label)`.
    adj: Vec<Vec<(u32, u32)>>,
    /// Per vertex: required incident-edge label counts
    /// (full edges + stubs), as sorted `(label, count)`.
    need: Vec<Vec<(u32, u32)>>,
    /// Matching order: connected-first static order.
    order: Vec<u32>,
}

impl<'a> PartView<'a> {
    fn new(part: &'a Part) -> Self {
        let k = part.vlabels.len();
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
        for &(u, v, l) in &part.edges {
            adj[u as usize].push((v, l));
            adj[v as usize].push((u, l));
        }
        let mut need: Vec<Vec<(u32, u32)>> = vec![Vec::new(); k];
        let bump = |v: usize, label: u32, need: &mut Vec<Vec<(u32, u32)>>| match need[v]
            .iter_mut()
            .find(|(l, _)| *l == label)
        {
            Some((_, c)) => *c += 1,
            None => need[v].push((label, 1)),
        };
        for &(u, v, l) in &part.edges {
            bump(u as usize, l, &mut need);
            bump(v as usize, l, &mut need);
        }
        for &(v, l) in &part.half {
            bump(v as usize, l, &mut need);
        }
        // Order: highest-degree first, then neighbors-of-mapped first
        // (greedy connected order).
        let mut order: Vec<u32> = (0..k as u32).collect();
        order.sort_by_key(|&v| core::cmp::Reverse(adj[v as usize].len()));
        let mut connected_order = Vec::with_capacity(k);
        let mut placed = vec![false; k];
        for &seed in &order {
            if placed[seed as usize] {
                continue;
            }
            let mut stack = vec![seed];
            placed[seed as usize] = true;
            while let Some(v) = stack.pop() {
                connected_order.push(v);
                for &(w, _) in &adj[v as usize] {
                    if !placed[w as usize] {
                        placed[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
        }
        PartView {
            part,
            adj,
            need,
            order: connected_order,
        }
    }
}

/// Whether `part` embeds intact in `q` (see module docs).
pub fn part_embeds(part: &Part, q: &Graph) -> bool {
    let k = part.vlabels.len();
    if k == 0 {
        return true;
    }
    if k > q.num_vertices() {
        return false;
    }
    let view = PartView::new(part);
    // Quick label-multiset feasibility: every required (vertex label,
    // incident-count) must have some feasible query vertex.
    let mut mapping = vec![u32::MAX; k];
    let mut used = vec![false; q.num_vertices()];
    backtrack(&view, q, 0, &mut mapping, &mut used)
}

fn feasible(view: &PartView<'_>, q: &Graph, v: u32, u: u32, mapping: &[u32]) -> bool {
    let vl = view.part.vlabels[v as usize];
    if vl != WILDCARD && q.vlabel(u) != vl {
        return false;
    }
    // Per-label incident capacity.
    for &(label, count) in &view.need[v as usize] {
        if q.incident_label_count(u, label) < count as usize {
            return false;
        }
    }
    // Full edges to already-mapped part vertices must exist with the same
    // label.
    for &(w, l) in &view.adj[v as usize] {
        let img = mapping[w as usize];
        if img != u32::MAX && q.edge_label(u, img) != Some(l) {
            return false;
        }
    }
    true
}

fn backtrack(
    view: &PartView<'_>,
    q: &Graph,
    depth: usize,
    mapping: &mut [u32],
    used: &mut [bool],
) -> bool {
    if depth == view.order.len() {
        return true;
    }
    let v = view.order[depth];
    // Candidate images: neighbors of mapped images when v touches a
    // mapped vertex (connectivity pruning), else all query vertices.
    let mut from_mapped: Option<u32> = None;
    for &(w, _) in &view.adj[v as usize] {
        if mapping[w as usize] != u32::MAX {
            from_mapped = Some(mapping[w as usize]);
            break;
        }
    }
    let try_vertex = |u: u32, mapping: &mut [u32], used: &mut [bool]| -> bool {
        if used[u as usize] || !feasible(view, q, v, u, mapping) {
            return false;
        }
        mapping[v as usize] = u;
        used[u as usize] = true;
        let ok = backtrack(view, q, depth + 1, mapping, used);
        if !ok {
            mapping[v as usize] = u32::MAX;
            used[u as usize] = false;
        }
        ok
    };
    match from_mapped {
        Some(anchor) => {
            // v must map adjacent to the anchor image.
            let nbrs: Vec<u32> = q.neighbors(anchor).iter().map(|&(u, _)| u).collect();
            for u in nbrs {
                if try_vertex(u, mapping, used) {
                    return true;
                }
            }
            false
        }
        None => {
            for u in 0..q.num_vertices() as u32 {
                if try_vertex(u, mapping, used) {
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::partition_graph;

    fn labeled_path(vl: &[u32], el: &[u32]) -> Graph {
        let mut g = Graph::new(vl.to_vec());
        for (i, &l) in el.iter().enumerate() {
            g.add_edge(i as u32, i as u32 + 1, l);
        }
        g
    }

    #[test]
    fn whole_graph_embeds_in_itself() {
        let g = labeled_path(&[1, 2, 3, 2], &[5, 6, 5]);
        let parts = partition_graph(&g, 1);
        assert!(part_embeds(&parts[0], &g));
    }

    #[test]
    fn parts_of_a_graph_embed_in_it() {
        let g = labeled_path(&[1, 2, 3, 2, 1, 3], &[5, 6, 5, 6, 5]);
        for m in 1..=4usize {
            for part in partition_graph(&g, m) {
                assert!(part_embeds(&part, &g), "m={m} part={part:?}");
            }
        }
    }

    #[test]
    fn label_mismatch_rejects() {
        let part = Part {
            vlabels: vec![7],
            edges: vec![],
            half: vec![],
        };
        let q = Graph::new(vec![1, 2, 3]);
        assert!(!part_embeds(&part, &q));
        let part_ok = Part {
            vlabels: vec![2],
            edges: vec![],
            half: vec![],
        };
        assert!(part_embeds(&part_ok, &q));
    }

    #[test]
    fn wildcard_matches_any_label() {
        let part = Part {
            vlabels: vec![crate::graph::WILDCARD],
            edges: vec![],
            half: vec![],
        };
        let q = Graph::new(vec![42]);
        assert!(part_embeds(&part, &q));
    }

    #[test]
    fn full_edge_label_must_match() {
        let part = Part {
            vlabels: vec![1, 2],
            edges: vec![(0, 1, 9)],
            half: vec![],
        };
        let mut q = Graph::new(vec![1, 2]);
        q.add_edge(0, 1, 8);
        assert!(!part_embeds(&part, &q));
        let mut q2 = Graph::new(vec![1, 2]);
        q2.add_edge(0, 1, 9);
        assert!(part_embeds(&part, &q2));
    }

    #[test]
    fn half_edge_requires_incident_capacity() {
        // Part: single vertex labeled 1 with two stubs of label 3.
        let part = Part {
            vlabels: vec![1],
            edges: vec![],
            half: vec![(0, 3), (0, 3)],
        };
        // q1: vertex 1 with only one incident label-3 edge: reject.
        let mut q1 = Graph::new(vec![1, 2]);
        q1.add_edge(0, 1, 3);
        assert!(!part_embeds(&part, &q1));
        // q2: vertex 1 with two incident label-3 edges: accept.
        let mut q2 = Graph::new(vec![1, 2, 2]);
        q2.add_edge(0, 1, 3);
        q2.add_edge(0, 2, 3);
        assert!(part_embeds(&part, &q2));
    }

    #[test]
    fn injectivity_enforced() {
        // Two part vertices with the same label cannot share one query
        // vertex.
        let part = Part {
            vlabels: vec![5, 5],
            edges: vec![],
            half: vec![],
        };
        let q1 = Graph::new(vec![5]);
        assert!(!part_embeds(&part, &q1));
        let q2 = Graph::new(vec![5, 5]);
        assert!(part_embeds(&part, &q2));
    }

    #[test]
    fn disconnected_part_embeds() {
        let part = Part {
            vlabels: vec![1, 2],
            edges: vec![],
            half: vec![],
        };
        let mut q = Graph::new(vec![2, 3, 1]);
        q.add_edge(0, 1, 0);
        assert!(part_embeds(&part, &q));
    }

    #[test]
    fn triangle_does_not_embed_in_path() {
        let mut tri = Graph::new(vec![1, 1, 1]);
        tri.add_edge(0, 1, 0);
        tri.add_edge(1, 2, 0);
        tri.add_edge(0, 2, 0);
        let parts = partition_graph(&tri, 1);
        let path = labeled_path(&[1, 1, 1], &[0, 0]);
        assert!(!part_embeds(&parts[0], &path));
    }
}
