//! The pigeonring graph-edit-distance engine (§6.4).
//!
//! Same partition and embedding test as [`crate::pars::Pars`]; from each
//! embedding part `i` (box value 0) the chain is extended clockwise with
//! deletion-neighborhood lower bounds under the uniform Theorem 3 quotas
//! `‖c^{l'}‖₁ ≤ l'·τ/m` with `m = τ + 1`. Following Example 12, the box
//! at ring position `j` is probed with the *remaining budget*
//! `⌊l'·τ/m⌋ − Σ(previous boxes)` (capped at `NEIGHBORHOOD_CAP = 1`
//! operation, see the constant's comment): if no variant of part `j` within
//! that many deletion-neighborhood operations embeds in `q`, the prefix
//! is non-viable.
//!
//! Using lower bounds can only keep chains viable longer than the true
//! box values would, so completeness is preserved; the tests assert
//! equality with linear scan and candidate-set inclusion w.r.t. Pars.
//!
//! Unlike the other three engines, the Corollary-2 start-skipping
//! optimization is **not** applied here: with budget-dependent probes the
//! effective box values are path-dependent (a box probed under a small
//! remaining budget reports a weaker bound than under a large one), so a
//! failure along one chain does not imply failure of the overlapping
//! chains Corollary 2 would skip. Each embedding part gets an
//! independent chain check instead — there are at most `τ + 1` per graph,
//! so the loss is negligible.

use crate::ged::ged_within;
use crate::graph::Graph;
use crate::neighborhood::min_ops_to_match;
use crate::pars::{query_label_counts, size_compatible, GraphStats, PartMeta};
use crate::partition::partition_graph;
use crate::subiso::part_embeds;

/// The pigeonring graph search engine. `l = 1` is exactly Pars.
pub struct RingGraph {
    graphs: Vec<Graph>,
    tau: usize,
    parts: Vec<Vec<PartMeta>>,
}

impl RingGraph {
    /// Partitions every data graph into `τ + 1` parts.
    pub fn build(graphs: Vec<Graph>, tau: usize) -> Self {
        let m = tau + 1;
        let parts = graphs
            .iter()
            .map(|g| {
                partition_graph(g, m)
                    .into_iter()
                    .map(PartMeta::new)
                    .collect()
            })
            .collect();
        RingGraph { graphs, tau, parts }
    }

    /// The data graphs.
    pub fn graphs(&self) -> &[Graph] {
        &self.graphs
    }

    /// Exact integer quota `⌊l'·τ/m⌋` of the uniform scheme.
    #[inline]
    fn quota(&self, l_prime: usize) -> i64 {
        (l_prime as i64 * self.tau as i64) / (self.tau as i64 + 1)
    }

    /// Deletion-neighborhood probes are capped at this many operations
    /// (Example 12's budget): the variant count grows as
    /// (ops per level)^budget, and uncapped budgets (up to τ − 1 on long
    /// chains) make the filter cost dwarf what it saves — the paper's own
    /// light-weight-filter rule (§6). A probe that fails at the cap only
    /// certifies `b_j ≥ cap + 1`, which is still a valid lower bound, so
    /// completeness is preserved.
    const NEIGHBORHOOD_CAP: i64 = 1;

    /// Searches for all graphs with `ged(x, q) ≤ τ` using chain length
    /// `l` (clamped to `[1..τ+1]`). Returns ascending ids and statistics.
    pub fn search(&self, q: &Graph, l: usize) -> (Vec<u32>, GraphStats) {
        let (cands, mut stats) = self.candidates(q, l);
        let results: Vec<u32> = cands
            .into_iter()
            .filter(|&id| ged_within(&self.graphs[id as usize], q, self.tau as u32).is_some())
            .collect();
        stats.results = results.len();
        (results, stats)
    }

    /// Candidate generation only (no GED verification), for timing the
    /// filter separately (Figure 8's "Cand." series).
    pub fn candidates(&self, q: &Graph, l: usize) -> (Vec<u32>, GraphStats) {
        let m = self.tau + 1;
        let l = l.clamp(1, m);
        let mut stats = GraphStats::default();
        let (qv, qe) = query_label_counts(q);
        let mut cands = Vec::new();

        for (id, g) in self.graphs.iter().enumerate() {
            if !size_compatible(g, q, self.tau) {
                continue;
            }
            let parts = &self.parts[id];
            let mut is_candidate = false;
            for (i, pm) in parts.iter().enumerate() {
                if !pm.label_feasible(&qv, &qe) {
                    continue;
                }
                stats.subiso_calls += 1;
                if !part_embeds(&pm.part, q) {
                    continue;
                }
                // Viable box (b_i = 0); extend the chain to length l.
                let mut sum = 0i64;
                let mut fail_at = None;
                for l_prime in 2..=l {
                    let j = (i + l_prime - 1) % m;
                    let budget = self.quota(l_prime) - sum;
                    if budget < 0 {
                        fail_at = Some(l_prime);
                        break;
                    }
                    let probe = budget.min(Self::NEIGHBORHOOD_CAP);
                    stats.boxes_checked += 1;
                    match min_ops_to_match(&parts[j].part, q, probe as u32) {
                        Some(b) => sum += b as i64,
                        None if probe < budget => {
                            // Capped probe: we only know b_j ≥ probe + 1.
                            sum += probe + 1;
                            if sum > self.quota(l_prime) {
                                fail_at = Some(l_prime);
                                break;
                            }
                        }
                        None => {
                            fail_at = Some(l_prime);
                            break;
                        }
                    }
                }
                if fail_at.is_none() {
                    is_candidate = true;
                    break;
                }
            }
            if is_candidate {
                cands.push(id as u32);
            }
        }
        stats.candidates = cands.len();
        (cands, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pars::{LinearScanGraphs, Pars};

    fn molecule_like(seed: u64, n: usize, labels: u32) -> Graph {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut g = Graph::new((0..n).map(|_| (next() % labels as u64) as u32).collect());
        for v in 1..n as u32 {
            let u = (next() % v as u64) as u32;
            g.add_edge(u, v, (next() % 3) as u32);
        }
        for _ in 0..n / 4 {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            if u != v && g.edge_label(u, v).is_none() {
                g.add_edge(u.min(v), u.max(v), (next() % 3) as u32);
            }
        }
        g
    }

    fn dataset() -> Vec<Graph> {
        let mut graphs = Vec::new();
        for i in 0..24u64 {
            let base = molecule_like(i * 31 + 3, 8, 6);
            graphs.push(base.clone());
        }
        graphs
    }

    #[test]
    fn ring_matches_linear_scan_all_l() {
        let graphs = dataset();
        let scan = LinearScanGraphs::new(&graphs);
        for tau in 1..=3usize {
            let ring = RingGraph::build(graphs.clone(), tau);
            for (qid, q) in graphs.iter().enumerate().step_by(5) {
                let expect = scan.search(q, tau as u32);
                for l in 1..=(tau + 1) {
                    let (got, _) = ring.search(q, l);
                    assert_eq!(got, expect, "tau={tau} qid={qid} l={l}");
                }
            }
        }
    }

    #[test]
    fn ring_l1_equals_pars() {
        let graphs = dataset();
        let pars = Pars::build(graphs.clone(), 2);
        let ring = RingGraph::build(graphs.clone(), 2);
        for (qid, q) in graphs.iter().enumerate().step_by(3) {
            let (r1, s1) = pars.search(q);
            let (r2, s2) = ring.search(q, 1);
            assert_eq!(r1, r2, "qid={qid}");
            assert_eq!(s1.candidates, s2.candidates, "qid={qid}");
        }
    }

    #[test]
    fn candidates_shrink_with_l() {
        let graphs = dataset();
        let ring = RingGraph::build(graphs.clone(), 3);
        for (qid, q) in graphs.iter().enumerate().step_by(7) {
            let mut prev = usize::MAX;
            for l in 1..=4usize {
                let (_, stats) = ring.search(q, l);
                assert!(stats.candidates <= prev, "qid={qid} l={l}");
                prev = stats.candidates;
            }
        }
    }

    #[test]
    fn self_query_survives_all_chain_lengths() {
        let graphs = dataset();
        let ring = RingGraph::build(graphs.clone(), 2);
        for qid in (0..graphs.len()).step_by(5) {
            for l in 1..=3usize {
                let (res, _) = ring.search(&graphs[qid], l);
                assert!(res.contains(&(qid as u32)), "qid={qid} l={l}");
            }
        }
    }
}
