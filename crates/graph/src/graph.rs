//! Labeled undirected graphs.
//!
//! Vertices carry `u32` labels; edges carry `u32` labels and are stored
//! in both endpoints' sorted adjacency lists. The wildcard vertex label
//! ([`WILDCARD`]) matches any label during subgraph-isomorphism tests
//! (§6.4: deletion-neighborhood variants change vertex labels to `∗`).

/// Vertex label that matches any label in embedding tests.
pub const WILDCARD: u32 = u32::MAX;

/// A labeled undirected graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Graph {
    vlabels: Vec<u32>,
    /// Sorted adjacency: `adj[u]` holds `(v, edge_label)` ascending by `v`.
    adj: Vec<Vec<(u32, u32)>>,
    num_edges: usize,
}

impl Graph {
    /// A graph with the given vertex labels and no edges.
    pub fn new(vlabels: Vec<u32>) -> Self {
        let n = vlabels.len();
        Graph {
            vlabels,
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Adds an undirected edge `u — v` with `label`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range vertices, or duplicate edges.
    pub fn add_edge(&mut self, u: u32, v: u32, label: u32) {
        assert_ne!(u, v, "self-loops are not supported");
        assert!((u as usize) < self.vlabels.len() && (v as usize) < self.vlabels.len());
        assert!(self.edge_label(u, v).is_none(), "duplicate edge {u}-{v}");
        let (au, av) = (u as usize, v as usize);
        let pos_u = self.adj[au].partition_point(|&(w, _)| w < v);
        self.adj[au].insert(pos_u, (v, label));
        let pos_v = self.adj[av].partition_point(|&(w, _)| w < u);
        self.adj[av].insert(pos_v, (u, label));
        self.num_edges += 1;
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vlabels.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Label of vertex `v`.
    pub fn vlabel(&self, v: u32) -> u32 {
        self.vlabels[v as usize]
    }

    /// All vertex labels.
    pub fn vlabels(&self) -> &[u32] {
        &self.vlabels
    }

    /// The label of edge `u — v`, if present.
    pub fn edge_label(&self, u: u32, v: u32) -> Option<u32> {
        self.adj[u as usize]
            .binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| self.adj[u as usize][i].1)
    }

    /// Sorted `(neighbor, edge_label)` list of `v`.
    pub fn neighbors(&self, v: u32) -> &[(u32, u32)] {
        &self.adj[v as usize]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Iterator over edges as `(u, v, label)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, list)| {
            list.iter()
                .filter(move |&&(v, _)| (u as u32) < v)
                .map(move |&(v, l)| (u as u32, v, l))
        })
    }

    /// Count of incident edges of `v` per edge label.
    pub fn incident_label_count(&self, v: u32, elabel: u32) -> usize {
        self.adj[v as usize]
            .iter()
            .filter(|&&(_, l)| l == elabel)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new(vec![10, 20, 30]);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(0, 2, 1);
        g
    }

    #[test]
    fn construction_and_access() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.vlabel(1), 20);
        assert_eq!(g.edge_label(0, 1), Some(1));
        assert_eq!(g.edge_label(1, 0), Some(1));
        assert_eq!(g.edge_label(0, 2), Some(1));
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn edges_iterator_is_canonical() {
        let g = triangle();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1, 1), (0, 2, 1), (1, 2, 2)]);
    }

    #[test]
    fn incident_label_counts() {
        let g = triangle();
        assert_eq!(g.incident_label_count(0, 1), 2);
        assert_eq!(g.incident_label_count(0, 2), 0);
        assert_eq!(g.incident_label_count(1, 2), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edge_panics() {
        let mut g = triangle();
        g.add_edge(1, 0, 5);
    }

    #[test]
    fn adjacency_stays_sorted() {
        let mut g = Graph::new(vec![0; 5]);
        g.add_edge(0, 4, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 3, 1);
        let nbrs: Vec<u32> = g.neighbors(0).iter().map(|&(v, _)| v).collect();
        assert_eq!(nbrs, vec![1, 2, 3, 4]);
    }
}
