//! Deletion neighborhoods for Ring box lower bounds (§6.4).
//!
//! The box value `b_j(x, q) = min{ ged(x_j, q') | q' ⊑ q }` is expensive;
//! the paper's remark replaces the exact value with a necessary-condition
//! test: `ged(x_j, q') ≤ t` for some subgraph `q'` only if some variant
//! of `x_j` produced by at most `t` *deletion-neighborhood operations*
//! (delete an edge or stub, delete an isolated vertex, change a vertex
//! label to the wildcard `∗`) embeds in `q`. [`min_ops_to_match`]
//! breadth-first searches the neighborhood by increasing operation count
//! and returns the smallest level that embeds — a lower bound on `b_j`
//! (fewer ops than edits can only make embedding easier, so using it for
//! chain quotas preserves completeness).

use crate::graph::{Graph, WILDCARD};
use crate::partition::Part;
use crate::subiso::part_embeds;
use pigeonring_core::fxhash::{FxHashSet, FxHasher};
use std::hash::{Hash, Hasher};

fn canonical_hash(p: &Part) -> u64 {
    let mut edges = p.edges.clone();
    edges.sort_unstable();
    let mut half = p.half.clone();
    half.sort_unstable();
    let mut h = FxHasher::default();
    p.vlabels.hash(&mut h);
    edges.hash(&mut h);
    half.hash(&mut h);
    h.finish()
}

/// All single-operation variants of `p`.
fn variants(p: &Part) -> Vec<Part> {
    let mut out = Vec::new();
    // Delete a full edge.
    for i in 0..p.edges.len() {
        let mut v = p.clone();
        v.edges.remove(i);
        out.push(v);
    }
    // Delete a half-edge stub.
    for i in 0..p.half.len() {
        let mut v = p.clone();
        v.half.remove(i);
        out.push(v);
    }
    // Wildcard a vertex label.
    for i in 0..p.vlabels.len() {
        if p.vlabels[i] != WILDCARD {
            let mut v = p.clone();
            v.vlabels[i] = WILDCARD;
            out.push(v);
        }
    }
    // Delete an isolated vertex (no full edges nor stubs touch it).
    for i in 0..p.vlabels.len() {
        let iu = i as u32;
        let touched = p.edges.iter().any(|&(a, b, _)| a == iu || b == iu)
            || p.half.iter().any(|&(v, _)| v == iu);
        if touched {
            continue;
        }
        let mut v = Part {
            vlabels: p.vlabels.clone(),
            edges: p.edges.clone(),
            half: p.half.clone(),
        };
        v.vlabels.remove(i);
        // Renumber vertices above i.
        for e in &mut v.edges {
            if e.0 > iu {
                e.0 -= 1;
            }
            if e.1 > iu {
                e.1 -= 1;
            }
        }
        for hlf in &mut v.half {
            if hlf.0 > iu {
                hlf.0 -= 1;
            }
        }
        out.push(v);
    }
    out
}

/// The smallest number of deletion-neighborhood operations (`≤ budget`)
/// that makes `part` embed in `q`, or `None` if no variant within budget
/// embeds. `Some(0)` means the part embeds as-is.
pub fn min_ops_to_match(part: &Part, q: &Graph, budget: u32) -> Option<u32> {
    if part_embeds(part, q) {
        return Some(0);
    }
    let mut frontier = vec![part.clone()];
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.insert(canonical_hash(part));
    for level in 1..=budget {
        let mut next = Vec::new();
        for p in &frontier {
            for v in variants(p) {
                if seen.insert(canonical_hash(&v)) {
                    if part_embeds(&v, q) {
                        return Some(level);
                    }
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            return None;
        }
        frontier = next;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_part_needs_zero_ops() {
        let part = Part {
            vlabels: vec![1, 2],
            edges: vec![(0, 1, 5)],
            half: vec![],
        };
        let mut q = Graph::new(vec![2, 1]);
        q.add_edge(0, 1, 5);
        assert_eq!(min_ops_to_match(&part, &q, 2), Some(0));
    }

    #[test]
    fn one_wildcard_fixes_label_mismatch() {
        let part = Part {
            vlabels: vec![1, 9],
            edges: vec![(0, 1, 5)],
            half: vec![],
        };
        let mut q = Graph::new(vec![1, 2]);
        q.add_edge(0, 1, 5);
        assert_eq!(min_ops_to_match(&part, &q, 2), Some(1));
        assert_eq!(min_ops_to_match(&part, &q, 0), None);
    }

    #[test]
    fn edge_deletion_fixes_missing_edge() {
        let part = Part {
            vlabels: vec![1, 2],
            edges: vec![(0, 1, 5)],
            half: vec![],
        };
        let q = Graph::new(vec![1, 2]); // no edge
        assert_eq!(min_ops_to_match(&part, &q, 2), Some(1));
    }

    #[test]
    fn stub_deletion_counts() {
        let part = Part {
            vlabels: vec![1],
            edges: vec![],
            half: vec![(0, 5)],
        };
        let q = Graph::new(vec![1]); // vertex exists but no incident edge
        assert_eq!(min_ops_to_match(&part, &q, 1), Some(1));
    }

    #[test]
    fn isolated_vertex_deletion_after_edge_removal() {
        // Part has an extra vertex q lacks entirely; need: delete its
        // edge, then the isolated vertex — 2 ops (injectivity forces it).
        let part = Part {
            vlabels: vec![1, 9],
            edges: vec![(0, 1, 5)],
            half: vec![],
        };
        let q = Graph::new(vec![1]);
        assert_eq!(min_ops_to_match(&part, &q, 3), Some(2));
        assert_eq!(min_ops_to_match(&part, &q, 1), None);
    }

    #[test]
    fn example_12_style_budget_one_fails() {
        // A part two labels away from anything in q: one op (the budget
        // ⌊l·τ/m − b₀⌋ = 1 of Example 12) is not enough, so b₁ ≥ 2 and
        // the chain fails.
        let part = Part {
            vlabels: vec![8, 9],
            edges: vec![(0, 1, 7)],
            half: vec![],
        };
        let mut q = Graph::new(vec![1, 2, 3]);
        q.add_edge(0, 1, 5);
        q.add_edge(1, 2, 5);
        assert_eq!(min_ops_to_match(&part, &q, 1), None);
        // With budget 2+ a match eventually exists (wildcard both labels
        // won't fix the edge label; delete edge + ... needs more ops).
        let full = min_ops_to_match(&part, &q, 4);
        assert!(full.is_some_and(|t| t >= 2));
    }
}
