//! Property tests for the graph substrate and engines: GED metric
//! properties with operation-count witnesses, partition coverage,
//! deletion-neighborhood admissibility, and engine exactness.

use pigeonring_graph::pars::LinearScanGraphs;
use pigeonring_graph::{ged_within, part_embeds, partition_graph, Graph, Pars, RingGraph};
use proptest::prelude::*;

/// A compact graph description: labels plus an edge bitmask over vertex
/// pairs, expanded deterministically.
#[derive(Clone, Debug)]
struct GraphSpec {
    labels: Vec<u32>,
    edge_bits: u64,
    edge_labels: u64,
}

fn graph_strategy(max_n: usize) -> impl Strategy<Value = GraphSpec> {
    (
        prop::collection::vec(0u32..4, 2..=max_n),
        prop::num::u64::ANY,
        prop::num::u64::ANY,
    )
        .prop_map(|(labels, edge_bits, edge_labels)| GraphSpec {
            labels,
            edge_bits,
            edge_labels,
        })
}

fn build(spec: &GraphSpec) -> Graph {
    let n = spec.labels.len();
    let mut g = Graph::new(spec.labels.clone());
    let mut bit = 0;
    for u in 0..n as u32 {
        for v in u + 1..n as u32 {
            if (spec.edge_bits >> (bit % 64)) & 1 == 1 {
                g.add_edge(u, v, ((spec.edge_labels >> (bit % 64)) & 1) as u32);
            }
            bit += 1;
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ged_is_symmetric_and_reflexive(a in graph_strategy(5), b in graph_strategy(5)) {
        let (ga, gb) = (build(&a), build(&b));
        prop_assert_eq!(ged_within(&ga, &ga, 0), Some(0));
        for tau in [2u32, 4, 8] {
            prop_assert_eq!(
                ged_within(&ga, &gb, tau).is_some(),
                ged_within(&gb, &ga, tau).is_some(),
                "tau={}", tau
            );
        }
    }

    #[test]
    fn single_relabel_costs_at_most_one(spec in graph_strategy(6), vsel in 0usize..6) {
        let g = build(&spec);
        let v = vsel % g.num_vertices();
        let mut labels = g.vlabels().to_vec();
        labels[v] = (labels[v] + 1) % 5;
        let mut h = Graph::new(labels);
        for (u, w, l) in g.edges() {
            h.add_edge(u, w, l);
        }
        let d = ged_within(&g, &h, 1);
        prop_assert!(d.is_some() && d.unwrap() <= 1);
    }

    #[test]
    fn partition_is_a_partition(spec in graph_strategy(8), m in 1usize..=5) {
        let g = build(&spec);
        let parts = partition_graph(&g, m);
        prop_assert_eq!(parts.len(), m);
        let vtotal: usize = parts.iter().map(|p| p.vlabels.len()).sum();
        prop_assert_eq!(vtotal, g.num_vertices());
        let etotal: usize = parts.iter().map(|p| p.edges.len() + p.half.len()).sum();
        prop_assert_eq!(etotal, g.num_edges());
    }

    #[test]
    fn own_parts_always_embed(spec in graph_strategy(8), m in 1usize..=4) {
        let g = build(&spec);
        for part in partition_graph(&g, m) {
            prop_assert!(part_embeds(&part, &g), "part={:?}", part);
        }
    }

    #[test]
    fn engines_match_linear_scan(
        specs in prop::collection::vec(graph_strategy(6), 3..14),
        tau in 1usize..=3,
        qsel in 0usize..14,
    ) {
        let graphs: Vec<Graph> = specs.iter().map(build).collect();
        let q = graphs[qsel % graphs.len()].clone();
        let expect = LinearScanGraphs::new(&graphs).search(&q, tau as u32);
        let pars = Pars::build(graphs.clone(), tau);
        prop_assert_eq!(pars.search(&q).0, expect.clone());
        let ring = RingGraph::build(graphs.clone(), tau);
        for l in 1..=(tau + 1) {
            prop_assert_eq!(ring.search(&q, l).0, expect.clone(), "l={}", l);
        }
    }
}
