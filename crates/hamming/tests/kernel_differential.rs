//! Differential gate for the vectorized Hamming kernels (the CI
//! `kernel-differential` job): the scalar reference, the unrolled
//! batched kernel, the production dispatch entry point, and — when
//! compiled with `--features simd` on an AVX2 host — the explicit AVX2
//! kernel must agree bit-for-bit on random inputs. Dimensions are drawn
//! to straddle the 64-bit word and 8-word batch boundaries (not
//! multiples of 64 or 256 bits included), and τ is exercised right at
//! the early-abandon boundary (`d − 1`, `d`, `d + 1`), where a kernel
//! that abandons at the wrong granularity would diverge.

use pigeonring_hamming::kernels;
use pigeonring_hamming::BitVector;
use proptest::prelude::*;

/// Dimension counts straddling the word (64-bit) and batch (512-bit)
/// boundaries, deliberately including non-multiples of 64 and 256. The
/// vendored proptest has no `prop_flat_map`, so tests draw `MAX_DIMS`
/// bits and truncate to the selected count.
const DIMS: [usize; 15] = [
    1, 7, 63, 64, 65, 127, 128, 200, 255, 256, 257, 511, 512, 513, 700,
];
const MAX_DIMS: usize = 700;

fn dims_strategy() -> impl Strategy<Value = usize> {
    prop::sample::select(DIMS.to_vec())
}

fn bits_strategy() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(prop::bool::ANY, MAX_DIMS)
}

fn truncate(bits: &[bool], dims: usize) -> BitVector {
    BitVector::from_bits(bits[..dims].iter().copied())
}

/// Every compiled tier's `distance_within` on one input.
fn distance_tiers(a: &[u64], b: &[u64], tau: u32) -> Vec<(&'static str, Option<u32>)> {
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(unused_mut))]
    let mut tiers = vec![
        ("scalar", kernels::distance_within_scalar(a, b, tau)),
        ("batched", kernels::distance_within_batched(a, b, tau)),
        ("dispatch", kernels::distance_within(a, b, tau)),
    ];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if kernels::avx2::available() {
        tiers.push(("avx2", kernels::avx2::distance_within(a, b, tau)));
    }
    tiers
}

/// Every compiled tier's `part_distance` on one input.
fn part_tiers(a: &[u64], b: &[u64], lo: usize, hi: usize) -> Vec<(&'static str, u32)> {
    #[cfg_attr(not(all(feature = "simd", target_arch = "x86_64")), allow(unused_mut))]
    let mut tiers = vec![
        ("scalar", kernels::part_distance_scalar(a, b, lo, hi)),
        ("batched", kernels::part_distance_batched(a, b, lo, hi)),
        ("dispatch", kernels::part_distance(a, b, lo, hi)),
    ];
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if kernels::avx2::available() {
        tiers.push(("avx2", kernels::avx2::part_distance(a, b, lo, hi)));
    }
    tiers
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn distance_within_tiers_agree_on_random_vectors(
        dims in dims_strategy(),
        bits_a in bits_strategy(),
        bits_b in bits_strategy(),
        extra_tau in 0u32..700,
    ) {
        let (a, b) = (truncate(&bits_a, dims), truncate(&bits_b, dims));
        let (aw, bw) = (a.words(), b.words());
        let d = a.distance(&b);
        // τ at and around the early-abandon boundary plus a random one:
        // the exact place where batch-granularity abandon could diverge.
        for tau in [d.saturating_sub(1), d, d + 1, extra_tau] {
            let tiers = distance_tiers(aw, bw, tau);
            let expected = if d <= tau { Some(d) } else { None };
            for (name, got) in &tiers {
                prop_assert_eq!(
                    *got, expected,
                    "tier {} diverged at dims={} tau={} d={}", name, a.dims(), tau, d
                );
            }
        }
    }

    #[test]
    fn part_distance_tiers_agree_on_random_ranges(
        dims in dims_strategy(),
        bits_a in bits_strategy(),
        bits_b in bits_strategy(),
        lo_seed in 0usize..=1000,
        hi_seed in 0usize..=1000,
    ) {
        let (a, b) = (truncate(&bits_a, dims), truncate(&bits_b, dims));
        let (aw, bw) = (a.words(), b.words());
        let lo = lo_seed % (dims + 1);
        let hi = lo + hi_seed % (dims + 1 - lo);
        // Naive per-bit reference for the range.
        let naive: u32 = (lo..hi).map(|i| (a.get(i) != b.get(i)) as u32).sum();
        for (name, got) in part_tiers(aw, bw, lo, hi) {
            prop_assert_eq!(
                got, naive,
                "tier {} diverged at dims={} range=[{}, {})", name, dims, lo, hi
            );
        }
    }
}

#[test]
fn part_distance_tiers_agree_on_pinned_boundaries() {
    // Deterministic sweep of the mask edge cases: lo/hi in one word,
    // word-aligned lo/hi, hi == dims on a ragged tail, zero width.
    let dims = 519; // 8 words + 7 live tail bits: not a multiple of 64 or 256
    let mut s = 0xD1FFu64;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let a = BitVector::from_bits((0..dims).map(|_| next() % 2 == 0));
    let b = BitVector::from_bits((0..dims).map(|_| next() % 3 == 0));
    let (aw, bw) = (a.words(), b.words());
    let ranges = [
        (0, 0),
        (0, dims),
        (1, 31),
        (1, 32),
        (30, 31),
        (63, 64),
        (63, 65),
        (64, 65),
        (64, 512),
        (67, 517),
        (512, dims),
        (518, dims),
        (dims, dims),
    ];
    for (lo, hi) in ranges {
        let naive: u32 = (lo..hi).map(|i| (a.get(i) != b.get(i)) as u32).sum();
        for (name, got) in part_tiers(aw, bw, lo, hi) {
            assert_eq!(got, naive, "tier {name} diverged at [{lo}, {hi})");
        }
    }
}
