//! Property tests for the Hamming substrate and engines: bit-vector
//! kernels against naive reference implementations, and engine exactness
//! on random vectors (beyond the seeded-generator integration tests).

use pigeonring_hamming::index::{enumerate_within, enumeration_count};
use pigeonring_hamming::{AllocationStrategy, BitVector, LinearScan, Partitioning, RingHamming};
use proptest::prelude::*;

fn bitvec_strategy(d: usize) -> impl Strategy<Value = BitVector> {
    prop::collection::vec(prop::bool::ANY, d).prop_map(BitVector::from_bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_matches_naive(a in bitvec_strategy(96), b in bitvec_strategy(96)) {
        let naive: u32 = (0..96).map(|i| (a.get(i) != b.get(i)) as u32).sum();
        prop_assert_eq!(a.distance(&b), naive);
        prop_assert_eq!(a.distance_within(&b, naive), Some(naive));
        if naive > 0 {
            prop_assert_eq!(a.distance_within(&b, naive - 1), None);
        }
    }

    #[test]
    fn part_distances_sum_to_total(
        a in bitvec_strategy(100),
        b in bitvec_strategy(100),
        m in 1usize..=12,
    ) {
        let p = Partitioning::equi_width(100, m);
        let total: u32 = p.iter().map(|(lo, hi)| a.part_distance(&b, lo, hi)).sum();
        prop_assert_eq!(total, a.distance(&b));
    }

    #[test]
    fn signatures_roundtrip_bits(v in bitvec_strategy(130), lo in 0usize..100, w in 1usize..=30) {
        let hi = (lo + w).min(130);
        prop_assume!(lo < hi);
        let sig = v.part_signature(lo, hi);
        for (k, d) in (lo..hi).enumerate() {
            prop_assert_eq!((sig >> k) & 1 == 1, v.get(d));
        }
    }

    #[test]
    fn enumeration_is_exact_sphere(sig in 0u64..65536, radius in 0usize..=3) {
        let mut seen = std::collections::HashSet::new();
        enumerate_within(sig, 16, radius, &mut |s, d| {
            assert_eq!((s ^ sig).count_ones(), d);
            assert!(seen.insert(s));
        });
        prop_assert_eq!(seen.len() as u64, enumeration_count(16, radius));
        // Everything at distance ≤ radius is present.
        for flip in 0..16u64 {
            if radius >= 1 {
                prop_assert!(seen.contains(&(sig ^ (1 << flip))));
            }
        }
    }

    #[test]
    fn engine_exact_on_random_vectors(
        seeds in prop::collection::vec(0u64..1u64 << 48, 24..64),
        qsel in 0usize..24,
        tau in 0u32..40,
        l in 1usize..=6,
    ) {
        // Expand compact seeds into 64-d vectors deterministically.
        let data: Vec<BitVector> = seeds
            .iter()
            .map(|&s| BitVector::from_bits((0..64).map(move |b| (s >> (b % 48)) & 1 == 1)))
            .collect();
        let q = data[qsel % data.len()].clone();
        let expect = LinearScan::new(&data).search(&q, tau);
        let mut eng = RingHamming::build(data.clone(), 4, AllocationStrategy::Even);
        prop_assert_eq!(eng.search(&q, tau, l).0, expect);
    }
}
