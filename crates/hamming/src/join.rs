//! Hamming self-join: all pairs `(i, j)`, `i < j`, with `H(x_i, x_j) ≤ τ`.
//!
//! The similarity-join variant of Problem 2 (the τ-selection problems of
//! §2.2 all have batch/join duals; §9 surveys the join literature). The
//! join reuses the search engine query-by-query — the standard
//! search-based join — and keeps only partners with a larger id, so each
//! pair is reported exactly once.

use crate::bitvec::BitVector;
use crate::engine::RingHamming;

/// Aggregate statistics for a join run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Total candidate pairs verified.
    pub candidates: usize,
    /// Result pairs.
    pub pairs: usize,
}

impl JoinStats {
    /// Folds `other` into `self`, saturating on overflow (partitioned
    /// join aggregation).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.pairs = self.pairs.saturating_add(other.pairs);
    }
}

/// All pairs within Hamming distance `tau`, via the pigeonring engine at
/// chain length `l` (`l = 1` is the GPH-style join). Pairs are returned
/// with `i < j`, lexicographically sorted.
pub fn self_join(engine: &mut RingHamming, tau: u32, l: usize) -> (Vec<(u32, u32)>, JoinStats) {
    let n = engine.data().len();
    let mut out = Vec::new();
    let mut stats = JoinStats::default();
    for i in 0..n {
        let q = engine.data()[i].clone();
        let (ids, s) = engine.search(&q, tau, l);
        stats.candidates += s.candidates;
        for id in ids {
            if (id as usize) > i {
                out.push((i as u32, id));
            }
        }
    }
    stats.pairs = out.len();
    (out, stats)
}

/// Quadratic reference join for tests.
pub fn nested_loop_join(data: &[BitVector], tau: u32) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for i in 0..data.len() {
        for j in i + 1..data.len() {
            if data[i].distance_within(&data[j], tau).is_some() {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::AllocationStrategy;

    fn dataset() -> Vec<BitVector> {
        (0..48u64)
            .map(|i| {
                let seed = i.wrapping_mul(0x9E3779B97F4A7C15) | 1;
                BitVector::from_bits((0..64).map(move |b| (seed >> (b % 37)) & 1 == 1))
            })
            .collect()
    }

    #[test]
    fn join_matches_nested_loop() {
        let data = dataset();
        let expect = nested_loop_join(&data, 12);
        let mut eng = RingHamming::build(data, 4, AllocationStrategy::Even);
        for l in [1usize, 2, 4] {
            let (got, stats) = self_join(&mut eng, 12, l);
            assert_eq!(got, expect, "l={l}");
            assert_eq!(stats.pairs, expect.len());
        }
    }

    #[test]
    fn ring_join_verifies_fewer_candidates() {
        let data = dataset();
        let mut eng = RingHamming::build(data, 4, AllocationStrategy::Even);
        let (_, s1) = self_join(&mut eng, 12, 1);
        let (_, s4) = self_join(&mut eng, 12, 4);
        assert!(s4.candidates <= s1.candidates);
    }

    #[test]
    fn empty_result_join() {
        let data = dataset();
        let mut eng = RingHamming::build(data, 4, AllocationStrategy::Even);
        let (pairs, _) = self_join(&mut eng, 0, 2);
        // No exact duplicates in this dataset.
        assert!(pairs.is_empty());
    }
}
