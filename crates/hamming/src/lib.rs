//! # pigeonring-hamming
//!
//! Hamming distance search (Problem 2 of the paper): given a collection of
//! `d`-dimensional binary vectors and a query `q`, find all `x` with
//! `H(x, q) ≤ τ`.
//!
//! Two engines share one index:
//!
//! * [`Gph`] — the GPH baseline \[72\]: dimensions are split into `m`
//!   disjoint equi-width parts; a per-part signature index finds every
//!   vector whose part lies within that part's threshold `t_i` of the
//!   query's part (variable threshold allocation + integer reduction,
//!   `‖T‖₁ = τ − m + 1`), and survivors are verified.
//! * [`RingHamming`] — the same first step, then the §6.1 pigeonring
//!   second step: starting from each viable box, extend the chain
//!   clockwise with popcount part distances and keep the object only if
//!   some chain of length `l` is prefix-viable under Theorem 7 quotas.
//!
//! The filtering instance is `⟨partition, part Hamming distances, D(τ)=τ⟩`;
//! since the parts are disjoint, `‖B(x,q)‖₁ = H(x,q)` exactly, so the
//! instance is complete *and tight* (Lemma 7), and at `l = m` candidates
//! equal results.

pub mod alloc;
pub mod bitvec;
pub mod engine;
pub mod index;
pub mod join;
pub mod kernels;
pub mod partition;
pub mod service;

pub use alloc::AllocationStrategy;
pub use bitvec::BitVector;
pub use engine::{Gph, HammingScratch, LinearScan, RingHamming, SearchStats};
pub use join::self_join;
pub use partition::Partitioning;
pub use service::HammingParams;

#[cfg(test)]
mod paper_examples;
