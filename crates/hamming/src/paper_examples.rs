//! Number-for-number reproduction of the paper's worked Hamming examples
//! (Table 2, Examples 2, 3, 5, and 9).

use crate::alloc::AllocationStrategy;
use crate::bitvec::BitVector;
use crate::engine::RingHamming;
use crate::partition::Partitioning;
use pigeonring_core::viability::{
    check_prefix_viable, find_prefix_viable, Direction, ThresholdScheme,
};

fn table2() -> (Vec<BitVector>, BitVector) {
    let data = vec![
        BitVector::from_bit_str("11 11 10 11 10"), // x¹
        BitVector::from_bit_str("00 01 01 11 10"), // x²
        BitVector::from_bit_str("01 01 10 01 10"), // x³
        BitVector::from_bit_str("11 01 10 11 00"), // x⁴
    ];
    let q = BitVector::from_bit_str("00 10 01 00 11");
    (data, q)
}

fn boxes(x: &BitVector, q: &BitVector, p: &Partitioning) -> Vec<i64> {
    p.iter()
        .map(|(lo, hi)| x.part_distance(q, lo, hi) as i64)
        .collect()
}

#[test]
fn example_2_pigeonhole_candidates() {
    // Example 2: τ = 5, m = 5. x¹, x², x³ are candidates under the plain
    // pigeonhole condition H(xⁱ, qⁱ) ≤ 1; distances are 8, 5, 7, and only
    // x² is a result.
    let (data, q) = table2();
    let p = Partitioning::equi_width(10, 5);
    let scheme = ThresholdScheme::uniform(5i64, 5);
    let candidates: Vec<usize> = data
        .iter()
        .enumerate()
        .filter(|(_, x)| find_prefix_viable(&boxes(x, &q, &p), &scheme, Direction::Le, 1).is_some())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(candidates, vec![0, 1, 2]);
    assert_eq!(data[0].distance(&q), 8);
    assert_eq!(data[1].distance(&q), 5);
    assert_eq!(data[2].distance(&q), 7);
    let results: Vec<usize> = data
        .iter()
        .enumerate()
        .filter(|(_, x)| x.distance(&q) <= 5)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(results, vec![1]);
}

#[test]
fn example_3_two_box_chains_filter_x1() {
    // Example 3: for x¹ the length-2 chain sums are 3, 3, 4, 3, 3; all
    // exceed the quota 2·τ/m = 2, so x¹ is filtered by the basic form.
    let (data, q) = table2();
    let p = Partitioning::equi_width(10, 5);
    let b = boxes(&data[0], &q, &p);
    assert_eq!(b, vec![2, 1, 2, 2, 1]);
    let sums = pigeonring_core::ring::window_sums(&b, 2);
    assert_eq!(sums, vec![3, 3, 4, 3, 3]);
    let scheme = ThresholdScheme::uniform(5i64, 5);
    assert!(
        pigeonring_core::viability::find_viable_window(&b, &scheme, Direction::Le, 2).is_none()
    );
}

#[test]
fn example_5_box_layouts_and_l2_candidates() {
    let (data, q) = table2();
    let p = Partitioning::equi_width(10, 5);
    let expect = [
        vec![2i64, 1, 2, 2, 1],
        vec![0, 2, 0, 2, 1],
        vec![1, 2, 2, 1, 1],
        vec![2, 2, 2, 2, 2],
    ];
    for (x, e) in data.iter().zip(&expect) {
        assert_eq!(&boxes(x, &q, &p), e);
        // Disjoint parts: ‖B(x,q)‖₁ = f(x,q).
        assert_eq!(e.iter().sum::<i64>(), x.distance(&q) as i64);
    }
    // At l = 2 only x² and x³ stay candidates.
    let scheme = ThresholdScheme::uniform(5i64, 5);
    let cands: Vec<usize> = data
        .iter()
        .enumerate()
        .filter(|(_, x)| find_prefix_viable(&boxes(x, &q, &p), &scheme, Direction::Le, 2).is_some())
        .map(|(i, _)| i)
        .collect();
    assert_eq!(cands, vec![1, 2]);
}

#[test]
fn example_9_integer_reduction_chain_filter() {
    // Example 9: τ = 3, m = 3, d = 12, T = (0, 1, 0).
    // GPH admits x via b0 = 0 ≤ t0, but the l = 2 chain b0 + b1 = 3 exceeds
    // t0 + t1 + l − 1 = 2, so Ring filters it; f(x, q) = 4.
    let x = BitVector::from_bit_str("0000 0011 1111");
    let q = BitVector::from_bit_str("0000 1110 0111");
    let p = Partitioning::equi_width(12, 3);
    let b = boxes(&x, &q, &p);
    assert_eq!(b, vec![0, 3, 1]);
    assert_eq!(x.distance(&q), 4);
    let scheme = ThresholdScheme::integer_reduced(vec![0i64, 1, 0]);
    scheme.assert_sums_to(3, Direction::Le);
    // Pigeonhole (box level): b0 viable.
    assert!(scheme.chain_viable(b[0], 0, 1, Direction::Le));
    // Ring, l = 2: chain from 0 fails at length 2; no other viable start.
    assert_eq!(
        check_prefix_viable(&b, &scheme, Direction::Le, 0, 2),
        Err(2)
    );
    assert!(find_prefix_viable(&b, &scheme, Direction::Le, 2).is_none());
}

#[test]
fn end_to_end_on_table2() {
    // Index the four Table 2 vectors and run both engines; the result set
    // must be {x²} at τ = 5 for every chain length.
    let (data, q) = table2();
    let mut ring = RingHamming::build(data, 5, AllocationStrategy::Even);
    for l in 1..=5 {
        let (res, stats) = ring.search(&q, 5, l);
        assert_eq!(res, vec![1], "l={l}");
        assert_eq!(stats.results, 1);
    }
}
