//! Per-part signature index with radius enumeration.
//!
//! For each part, the index maps the part's bit signature to the posting
//! list of vector ids holding that signature. The first step of candidate
//! generation (§7) probes part `i` by enumerating every signature within
//! Hamming distance `t_i` of the query's signature and concatenating the
//! matching posting lists — the same multi-index scheme GPH \[72\] and
//! MIH \[64\] use. Enumeration cost is `Σ_{k≤t} C(w, k)` per part, which
//! the threshold allocator (see [`crate::alloc`]) keeps small.

use crate::bitvec::BitVector;
use crate::partition::Partitioning;
use pigeonring_core::fxhash::FxHashMap;

/// Inverted index from part signatures to vector ids, one map per part.
pub struct PartIndex {
    partitioning: Partitioning,
    maps: Vec<FxHashMap<u64, Vec<u32>>>,
    len: usize,
}

impl PartIndex {
    /// Indexes every vector of `data` under every part signature.
    ///
    /// # Panics
    /// Panics if any vector's dimensionality disagrees with the
    /// partitioning, or if there are more than `u32::MAX` vectors.
    pub fn build(data: &[BitVector], partitioning: Partitioning) -> Self {
        assert!(data.len() <= u32::MAX as usize, "id space is u32");
        let m = partitioning.num_parts();
        for i in 0..m {
            assert!(
                partitioning.width(i) <= 64,
                "indexed part widths must fit a u64 signature"
            );
        }
        let mut maps: Vec<FxHashMap<u64, Vec<u32>>> =
            (0..m).map(|_| FxHashMap::default()).collect();
        for (id, v) in data.iter().enumerate() {
            assert_eq!(
                v.dims(),
                partitioning.dims(),
                "vector {id} has wrong dimensionality"
            );
            for (i, (lo, hi)) in partitioning.iter().enumerate() {
                maps[i]
                    .entry(v.part_signature(lo, hi))
                    .or_default()
                    .push(id as u32);
            }
        }
        PartIndex {
            partitioning,
            maps,
            len: data.len(),
        }
    }

    /// The partitioning the index was built with.
    pub fn partitioning(&self) -> &Partitioning {
        &self.partitioning
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Probes every part `i` with radius `t[i]` around the query's
    /// signature, invoking `visit(part, distance, id)` for each matching
    /// vector (distance is the part's exact Hamming distance, known from
    /// the enumeration depth). Parts with `t[i] < 0` are skipped — an
    /// integer-reduced allocation may disable a part entirely. Returns the
    /// number of signatures enumerated (the probe cost `CC1`).
    pub fn probe(&self, q: &BitVector, t: &[i64], mut visit: impl FnMut(usize, u32, u32)) -> usize {
        assert_eq!(t.len(), self.maps.len(), "one threshold per part");
        let mut probes = 0;
        for (i, (lo, hi)) in self.partitioning.iter().enumerate() {
            if t[i] < 0 {
                continue;
            }
            let width = hi - lo;
            let radius = (t[i] as usize).min(width);
            let qsig = q.part_signature(lo, hi);
            let map = &self.maps[i];
            enumerate_within(qsig, width, radius, &mut |sig, dist| {
                probes += 1;
                if let Some(ids) = map.get(&sig) {
                    for &id in ids {
                        visit(i, dist, id);
                    }
                }
            });
        }
        probes
    }
}

/// Enumerates every `width`-bit value within Hamming distance `radius` of
/// `sig`, passing `(value, distance)` to `visit`. Values are emitted
/// exactly once (flip positions are chosen in increasing order).
pub fn enumerate_within(sig: u64, width: usize, radius: usize, visit: &mut impl FnMut(u64, u32)) {
    fn go(
        cur: u64,
        start: usize,
        flipped: u32,
        remaining: usize,
        width: usize,
        visit: &mut impl FnMut(u64, u32),
    ) {
        visit(cur, flipped);
        if remaining == 0 {
            return;
        }
        for p in start..width {
            go(
                cur ^ (1u64 << p),
                p + 1,
                flipped + 1,
                remaining - 1,
                width,
                visit,
            );
        }
    }
    assert!(width <= 64, "signatures are at most 64 bits");
    go(sig, 0, 0, radius.min(width), width, visit);
}

/// Number of signatures [`enumerate_within`] emits: `Σ_{k≤radius} C(width, k)`.
pub fn enumeration_count(width: usize, radius: usize) -> u64 {
    let radius = radius.min(width);
    let mut total = 0u64;
    let mut c = 1u64; // C(width, 0)
    for k in 0..=radius {
        total = total.saturating_add(c);
        c = c.saturating_mul((width - k) as u64) / (k as u64 + 1);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_radius_zero() {
        let mut seen = Vec::new();
        enumerate_within(0b1010, 4, 0, &mut |s, d| seen.push((s, d)));
        assert_eq!(seen, vec![(0b1010, 0)]);
    }

    #[test]
    fn enumerate_counts_and_distances() {
        for width in [4usize, 8, 12] {
            for radius in 0..=3 {
                let mut n = 0u64;
                let base = 0b0110u64;
                enumerate_within(base, width, radius, &mut |s, d| {
                    n += 1;
                    assert_eq!((s ^ base).count_ones(), d);
                    assert!(d as usize <= radius);
                    assert!(s < (1u64 << width));
                });
                assert_eq!(n, enumeration_count(width, radius), "w={width} r={radius}");
            }
        }
    }

    #[test]
    fn enumerate_emits_unique_values() {
        let mut seen = std::collections::HashSet::new();
        enumerate_within(0b111, 6, 3, &mut |s, _| {
            assert!(seen.insert(s), "duplicate signature {s:#b}");
        });
        assert_eq!(seen.len() as u64, enumeration_count(6, 3));
    }

    #[test]
    fn enumeration_count_values() {
        assert_eq!(enumeration_count(16, 0), 1);
        assert_eq!(enumeration_count(16, 1), 17);
        assert_eq!(enumeration_count(16, 2), 1 + 16 + 120);
        assert_eq!(enumeration_count(4, 9), 16); // radius clamps to width
    }

    #[test]
    fn probe_finds_vectors_within_radius() {
        let data: Vec<BitVector> = [
            "0000 0000", // id 0
            "0001 0000", // id 1: part0 distance 1 from q's part0
            "0011 0000", // id 2: part0 distance 2
            "0000 1111", // id 3: part1 distance 4
        ]
        .iter()
        .map(|s| BitVector::from_bit_str(s))
        .collect();
        let p = Partitioning::equi_width(8, 2);
        let idx = PartIndex::build(&data, p);
        let q = BitVector::from_bit_str("0000 0000");

        let mut hits: Vec<(usize, u32, u32)> = Vec::new();
        idx.probe(&q, &[1, 0], |part, dist, id| hits.push((part, dist, id)));
        hits.sort_unstable();
        // Part 0 radius 1: ids 0 (d=0), 1 (d=1), 3 (d=0 in part 0).
        // Part 1 radius 0: ids 0, 1, 2 (all zero in part 1).
        assert_eq!(
            hits,
            vec![
                (0, 0, 0),
                (0, 0, 3),
                (0, 1, 1),
                (1, 0, 0),
                (1, 0, 1),
                (1, 0, 2)
            ]
        );
    }

    #[test]
    fn probe_skips_disabled_parts() {
        let data = vec![BitVector::from_bit_str("0000")];
        let idx = PartIndex::build(&data, Partitioning::equi_width(4, 2));
        let q = BitVector::from_bit_str("0000");
        let mut hits = 0;
        let probes = idx.probe(&q, &[-1, -1], |_, _, _| hits += 1);
        assert_eq!((hits, probes), (0, 0));
    }
}
