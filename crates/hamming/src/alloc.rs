//! Variable threshold allocation for GPH (§6.1).
//!
//! Integer reduction (Theorem 7) requires `‖T‖₁ = τ − m + 1`. GPH \[72\]
//! chooses the per-part thresholds with a query-time cost model; we
//! implement the same idea as a greedy allocator over a sampled per-part
//! distance histogram: starting from `t_i = −1` everywhere (a part with
//! `t_i = −1` can never produce a viable box and is skipped by the index),
//! the `τ + 1` threshold units are handed out one at a time to the part
//! whose increment adds the least estimated cost
//! (`signature-enumeration probes + λ · estimated candidates`). Handing
//! out units greedily is optimal when the marginal costs are
//! non-decreasing, which holds for the enumeration term and approximately
//! for the candidate term on realistic distance histograms.
//!
//! [`AllocationStrategy::Even`] is the ablation baseline: spread the units
//! uniformly regardless of the query.

use crate::bitvec::BitVector;
use crate::index::enumeration_count;
use crate::partition::Partitioning;

/// How GPH distributes `τ − m + 1` over the `m` part thresholds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocationStrategy {
    /// Uniform split of the `τ + 1` units over parts (query-independent).
    Even,
    /// Greedy cost-model allocation from a sampled per-part histogram.
    CostModel,
}

/// Even allocation: `t_i = −1 + (τ+1)/m` spread with remainder on the
/// leading parts. Always sums to `τ − m + 1`.
pub fn even_allocation(tau: i64, m: usize) -> Vec<i64> {
    assert!(tau >= 0, "threshold must be non-negative");
    assert!(m > 0, "need at least one part");
    let units = tau + 1;
    let base = units / m as i64;
    let rem = (units % m as i64) as usize;
    (0..m).map(|i| -1 + base + i64::from(i < rem)).collect()
}

/// Query-time cost model: per-part signatures of a deterministic data
/// sample, used to estimate how many candidates a threshold admits.
pub struct CostModel {
    /// `sigs[i]` holds the part-`i` signatures of the sampled vectors.
    sigs: Vec<Vec<u64>>,
    /// Data-set size divided by sample size (candidate scale factor).
    scale: f64,
    widths: Vec<usize>,
    /// Relative cost of verifying one candidate vs. enumerating one
    /// signature; proportional to the number of vector words.
    verify_weight: f64,
}

impl CostModel {
    /// Builds the model from every `⌈N/sample⌉`-th vector (deterministic,
    /// so repeated runs allocate identically).
    pub fn build(data: &[BitVector], partitioning: &Partitioning, sample: usize) -> Self {
        assert!(!data.is_empty(), "cannot model an empty dataset");
        let stride = data.len().div_ceil(sample.max(1)).max(1);
        let m = partitioning.num_parts();
        let mut sigs: Vec<Vec<u64>> = vec![Vec::new(); m];
        let mut taken = 0usize;
        let mut i = 0;
        while i < data.len() {
            for (p, (lo, hi)) in partitioning.iter().enumerate() {
                sigs[p].push(data[i].part_signature(lo, hi));
            }
            taken += 1;
            i += stride;
        }
        CostModel {
            sigs,
            scale: data.len() as f64 / taken as f64,
            widths: (0..m).map(|p| partitioning.width(p)).collect(),
            verify_weight: (partitioning.dims() as f64 / 64.0).max(1.0),
        }
    }

    /// Allocates thresholds for query `q` at threshold `tau`
    /// (`Σ t_i = τ − m + 1`, each `t_i ≥ −1`).
    pub fn allocate(&self, q: &BitVector, partitioning: &Partitioning, tau: i64) -> Vec<i64> {
        assert!(tau >= 0, "threshold must be non-negative");
        let m = self.sigs.len();
        // Per-part histogram of sample distances to the query part.
        let mut hist: Vec<Vec<f64>> = Vec::with_capacity(m);
        for (p, (lo, hi)) in partitioning.iter().enumerate() {
            let qsig = q.part_signature(lo, hi);
            let mut h = vec![0.0f64; self.widths[p] + 1];
            for &s in &self.sigs[p] {
                h[(s ^ qsig).count_ones() as usize] += 1.0;
            }
            hist.push(h);
        }
        // Marginal cost of raising part p from t to t+1:
        //   Δprobes = C(w, t+1)   (new enumeration shell)
        //   Δcands  = hist[p][t+1] · scale
        let marginal = |p: usize, t: i64| -> f64 {
            let nt = (t + 1) as usize;
            let w = self.widths[p];
            if nt > w {
                return f64::INFINITY; // cannot widen past the part width
            }
            // New enumeration shell at radius nt: C(w, nt) signatures.
            let shell = if nt == 0 {
                1.0
            } else {
                (enumeration_count(w, nt) - enumeration_count(w, nt - 1)) as f64
            };
            let cands = hist[p].get(nt).copied().unwrap_or(0.0) * self.scale;
            shell + self.verify_weight * cands
        };
        let mut t = vec![-1i64; m];
        for _ in 0..=tau {
            let (best, _) = (0..m)
                .map(|p| (p, marginal(p, t[p])))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one part");
            t[best] += 1;
        }
        debug_assert_eq!(t.iter().sum::<i64>(), tau - m as i64 + 1);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_allocation_sums_correctly() {
        for tau in 0..40i64 {
            for m in 1..=10usize {
                let t = even_allocation(tau, m);
                assert_eq!(t.len(), m);
                assert_eq!(t.iter().sum::<i64>(), tau - m as i64 + 1, "tau={tau} m={m}");
                assert!(t.iter().all(|&ti| ti >= -1));
                let (mn, mx) = (t.iter().min().unwrap(), t.iter().max().unwrap());
                assert!(mx - mn <= 1, "even split must be balanced: {t:?}");
            }
        }
    }

    #[test]
    fn cost_model_sums_correctly() {
        let data: Vec<BitVector> = (0..64u64)
            .map(|i| BitVector::from_bits((0..32).map(move |b| (i >> (b % 6)) & 1 == 1)))
            .collect();
        let p = Partitioning::equi_width(32, 4);
        let cm = CostModel::build(&data, &p, 16);
        let q = data[3].clone();
        for tau in [0i64, 3, 8, 16] {
            let t = cm.allocate(&q, &p, tau);
            assert_eq!(t.iter().sum::<i64>(), tau - 4 + 1, "tau={tau}: {t:?}");
            assert!(t.iter().all(|&ti| (-1..=8).contains(&ti)));
        }
    }

    #[test]
    fn cost_model_is_deterministic_and_bounded() {
        let mut data = Vec::new();
        for i in 0..200u32 {
            let mut v = BitVector::zeros(32);
            for b in 0..32 {
                if (i.wrapping_mul(2654435761) >> (b % 16)) & 1 == 1 {
                    v.set(b, true);
                }
            }
            data.push(v);
        }
        let p = Partitioning::equi_width(32, 2);
        let cm = CostModel::build(&data, &p, 100);
        let q = BitVector::zeros(32);
        for tau in [0i64, 5, 12, 20] {
            let t1 = cm.allocate(&q, &p, tau);
            let t2 = cm.allocate(&q, &p, tau);
            assert_eq!(t1, t2, "allocation must be deterministic");
            assert_eq!(t1.iter().sum::<i64>(), tau - 2 + 1);
            // Thresholds never exceed the part width (16 here): widening
            // past it has infinite marginal cost.
            assert!(t1.iter().all(|&ti| ti <= 16), "{t1:?}");
        }
    }

    #[test]
    fn cost_model_spends_first_units_on_selective_parts() {
        // Part 0 is dense at distance 0 (first unit admits many
        // candidates at once); part 1 is spread out. With τ = 1, m = 2
        // there are two units to hand out (Σt = 0); the greedy allocator
        // must put both on the selective part and disable the dense one.
        let mut data = Vec::new();
        for i in 0..200u32 {
            let mut v = BitVector::zeros(32);
            for b in 16..32 {
                if (i.wrapping_mul(2654435761) >> (b - 16)) & 1 == 1 {
                    v.set(b, true);
                }
            }
            data.push(v);
        }
        let p = Partitioning::equi_width(32, 2);
        let cm = CostModel::build(&data, &p, 100);
        let q = BitVector::zeros(32);
        let t = cm.allocate(&q, &p, 1);
        assert_eq!(t, vec![-1, 1], "dense part should be disabled: {t:?}");
    }
}
