//! [`SearchEngine`] adapter: plugs [`RingHamming`] into the
//! `pigeonring-service` sharded query layer.

use crate::bitvec::BitVector;
use crate::engine::{HammingScratch, RingHamming, SearchStats};
use pigeonring_service::{MergeStats, SearchEngine};

/// Per-batch parameters for Hamming search through the service layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HammingParams {
    /// Distance threshold `τ`.
    pub tau: u32,
    /// Chain length `l` (clamped to `[1..m]` by the engine).
    pub l: usize,
}

impl MergeStats for SearchStats {
    fn merge(&mut self, other: &Self) {
        SearchStats::merge(self, other);
    }

    fn visit(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("candidates", self.candidates as u64);
        emit("results", self.results as u64);
        emit("probes", self.probes as u64);
        emit("viable_boxes", self.viable_boxes as u64);
        emit("boxes_checked", self.boxes_checked as u64);
        emit("skipped_by_corollary2", self.skipped_by_corollary2 as u64);
    }
}

impl SearchEngine for RingHamming {
    type Query = BitVector;
    type Params = HammingParams;
    type Stats = SearchStats;
    type Scratch = HammingScratch;
    /// Hamming queries need no dictionary-dependent preprocessing (the
    /// partition signature enumeration depends on `τ`/`l`, which are
    /// per-batch parameters), so the plan is empty.
    type Plan = ();

    fn num_records(&self) -> usize {
        self.data().len()
    }

    fn plan(&self, _scratch: &mut HammingScratch, _query: &BitVector) {}

    fn search_planned(
        &self,
        scratch: &mut HammingScratch,
        _plan: &(),
        query: &BitVector,
        params: &HammingParams,
        out: &mut Vec<u32>,
    ) -> SearchStats {
        let (ids, stats) = self.search_with(scratch, query, params.tau, params.l);
        out.extend(ids);
        stats
    }
}
