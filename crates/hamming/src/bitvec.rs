//! Packed binary vectors with popcount-based Hamming distance.
//!
//! Dimensions are stored little-endian within `u64` words: dimension `i`
//! is bit `i % 64` of word `i / 64`. All distance kernels are branch-free
//! XOR+popcount loops, matching the paper's implementation remark for
//! §6.1 ("count the number of bits set to 1 in `xᵢ` bitwise XOR `qᵢ` …
//! by a built-in popcount").

/// A fixed-dimension binary vector packed into `u64` words.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct BitVector {
    dims: usize,
    words: Vec<u64>,
}

impl BitVector {
    /// A zero vector with `dims` dimensions.
    ///
    /// # Panics
    /// Panics if `dims == 0`.
    pub fn zeros(dims: usize) -> Self {
        assert!(dims > 0, "vector must have at least one dimension");
        BitVector {
            dims,
            words: vec![0; dims.div_ceil(64)],
        }
    }

    /// Parses a vector from a string of `'0'`/`'1'` characters
    /// (dimension 0 first); whitespace is ignored, so the paper's
    /// part-separated notation (`"11 11 10 11 10"`) parses directly.
    ///
    /// # Panics
    /// Panics on any other character or an empty string.
    pub fn from_bit_str(s: &str) -> Self {
        let bits: Vec<bool> = s
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| match c {
                '0' => false,
                '1' => true,
                other => panic!("invalid bit character {other:?}"),
            })
            .collect();
        let mut v = BitVector::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// Reconstructs a vector from its packed-word representation (the
    /// inverse of [`BitVector::words`]; used by the `pigeonring-server`
    /// wire decoder).
    ///
    /// Returns `None` — rather than panicking — when the encoding is
    /// invalid: `dims == 0`, a word count that does not match `dims`, or
    /// stray set bits past dimension `dims - 1` (those would silently
    /// corrupt distance computations).
    pub fn from_words(dims: usize, words: Vec<u64>) -> Option<Self> {
        if dims == 0 || words.len() != dims.div_ceil(64) {
            return None;
        }
        let tail_bits = dims % 64;
        if tail_bits != 0 {
            let last = words[words.len() - 1];
            if last >> tail_bits != 0 {
                return None;
            }
        }
        Some(BitVector { dims, words })
    }

    /// Builds a vector from an iterator of booleans.
    pub fn from_bits(bits: impl IntoIterator<Item = bool>) -> Self {
        let bits: Vec<bool> = bits.into_iter().collect();
        let mut v = BitVector::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            v.set(i, b);
        }
        v
    }

    /// The number of dimensions `d`.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The packed words (read-only).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Value of dimension `i`.
    ///
    /// # Panics
    /// Panics if `i ≥ dims`.
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.dims, "dimension out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets dimension `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i ≥ dims`.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.dims, "dimension out of range");
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips dimension `i`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.dims, "dimension out of range");
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Full Hamming distance `H(x, q)`.
    ///
    /// # Panics
    /// Panics if dimensions differ.
    pub fn distance(&self, other: &BitVector) -> u32 {
        assert_eq!(self.dims, other.dims, "dimension mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distance with early abandon: returns `None` as soon as
    /// the running distance exceeds `tau` (verification fast path).
    /// Runs on the batched (and, with the `simd` feature on an AVX2
    /// host, vectorized) kernel from [`crate::kernels`]; the abandon
    /// check fires at batch granularity, which never changes the result.
    pub fn distance_within(&self, other: &BitVector, tau: u32) -> Option<u32> {
        assert_eq!(self.dims, other.dims, "dimension mismatch");
        crate::kernels::distance_within(&self.words, &other.words, tau)
    }

    /// Hamming distance restricted to dimensions `[lo, hi)` — one box
    /// value `b_i(x, q) = H(x^i, q^i)` for a part `[lo, hi)`. Boundary
    /// words are masked; interior words run the batched/vectorized
    /// kernel from [`crate::kernels`].
    ///
    /// # Panics
    /// Panics if the range is invalid or out of bounds.
    pub fn part_distance(&self, other: &BitVector, lo: usize, hi: usize) -> u32 {
        assert!(lo <= hi && hi <= self.dims, "invalid part range");
        assert_eq!(self.dims, other.dims, "dimension mismatch");
        crate::kernels::part_distance(&self.words, &other.words, lo, hi)
    }

    /// The bits of part `[lo, hi)` packed into a `u64` signature (used as
    /// the index key). Requires a part width of at most 64.
    ///
    /// # Panics
    /// Panics if the range is invalid or wider than 64 bits.
    pub fn part_signature(&self, lo: usize, hi: usize) -> u64 {
        assert!(lo < hi && hi <= self.dims, "invalid part range");
        let width = hi - lo;
        assert!(width <= 64, "part signatures support at most 64 bits");
        let wlo = lo / 64;
        let off = lo % 64;
        let mut sig = self.words[wlo] >> off;
        if off != 0 && wlo + 1 < self.words.len() {
            sig |= self.words[wlo + 1] << (64 - off);
        }
        if width < 64 {
            sig &= (1u64 << width) - 1;
        }
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_access() {
        let v = BitVector::from_bit_str("10 01");
        assert_eq!(v.dims(), 4);
        assert!(v.get(0));
        assert!(!v.get(1));
        assert!(!v.get(2));
        assert!(v.get(3));
    }

    #[test]
    fn distance_matches_naive() {
        let x = BitVector::from_bit_str("11111010");
        let q = BitVector::from_bit_str("00101011");
        let naive: u32 = (0..8).map(|i| (x.get(i) != q.get(i)) as u32).sum();
        assert_eq!(x.distance(&q), naive);
    }

    #[test]
    fn distance_within_abandons() {
        let mut x = BitVector::zeros(256);
        let q = BitVector::zeros(256);
        for i in 0..80 {
            x.flip(i);
        }
        assert_eq!(x.distance(&q), 80);
        assert_eq!(x.distance_within(&q, 80), Some(80));
        assert_eq!(x.distance_within(&q, 79), None);
    }

    #[test]
    fn part_distance_sums_to_total() {
        let x = BitVector::from_bit_str("1111101001011100");
        let q = BitVector::from_bit_str("0010101101110001");
        let total: u32 = (0..4)
            .map(|i| x.part_distance(&q, i * 4, (i + 1) * 4))
            .sum();
        assert_eq!(total, x.distance(&q));
    }

    #[test]
    fn part_distance_across_word_boundary() {
        let mut x = BitVector::zeros(128);
        let q = BitVector::zeros(128);
        x.flip(62);
        x.flip(63);
        x.flip(64);
        x.flip(65);
        assert_eq!(x.part_distance(&q, 60, 70), 4);
        assert_eq!(x.part_distance(&q, 63, 65), 2);
        assert_eq!(x.part_distance(&q, 0, 62), 0);
        assert_eq!(x.part_distance(&q, 66, 128), 0);
    }

    #[test]
    fn part_distance_mask_edges_pinned() {
        // Pinned regression cases for the mask edge cases the
        // vectorized kernels must reproduce exactly (ISSUE 6).
        let dims = 200; // not a multiple of 64 (tail word has 8 live bits)
        let mut x = BitVector::zeros(dims);
        let q = BitVector::zeros(dims);
        for i in [0, 1, 30, 31, 62, 63, 64, 100, 127, 128, 190, 198, 199] {
            x.flip(i);
        }
        // lo and hi inside the same word (both masks on one word).
        assert_eq!(x.part_distance(&q, 1, 32), 3); // bits 1, 30, 31
        assert_eq!(x.part_distance(&q, 1, 31), 2); // bits 1, 30
        assert_eq!(x.part_distance(&q, 30, 31), 1);
        // hi == dims on a ragged tail word.
        assert_eq!(x.part_distance(&q, 190, dims), 3); // bits 190, 198, 199
        assert_eq!(x.part_distance(&q, 199, dims), 1);
        // Zero-width parts anywhere, including word boundaries.
        for lo in [0, 1, 63, 64, 65, 128, dims] {
            assert_eq!(x.part_distance(&q, lo, lo), 0, "zero width at {lo}");
        }
        // Whole-range part equals the full distance.
        assert_eq!(x.part_distance(&q, 0, dims), x.distance(&q));
        // Word-aligned lo with ragged hi and vice versa.
        assert_eq!(x.part_distance(&q, 64, 190), 4); // bits 64, 100, 127, 128
        assert_eq!(x.part_distance(&q, 63, 64), 1);
        assert_eq!(x.part_distance(&q, 64, 65), 1);
    }

    #[test]
    fn part_signature_roundtrip() {
        let v = BitVector::from_bit_str("1011001110001111");
        // Part [4, 12) has bits 0,0,1,1,1,0,0,0 (dims 4..11) → LSB-first.
        let sig = v.part_signature(4, 12);
        for (k, d) in (4..12).enumerate() {
            assert_eq!((sig >> k) & 1 == 1, v.get(d), "bit {d}");
        }
    }

    #[test]
    fn part_signature_straddles_words() {
        let mut v = BitVector::zeros(128);
        v.flip(63);
        v.flip(64);
        let sig = v.part_signature(60, 76);
        assert_eq!(sig, 0b11000); // bits 3 and 4 of the 16-bit window
    }

    #[test]
    fn from_words_round_trips_and_rejects_invalid() {
        let v = BitVector::from_bit_str("1011 0110 1100 0001 111");
        let back = BitVector::from_words(v.dims(), v.words().to_vec()).expect("valid encoding");
        assert_eq!(back, v);
        // dims = 0, wrong word count, stray bits past dims: all rejected.
        assert!(BitVector::from_words(0, vec![]).is_none());
        assert!(BitVector::from_words(65, vec![0]).is_none());
        assert!(BitVector::from_words(64, vec![0, 0]).is_none());
        assert!(BitVector::from_words(3, vec![0b1000]).is_none());
        assert!(BitVector::from_words(3, vec![0b0111]).is_some());
    }

    #[test]
    fn table2_example_vectors() {
        // Table 2 of the paper: the five parts of x¹ vs q give the box
        // layout (2, 1, 2, 2, 1) used throughout §3.
        let x1 = BitVector::from_bit_str("11 11 10 11 10");
        let q = BitVector::from_bit_str("00 10 01 00 11");
        let boxes: Vec<u32> = (0..5)
            .map(|i| x1.part_distance(&q, i * 2, (i + 1) * 2))
            .collect();
        assert_eq!(boxes, vec![2, 1, 2, 2, 1]);
        assert_eq!(x1.distance(&q), 8);
    }
}
