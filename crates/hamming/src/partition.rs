//! Equi-width dimension partitioning (the featuring function of §6.1).
//!
//! `d` dimensions are split into `m` disjoint contiguous parts. When `m`
//! does not divide `d`, the remainder is spread one dimension at a time
//! over the leading parts, so part widths differ by at most one — the
//! same layout the GPH paper uses for its vertical partitioning.

/// A partitioning of `d` dimensions into `m` contiguous parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partitioning {
    d: usize,
    bounds: Vec<(usize, usize)>,
}

impl Partitioning {
    /// Splits `d` dimensions into `m` near-equal contiguous parts.
    ///
    /// Parts wider than 64 bits are fine for distance computation; only
    /// signature *indexing* requires ≤ 64-bit parts, which
    /// [`crate::index::PartIndex::build`] enforces.
    ///
    /// # Panics
    /// Panics if `m == 0`, `d == 0`, or `m > d`.
    pub fn equi_width(d: usize, m: usize) -> Self {
        assert!(d > 0 && m > 0, "need positive dimensions and parts");
        assert!(m <= d, "cannot have more parts than dimensions");
        let base = d / m;
        let extra = d % m;
        let mut bounds = Vec::with_capacity(m);
        let mut lo = 0;
        for i in 0..m {
            let w = base + usize::from(i < extra);
            bounds.push((lo, lo + w));
            lo += w;
        }
        debug_assert_eq!(lo, d);
        Partitioning { d, bounds }
    }

    /// The GPH default `m = ⌊d/16⌋` (16-bit parts), clamped to at least 1.
    pub fn gph_default(d: usize) -> Self {
        Partitioning::equi_width(d, (d / 16).max(1))
    }

    /// The number of parts `m`.
    pub fn num_parts(&self) -> usize {
        self.bounds.len()
    }

    /// Total dimensions `d`.
    pub fn dims(&self) -> usize {
        self.d
    }

    /// Bounds `[lo, hi)` of part `i`.
    pub fn part(&self, i: usize) -> (usize, usize) {
        self.bounds[i]
    }

    /// Width of part `i`.
    pub fn width(&self, i: usize) -> usize {
        let (lo, hi) = self.bounds[i];
        hi - lo
    }

    /// Iterator over all part bounds.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bounds.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let p = Partitioning::equi_width(256, 16);
        assert_eq!(p.num_parts(), 16);
        for i in 0..16 {
            assert_eq!(p.width(i), 16);
            assert_eq!(p.part(i), (i * 16, (i + 1) * 16));
        }
    }

    #[test]
    fn remainder_spread_over_leading_parts() {
        let p = Partitioning::equi_width(10, 3);
        assert_eq!(p.part(0), (0, 4));
        assert_eq!(p.part(1), (4, 7));
        assert_eq!(p.part(2), (7, 10));
    }

    #[test]
    fn parts_are_disjoint_and_cover() {
        for (d, m) in [(17, 4), (64, 5), (100, 7), (512, 32)] {
            let p = Partitioning::equi_width(d, m);
            let mut covered = 0;
            let mut prev_hi = 0;
            for (lo, hi) in p.iter() {
                assert_eq!(lo, prev_hi, "parts must be contiguous");
                assert!(hi > lo);
                covered += hi - lo;
                prev_hi = hi;
            }
            assert_eq!(covered, d);
        }
    }

    #[test]
    fn gph_default_uses_16_bit_parts() {
        let p = Partitioning::gph_default(256);
        assert_eq!(p.num_parts(), 16);
        let p = Partitioning::gph_default(512);
        assert_eq!(p.num_parts(), 32);
        // Tiny d clamps to one part.
        let p = Partitioning::gph_default(8);
        assert_eq!(p.num_parts(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot have more parts than dimensions")]
    fn too_many_parts_panics() {
        let _ = Partitioning::equi_width(4, 5);
    }
}
