//! Vectorized XOR+popcount distance kernels over packed `u64` words.
//!
//! Three tiers, all bit-identical in their results (the CI
//! `kernel-differential` job proves it on random inputs):
//!
//! 1. **scalar** — one word per iteration, threshold checked per word.
//!    The original [`BitVector::distance_within`] loop, kept as the
//!    differential-testing reference.
//! 2. **batched** — [`BATCH_WORDS`] words per iteration with four
//!    independent popcount accumulator lanes (ILP: the popcounts have no
//!    data dependency), threshold checked once per batch. Early abandon
//!    is preserved at batch granularity: a batch that pushes the running
//!    distance past `τ` still returns `None`, it just detects it up to
//!    seven words later — the *returned value* is identical because a
//!    pass (total ≤ τ) never triggers either exit.
//! 3. **avx2** — compiled only with the `simd` cargo feature on x86-64
//!    and selected at runtime via `is_x86_feature_detected!`: the
//!    Muła/Kurz/Lemire nibble-lookup popcount (`vpshufb` + `vpsadbw`,
//!    the register-resident design Faiss uses for billion-scale distance
//!    kernels), 8 words (two 256-bit vectors) per iteration.
//!
//! The public [`distance_within`]/[`part_distance`] entry points
//! dispatch: AVX2 when compiled in *and* detected, else batched scalar.
//! The scalar fallback is always compiled, so a `--features simd` build
//! still runs correctly on a non-AVX2 host.
//!
//! [`BitVector::distance_within`]: crate::BitVector::distance_within

/// Words per batched-kernel iteration (512 bits).
pub const BATCH_WORDS: usize = 8;

/// The kernel backend [`distance_within`]/[`part_distance`] will use on
/// this machine: `"avx2"` when the `simd` feature is compiled in and the
/// CPU supports it, else `"batched-scalar"`. Recorded into
/// `BENCH_kernels.json` so benchmark rows are attributable to a backend.
pub fn backend() -> &'static str {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::available() {
        return "avx2";
    }
    "batched-scalar"
}

/// Early-abandoning Hamming distance over packed words: `Some(d)` iff
/// `d ≤ tau`. Runtime-dispatched (see module docs).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn distance_within(a: &[u64], b: &[u64], tau: u32) -> Option<u32> {
    assert_eq!(a.len(), b.len(), "word-count mismatch");
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::available() {
        return avx2::distance_within(a, b, tau);
    }
    distance_within_batched(a, b, tau)
}

/// Reference kernel: one word at a time, threshold checked per word.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn distance_within_scalar(a: &[u64], b: &[u64], tau: u32) -> Option<u32> {
    assert_eq!(a.len(), b.len(), "word-count mismatch");
    let mut acc = 0u32;
    for (x, y) in a.iter().zip(b) {
        acc += (x ^ y).count_ones();
        if acc > tau {
            return None;
        }
    }
    Some(acc)
}

/// Batched kernel: [`BATCH_WORDS`]-word iterations, four accumulator
/// lanes, threshold checked once per batch.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn distance_within_batched(a: &[u64], b: &[u64], tau: u32) -> Option<u32> {
    assert_eq!(a.len(), b.len(), "word-count mismatch");
    let mut acc = 0u32;
    let mut chunks_a = a.chunks_exact(BATCH_WORDS);
    let mut chunks_b = b.chunks_exact(BATCH_WORDS);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        // Four independent lanes: the popcounts carry no dependency, so
        // the CPU overlaps them; one chained accumulator would serialize.
        let l0 = (ca[0] ^ cb[0]).count_ones() + (ca[4] ^ cb[4]).count_ones();
        let l1 = (ca[1] ^ cb[1]).count_ones() + (ca[5] ^ cb[5]).count_ones();
        let l2 = (ca[2] ^ cb[2]).count_ones() + (ca[6] ^ cb[6]).count_ones();
        let l3 = (ca[3] ^ cb[3]).count_ones() + (ca[7] ^ cb[7]).count_ones();
        acc += (l0 + l1) + (l2 + l3);
        if acc > tau {
            return None;
        }
    }
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += (x ^ y).count_ones();
    }
    (acc <= tau).then_some(acc)
}

/// Popcount of `a ^ b` restricted to dimensions `[lo, hi)` —
/// runtime-dispatched (see module docs).
///
/// # Panics
/// Panics if the slices differ in length or the range exceeds them.
pub fn part_distance(a: &[u64], b: &[u64], lo: usize, hi: usize) -> u32 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if avx2::available() {
        return avx2::part_distance(a, b, lo, hi);
    }
    part_distance_batched(a, b, lo, hi)
}

/// Reference part kernel: every word in the range is masked and counted
/// individually (the original [`BitVector::part_distance`] loop).
///
/// # Panics
/// Panics if the slices differ in length or the range exceeds them.
///
/// [`BitVector::part_distance`]: crate::BitVector::part_distance
pub fn part_distance_scalar(a: &[u64], b: &[u64], lo: usize, hi: usize) -> u32 {
    assert_eq!(a.len(), b.len(), "word-count mismatch");
    assert!(lo <= hi && hi <= a.len() * 64, "invalid part range");
    let mut acc = 0u32;
    let (wlo, whi) = (lo / 64, hi.div_ceil(64));
    for w in wlo..whi {
        let mut x = a[w] ^ b[w];
        let word_base = w * 64;
        // Mask off bits below lo in the first word and ≥ hi in the last.
        if lo > word_base {
            x &= !0u64 << (lo - word_base);
        }
        if hi < word_base + 64 {
            x &= (1u64 << (hi - word_base)) - 1;
        }
        acc += x.count_ones();
    }
    acc
}

/// Batched part kernel: only the boundary words are masked; the interior
/// whole words run through the unmasked batched popcount.
///
/// # Panics
/// Panics if the slices differ in length or the range exceeds them.
pub fn part_distance_batched(a: &[u64], b: &[u64], lo: usize, hi: usize) -> u32 {
    let (head, interior, tail) = split_part_range(a, b, lo, hi);
    head + tail + unmasked_popcount_batched(interior.0, interior.1)
}

/// Shared boundary handling for the part kernels: counts the (masked)
/// head and tail words and returns the interior whole-word subslices.
///
/// # Panics
/// Panics if the slices differ in length or the range exceeds them.
#[allow(clippy::type_complexity)]
fn split_part_range<'s>(
    a: &'s [u64],
    b: &'s [u64],
    lo: usize,
    hi: usize,
) -> (u32, (&'s [u64], &'s [u64]), u32) {
    assert_eq!(a.len(), b.len(), "word-count mismatch");
    assert!(lo <= hi && hi <= a.len() * 64, "invalid part range");
    if lo == hi {
        return (0, (&[], &[]), 0);
    }
    let wlo = lo / 64;
    let whi = (hi - 1) / 64; // inclusive index of the last touched word
    let lo_mask = !0u64 << (lo % 64);
    let hi_bits = hi - whi * 64; // 1..=64 live bits in the last word
    let hi_mask = if hi_bits == 64 {
        !0u64
    } else {
        (1u64 << hi_bits) - 1
    };
    if wlo == whi {
        return (
            ((a[wlo] ^ b[wlo]) & lo_mask & hi_mask).count_ones(),
            (&[], &[]),
            0,
        );
    }
    let head = ((a[wlo] ^ b[wlo]) & lo_mask).count_ones();
    let tail = ((a[whi] ^ b[whi]) & hi_mask).count_ones();
    (head, (&a[wlo + 1..whi], &b[wlo + 1..whi]), tail)
}

/// Unmasked XOR+popcount over whole words, [`BATCH_WORDS`] per
/// iteration with independent lanes (no threshold — used by the part
/// kernels' interiors).
fn unmasked_popcount_batched(a: &[u64], b: &[u64]) -> u32 {
    let mut acc = 0u32;
    let mut chunks_a = a.chunks_exact(BATCH_WORDS);
    let mut chunks_b = b.chunks_exact(BATCH_WORDS);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        let l0 = (ca[0] ^ cb[0]).count_ones() + (ca[4] ^ cb[4]).count_ones();
        let l1 = (ca[1] ^ cb[1]).count_ones() + (ca[5] ^ cb[5]).count_ones();
        let l2 = (ca[2] ^ cb[2]).count_ones() + (ca[6] ^ cb[6]).count_ones();
        let l3 = (ca[3] ^ cb[3]).count_ones() + (ca[7] ^ cb[7]).count_ones();
        acc += (l0 + l1) + (l2 + l3);
    }
    for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += (x ^ y).count_ones();
    }
    acc
}

/// Explicit AVX2 kernels (`vpshufb` nibble-LUT popcount), compiled only
/// with `--features simd` on x86-64 and entered only after a runtime
/// `is_x86_feature_detected!("avx2")` check.
///
/// The workspace denies `unsafe_code`; this module is the one scoped
/// exception — every unsafe block is a `std::arch` intrinsic call whose
/// safety argument (target-feature availability + in-bounds unaligned
/// loads) is documented inline, and the module's results are gated
/// bit-identical to the safe kernels by `tests/kernel_differential.rs`.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
#[allow(unsafe_code)]
pub mod avx2 {
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_epi8, _mm256_and_si256, _mm256_extracti128_si256,
        _mm256_loadu_si256, _mm256_sad_epu8, _mm256_set1_epi8, _mm256_setzero_si256,
        _mm256_shuffle_epi8, _mm256_srli_epi16, _mm256_xor_si256, _mm_add_epi64, _mm_cvtsi128_si64,
        _mm_shuffle_epi32,
    };

    /// Words per AVX2 iteration: two 256-bit vectors.
    pub const AVX2_BATCH_WORDS: usize = 8;

    /// Whether this CPU can run the AVX2 kernels (cached by std).
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// AVX2 [`distance_within`](super::distance_within): 8-word batches,
    /// threshold checked once per batch.
    ///
    /// # Panics
    /// Panics if the slices differ in length or AVX2 is unavailable.
    pub fn distance_within(a: &[u64], b: &[u64], tau: u32) -> Option<u32> {
        assert_eq!(a.len(), b.len(), "word-count mismatch");
        assert!(available(), "AVX2 kernel on a non-AVX2 CPU");
        // SAFETY: `available()` just confirmed the `avx2` target
        // feature at runtime, which is the only requirement of
        // `distance_within_impl`'s `#[target_feature]`.
        unsafe { distance_within_impl(a, b, tau) }
    }

    /// AVX2 [`part_distance`](super::part_distance): masked boundary
    /// words in scalar, unmasked AVX2 popcount over the interior.
    ///
    /// # Panics
    /// Panics if the slices differ in length, the range exceeds them, or
    /// AVX2 is unavailable.
    pub fn part_distance(a: &[u64], b: &[u64], lo: usize, hi: usize) -> u32 {
        assert!(available(), "AVX2 kernel on a non-AVX2 CPU");
        let (head, (ia, ib), tail) = super::split_part_range(a, b, lo, hi);
        // SAFETY: `available()` confirmed the `avx2` target feature,
        // the only requirement of `popcount_xor_impl`.
        head + tail + unsafe { popcount_xor_impl(ia, ib) }
    }

    // SAFETY: callers must have verified the `avx2` target feature at
    // runtime (`available()`); `#[target_feature]` makes calling this
    // on a CPU without it undefined behavior.
    #[target_feature(enable = "avx2")]
    unsafe fn distance_within_impl(a: &[u64], b: &[u64], tau: u32) -> Option<u32> {
        let mut acc = 0u32;
        let mut chunks_a = a.chunks_exact(AVX2_BATCH_WORDS);
        let mut chunks_b = b.chunks_exact(AVX2_BATCH_WORDS);
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            // SAFETY: `ca`/`cb` are exactly 8 u64s = two 32-byte
            // vectors; `loadu` tolerates any alignment, and both loads
            // below read entirely within the chunk.
            let batch = unsafe {
                let va0 = _mm256_loadu_si256(ca.as_ptr().cast());
                let vb0 = _mm256_loadu_si256(cb.as_ptr().cast());
                let va1 = _mm256_loadu_si256(ca.as_ptr().add(4).cast());
                let vb1 = _mm256_loadu_si256(cb.as_ptr().add(4).cast());
                let sums = _mm256_add_epi64(
                    popcount256(_mm256_xor_si256(va0, vb0)),
                    popcount256(_mm256_xor_si256(va1, vb1)),
                );
                horizontal_sum(sums)
            };
            acc += batch;
            if acc > tau {
                return None;
            }
        }
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            acc += (x ^ y).count_ones();
        }
        (acc <= tau).then_some(acc)
    }

    // SAFETY: callers must have verified the `avx2` target feature at
    // runtime (`available()`); `#[target_feature]` makes calling this
    // on a CPU without it undefined behavior.
    #[target_feature(enable = "avx2")]
    unsafe fn popcount_xor_impl(a: &[u64], b: &[u64]) -> u32 {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = _mm256_setzero_si256();
        let mut chunks_a = a.chunks_exact(AVX2_BATCH_WORDS);
        let mut chunks_b = b.chunks_exact(AVX2_BATCH_WORDS);
        for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
            // SAFETY: same in-bounds unaligned-load argument as in
            // `distance_within_impl` — 8 u64s = two full vectors.
            unsafe {
                let va0 = _mm256_loadu_si256(ca.as_ptr().cast());
                let vb0 = _mm256_loadu_si256(cb.as_ptr().cast());
                let va1 = _mm256_loadu_si256(ca.as_ptr().add(4).cast());
                let vb1 = _mm256_loadu_si256(cb.as_ptr().add(4).cast());
                acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(va0, vb0)));
                acc = _mm256_add_epi64(acc, popcount256(_mm256_xor_si256(va1, vb1)));
            }
        }
        let mut total = horizontal_sum(acc);
        for (x, y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
            total += (x ^ y).count_ones();
        }
        total
    }

    /// Per-64-bit-lane popcount of a 256-bit vector via the nibble
    /// lookup table (`vpshufb`) and byte-sum (`vpsadbw`).
    #[target_feature(enable = "avx2")]
    fn popcount256(v: __m256i) -> __m256i {
        // Bit counts of the nibble values 0x0..=0xF, replicated across
        // both 128-bit lanes (vpshufb shuffles within lanes).
        #[rustfmt::skip]
        const NIBBLE_LUT: [i8; 32] = [
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        ];
        // SAFETY: the LUT is a 32-byte static, exactly one vector load.
        let lut = unsafe { _mm256_loadu_si256(NIBBLE_LUT.as_ptr().cast()) };
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi16::<4>(v), low_mask);
        let counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
        // Sum the 32 byte-counts into four u64 lanes.
        _mm256_sad_epu8(counts, _mm256_setzero_si256())
    }

    /// Sums the four u64 lanes of a `vpsadbw` accumulator.
    #[target_feature(enable = "avx2")]
    fn horizontal_sum(v: __m256i) -> u32 {
        let lo = _mm256_extracti128_si256::<0>(v);
        let hi = _mm256_extracti128_si256::<1>(v);
        let sum2 = _mm_add_epi64(lo, hi);
        let shifted = _mm_shuffle_epi32::<0b0100_1110>(sum2);
        let total = _mm_add_epi64(sum2, shifted);
        _mm_cvtsi128_si64(total) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic word patterns exercising dense, sparse, and
    /// boundary-bit layouts.
    fn words(n: usize, seed: u64) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s
            })
            .collect()
    }

    #[test]
    fn batched_matches_scalar_across_lengths_and_taus() {
        for n in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 32, 64] {
            let a = words(n, 0xA5);
            let b = words(n, 0x5A);
            let full: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
            for tau in [0, full.saturating_sub(1), full, full + 1, full + 100] {
                let want = distance_within_scalar(&a, &b, tau);
                assert_eq!(
                    distance_within_batched(&a, &b, tau),
                    want,
                    "n={n} tau={tau}"
                );
                assert_eq!(distance_within(&a, &b, tau), want, "n={n} tau={tau}");
            }
        }
    }

    #[test]
    fn part_batched_matches_scalar_on_boundaries() {
        let n = 9; // 576 dims: not a multiple of 256
        let a = words(n, 0xBEEF);
        let b = words(n, 0xF00D);
        let dims = n * 64;
        let ranges = [
            (0, 0),
            (0, dims),
            (3, 3),
            (0, 64),
            (64, 128),
            (1, 63),  // same word, both masks
            (63, 65), // straddle
            (60, 580 - 4),
            (512, dims), // tail words only
            (130, 131),
        ];
        for (lo, hi) in ranges {
            let want = part_distance_scalar(&a, &b, lo, hi);
            assert_eq!(part_distance_batched(&a, &b, lo, hi), want, "[{lo},{hi})");
            assert_eq!(part_distance(&a, &b, lo, hi), want, "[{lo},{hi})");
        }
    }

    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx2_matches_scalar_when_available() {
        if !avx2::available() {
            return; // nothing to test on this host; CI runs both ways
        }
        for n in [1usize, 4, 7, 8, 9, 16, 23, 64] {
            let a = words(n, 0x1234);
            let b = words(n, 0x9876);
            let full: u32 = a.iter().zip(&b).map(|(x, y)| (x ^ y).count_ones()).sum();
            for tau in [0, full.saturating_sub(1), full, full + 7] {
                assert_eq!(
                    avx2::distance_within(&a, &b, tau),
                    distance_within_scalar(&a, &b, tau),
                    "n={n} tau={tau}"
                );
            }
            let dims = n * 64;
            for (lo, hi) in [(0, dims), (1, dims - 1), (0, 0), (dims / 2, dims)] {
                assert_eq!(
                    avx2::part_distance(&a, &b, lo, hi),
                    part_distance_scalar(&a, &b, lo, hi),
                    "n={n} [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn backend_names_are_stable() {
        let b = backend();
        assert!(b == "avx2" || b == "batched-scalar", "{b}");
    }
}
