//! Search engines: GPH (pigeonhole) and Ring (pigeonring) over a shared
//! index, plus a linear-scan reference.
//!
//! Candidate generation follows §7 exactly:
//!
//! 1. **First step** — probe the per-part signature index for viable
//!    single boxes (`b_i ≤ t_i`); identical for GPH and Ring.
//! 2. **Second step** (Ring only) — from each viable box, extend the chain
//!    clockwise, computing part distances by popcount on the fly, and
//!    accept the object only if the chain of length `l` is prefix-viable
//!    under the Theorem 7 quotas `‖c^{l'}_i‖₁ ≤ l' − 1 + Σ t_j`. A failed
//!    prefix at length `l'` rules out starts `i..i+l'−1` for this object
//!    (Corollary 2), tracked in a per-object bitmask.
//!
//! Accepted objects are deduplicated with an epoch-stamped array (the
//! "union of candidate sets before verification" the paper measures) and
//! verified with early-abandoning Hamming distance.

use crate::alloc::{even_allocation, AllocationStrategy, CostModel};
use crate::bitvec::BitVector;
use crate::index::PartIndex;
use crate::partition::Partitioning;
use pigeonring_core::viability::{check_prefix_viable_lazy, Direction, ThresholdScheme};

/// Per-query search counters, matching the cost terms of §7.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Unique objects passed to verification (`|A_PH|` / `|A_PR|`).
    pub candidates: usize,
    /// Objects whose `H(x, q) ≤ τ`.
    pub results: usize,
    /// Signatures enumerated in the first step (`C_C1` cost proxy).
    pub probes: usize,
    /// Viable single boxes found in the first step (`|V|`).
    pub viable_boxes: usize,
    /// Box evaluations performed in the second step (`C_C2` cost proxy).
    pub boxes_checked: usize,
    /// Chain checks avoided by the Corollary-2 bitmask.
    pub skipped_by_corollary2: usize,
}

impl SearchStats {
    /// Folds `other` into `self`, saturating on overflow (shard
    /// aggregation in the service layer).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.results = self.results.saturating_add(other.results);
        self.probes = self.probes.saturating_add(other.probes);
        self.viable_boxes = self.viable_boxes.saturating_add(other.viable_boxes);
        self.boxes_checked = self.boxes_checked.saturating_add(other.boxes_checked);
        self.skipped_by_corollary2 = self
            .skipped_by_corollary2
            .saturating_add(other.skipped_by_corollary2);
    }
}

/// Per-thread mutable query state for [`RingHamming`]: the shared
/// epoch-stamped candidate dedup array and Corollary-2 ruled-start
/// bitmasks ([`pigeonring_core::scratch::EpochScratch`]).
///
/// `Default` yields an empty scratch that lazily sizes itself to the
/// engine's record count on first use, so worker threads can create one
/// without seeing the engine.
pub type HammingScratch = pigeonring_core::scratch::EpochScratch;

/// The pigeonring Hamming-distance search engine (§6.1). With `l = 1` it
/// degenerates to GPH exactly; [`Gph`] is that fixed configuration.
///
/// The index is immutable at query time: [`RingHamming::search_with`]
/// takes `&self` plus an external [`HammingScratch`], so shards can serve
/// concurrent worker threads. The `&mut self` methods are convenience
/// wrappers around an engine-owned scratch.
pub struct RingHamming {
    data: Vec<BitVector>,
    partitioning: Partitioning,
    index: PartIndex,
    strategy: AllocationStrategy,
    cost: Option<CostModel>,
    corollary2_skip: bool,
    scratch: HammingScratch,
}

impl RingHamming {
    /// Default cost-model sample size.
    const COST_SAMPLE: usize = 1024;

    /// Builds the engine over `data` with `m` equi-width parts.
    ///
    /// # Panics
    /// Panics if `data` is empty, dimensionalities disagree, or `m > 64`
    /// (the Corollary-2 bitmask is one `u64` per object).
    pub fn build(data: Vec<BitVector>, m: usize, strategy: AllocationStrategy) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        let d = data[0].dims();
        Self::with_partitioning(data, Partitioning::equi_width(d, m), strategy)
    }

    /// Builds the engine with an explicit partitioning.
    pub fn with_partitioning(
        data: Vec<BitVector>,
        partitioning: Partitioning,
        strategy: AllocationStrategy,
    ) -> Self {
        assert!(!data.is_empty(), "cannot index an empty dataset");
        assert!(partitioning.num_parts() <= 64, "at most 64 parts supported");
        let index = PartIndex::build(&data, partitioning.clone());
        let cost = match strategy {
            AllocationStrategy::Even => None,
            AllocationStrategy::CostModel => {
                Some(CostModel::build(&data, &partitioning, Self::COST_SAMPLE))
            }
        };
        RingHamming {
            data,
            partitioning,
            index,
            strategy,
            cost,
            corollary2_skip: true,
            scratch: HammingScratch::default(),
        }
    }

    /// Enables or disables the Corollary-2 start-skipping optimization
    /// (kept switchable for the `ablate-skip` experiment).
    pub fn set_corollary2_skip(&mut self, enabled: bool) {
        self.corollary2_skip = enabled;
    }

    /// The indexed vectors.
    pub fn data(&self) -> &[BitVector] {
        &self.data
    }

    /// The number of parts `m`.
    pub fn num_parts(&self) -> usize {
        self.partitioning.num_parts()
    }

    /// Allocates the per-part thresholds for this query
    /// (`Σ t_i = τ − m + 1`).
    pub fn allocate(&self, q: &BitVector, tau: i64) -> Vec<i64> {
        match self.strategy {
            AllocationStrategy::Even => even_allocation(tau, self.partitioning.num_parts()),
            AllocationStrategy::CostModel => self
                .cost
                .as_ref()
                .expect("cost model built at construction")
                .allocate(q, &self.partitioning, tau),
        }
    }

    /// Searches for all vectors within Hamming distance `tau` of `q`,
    /// using chain length `l` (clamped to `[1..m]`). Returns the result
    /// ids (ascending) and the per-query statistics.
    pub fn search(&mut self, q: &BitVector, tau: u32, l: usize) -> (Vec<u32>, SearchStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.search_with(&mut scratch, q, tau, l);
        self.scratch = scratch;
        out
    }

    /// [`RingHamming::search`] against a caller-owned scratch; takes
    /// `&self`, so any number of threads can search one engine
    /// concurrently, each with its own [`HammingScratch`].
    pub fn search_with(
        &self,
        scratch: &mut HammingScratch,
        q: &BitVector,
        tau: u32,
        l: usize,
    ) -> (Vec<u32>, SearchStats) {
        let (cands, mut stats) = self.candidates_with(scratch, q, tau, l);
        let mut results: Vec<u32> = cands
            .into_iter()
            .filter(|&id| self.data[id as usize].distance_within(q, tau).is_some())
            .collect();
        results.sort_unstable();
        stats.results = results.len();
        (results, stats)
    }

    /// Candidate generation only (both steps of §7, no verification) —
    /// lets the harness time the filter separately, as Figure 5 plots
    /// "Cand." vs "Total".
    pub fn candidates(&mut self, q: &BitVector, tau: u32, l: usize) -> (Vec<u32>, SearchStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.candidates_with(&mut scratch, q, tau, l);
        self.scratch = scratch;
        out
    }

    /// [`RingHamming::candidates`] against a caller-owned scratch
    /// (`&self`; see [`RingHamming::search_with`]).
    pub fn candidates_with(
        &self,
        scratch: &mut HammingScratch,
        q: &BitVector,
        tau: u32,
        l: usize,
    ) -> (Vec<u32>, SearchStats) {
        assert_eq!(
            q.dims(),
            self.partitioning.dims(),
            "query dimensionality mismatch"
        );
        let m = self.partitioning.num_parts();
        let l = l.clamp(1, m);
        let t = self.allocate(q, tau as i64);
        let scheme = ThresholdScheme::integer_reduced(t.clone());
        let epoch = scratch.next_epoch(self.data.len());

        let mut stats = SearchStats::default();
        let mut cands: Vec<u32> = Vec::new();

        // The probe visitor mutates the scratch arrays while the index
        // is borrowed immutably.
        let Self {
            ref data,
            ref partitioning,
            ref index,
            corollary2_skip,
            ..
        } = *self;
        let pigeonring_core::scratch::EpochScratch {
            ref mut accepted,
            ref mut ruled_epoch,
            ref mut ruled_mask,
            ..
        } = *scratch;

        stats.probes = index.probe(q, &t, |part, dist, id| {
            stats.viable_boxes += 1;
            let idu = id as usize;
            if accepted[idu] == epoch {
                return;
            }
            if l == 1 {
                // Pigeonhole: the viable box alone makes a candidate.
                accepted[idu] = epoch;
                cands.push(id);
                return;
            }
            if corollary2_skip && ruled_epoch[idu] == epoch && (ruled_mask[idu] >> part) & 1 == 1 {
                stats.skipped_by_corollary2 += 1;
                return;
            }
            let x = &data[idu];
            let mut first = true;
            let check = check_prefix_viable_lazy(&scheme, Direction::Le, part, l, |j| {
                stats.boxes_checked += 1;
                if first {
                    first = false;
                    dist as i64 // known from the enumeration depth
                } else {
                    let (lo, hi) = partitioning.part(j % m);
                    x.part_distance(q, lo, hi) as i64
                }
            });
            match check {
                Ok(()) => {
                    accepted[idu] = epoch;
                    cands.push(id);
                }
                Err(l_fail) => {
                    if corollary2_skip {
                        if ruled_epoch[idu] != epoch {
                            ruled_epoch[idu] = epoch;
                            ruled_mask[idu] = 0;
                        }
                        for k in 0..l_fail {
                            ruled_mask[idu] |= 1u64 << ((part + k) % m);
                        }
                    }
                }
            }
        });

        stats.candidates = cands.len();
        (cands, stats)
    }
}

/// The GPH baseline \[72\]: pigeonhole filtering with variable threshold
/// allocation and integer reduction — exactly [`RingHamming`] at `l = 1`.
pub struct Gph(RingHamming);

impl Gph {
    /// Builds GPH over `data` with `m` parts.
    pub fn build(data: Vec<BitVector>, m: usize, strategy: AllocationStrategy) -> Self {
        Gph(RingHamming::build(data, m, strategy))
    }

    /// Searches for all vectors within Hamming distance `tau` of `q`.
    pub fn search(&mut self, q: &BitVector, tau: u32) -> (Vec<u32>, SearchStats) {
        self.0.search(q, tau, 1)
    }

    /// The underlying shared engine.
    pub fn inner(&mut self) -> &mut RingHamming {
        &mut self.0
    }
}

/// Exhaustive reference: verifies every vector. Ground truth for tests and
/// the verification-cost floor for benchmarks.
pub struct LinearScan<'a> {
    data: &'a [BitVector],
}

impl<'a> LinearScan<'a> {
    /// Wraps a dataset.
    pub fn new(data: &'a [BitVector]) -> Self {
        LinearScan { data }
    }

    /// All ids with `H(x, q) ≤ τ`, ascending.
    pub fn search(&self, q: &BitVector, tau: u32) -> Vec<u32> {
        self.data
            .iter()
            .enumerate()
            .filter(|(_, x)| x.distance_within(q, tau).is_some())
            .map(|(id, _)| id as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_dataset() -> Vec<BitVector> {
        // 64-dim vectors with controlled distances from the zero vector.
        let mut data = Vec::new();
        for k in 0..32 {
            let mut v = BitVector::zeros(64);
            for b in 0..k {
                v.flip((b * 7) % 64);
            }
            data.push(v);
        }
        data
    }

    #[test]
    fn gph_matches_linear_scan() {
        let data = tiny_dataset();
        let scan = LinearScan::new(&data);
        let mut gph = Gph::build(data.clone(), 4, AllocationStrategy::Even);
        for tau in [0u32, 1, 3, 7, 15] {
            for qid in [0usize, 5, 17, 31] {
                let q = &data[qid];
                let expect = scan.search(q, tau);
                let (got, _) = gph.search(q, tau);
                assert_eq!(got, expect, "tau={tau} qid={qid}");
            }
        }
    }

    #[test]
    fn ring_matches_linear_scan_for_all_l() {
        let data = tiny_dataset();
        let scan = LinearScan::new(&data);
        let mut ring = RingHamming::build(data.clone(), 4, AllocationStrategy::Even);
        for tau in [0u32, 2, 5, 11] {
            for l in 1..=4usize {
                let q = &data[9];
                let expect = scan.search(q, tau);
                let (got, _) = ring.search(q, tau, l);
                assert_eq!(got, expect, "tau={tau} l={l}");
            }
        }
    }

    #[test]
    fn ring_with_cost_model_matches_linear_scan() {
        let data = tiny_dataset();
        let scan = LinearScan::new(&data);
        let mut ring = RingHamming::build(data.clone(), 4, AllocationStrategy::CostModel);
        for tau in [1u32, 4, 9] {
            for l in [1usize, 2, 4] {
                let q = &data[20];
                assert_eq!(
                    ring.search(q, tau, l).0,
                    scan.search(q, tau),
                    "tau={tau} l={l}"
                );
            }
        }
    }

    #[test]
    fn candidates_shrink_with_l() {
        // Lemma 4 at engine level: candidates non-increasing in l.
        let data = tiny_dataset();
        let mut ring = RingHamming::build(data.clone(), 4, AllocationStrategy::Even);
        let q = BitVector::zeros(64);
        let mut prev = usize::MAX;
        for l in 1..=4usize {
            let (_, stats) = ring.search(&q, 9, l);
            assert!(
                stats.candidates <= prev,
                "l={l}: {} > {prev}",
                stats.candidates
            );
            prev = stats.candidates;
        }
    }

    #[test]
    fn l_equals_m_candidates_are_results() {
        // §3: when ‖B‖₁ = f(x,q) and l = m, candidate generation subsumes
        // verification.
        let data = tiny_dataset();
        let mut ring = RingHamming::build(data, 4, AllocationStrategy::Even);
        let q = BitVector::zeros(64);
        let (results, stats) = ring.search(&q, 9, 4);
        assert_eq!(stats.candidates, results.len());
        assert_eq!(stats.candidates, stats.results);
    }

    #[test]
    fn corollary2_skip_does_not_change_results() {
        let data = tiny_dataset();
        let q = data[13].clone();
        let mut with = RingHamming::build(data.clone(), 8, AllocationStrategy::Even);
        let mut without = RingHamming::build(data, 8, AllocationStrategy::Even);
        without.set_corollary2_skip(false);
        for tau in [3u32, 9, 15] {
            for l in [2usize, 3, 8] {
                let (r1, s1) = with.search(&q, tau, l);
                let (r2, s2) = without.search(&q, tau, l);
                assert_eq!(r1, r2);
                assert_eq!(s1.candidates, s2.candidates);
                // The skip can only reduce box checks.
                assert!(s1.boxes_checked <= s2.boxes_checked);
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let data = tiny_dataset();
        let mut ring = RingHamming::build(data, 4, AllocationStrategy::Even);
        let q = BitVector::zeros(64);
        let (results, stats) = ring.search(&q, 7, 2);
        assert_eq!(stats.results, results.len());
        assert!(stats.results <= stats.candidates);
        assert!(stats.candidates <= stats.viable_boxes);
    }

    #[test]
    fn tau_zero_finds_exact_duplicates() {
        let mut data = tiny_dataset();
        data.push(data[4].clone()); // duplicate of id 4
        let mut ring = RingHamming::build(data.clone(), 4, AllocationStrategy::Even);
        let (res, _) = ring.search(&data[4].clone(), 0, 2);
        assert_eq!(res, vec![4, 32]);
    }

    #[test]
    fn large_tau_returns_everything() {
        let data = tiny_dataset();
        let n = data.len();
        let mut ring = RingHamming::build(data, 4, AllocationStrategy::Even);
        let (res, _) = ring.search(&BitVector::zeros(64), 64, 3);
        assert_eq!(res.len(), n);
    }
}
