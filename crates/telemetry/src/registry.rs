//! The name → metric [`MetricsRegistry`] and point-in-time
//! [`Snapshot`] with delta and exposition.
//!
//! Registration is a short-lived mutex acquisition (get-or-create a
//! handle); instrumented code is expected to resolve its `Arc` handles
//! once and then touch only atomics on the hot path. Snapshots use
//! `BTreeMap` so exposition order is deterministic.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::json::Value;
use crate::metrics::{bucket_bound, bucket_index, Counter, Gauge, Histogram, NUM_BUCKETS};

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry of named metrics handing out shared handles.
///
/// Metric names are dotted paths (`server.lane.hamming.depth`); the
/// Prometheus exposition rewrites dots to underscores. Registering the
/// same name twice returns the same underlying metric, so independent
/// layers can share a series without coordination.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Gets or creates the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Gets or creates the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Copies every registered metric into a point-in-time
    /// [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().unwrap();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| {
                    (
                        k.clone(),
                        HistogramSnapshot::from_buckets(v.bucket_counts(), v.sum()),
                    )
                })
                .collect(),
        }
    }
}

/// A copied-out histogram: per-bucket counts plus derived totals and
/// nearest-rank percentiles (reported as the landing bucket's upper
/// bound, a ≤ 2× overestimate by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, index = [`crate::bucket_index`].
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Builds a snapshot (count and percentiles derived) from raw
    /// bucket counts and the value sum.
    pub fn from_buckets(buckets: [u64; NUM_BUCKETS], sum: u64) -> Self {
        let count: u64 = buckets.iter().sum();
        let pct = |p: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut cum = 0u64;
            for (i, &c) in buckets.iter().enumerate() {
                cum += c;
                if cum >= rank {
                    return bucket_bound(i);
                }
            }
            bucket_bound(NUM_BUCKETS - 1)
        };
        Self {
            buckets: buckets.to_vec(),
            count,
            sum,
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn delta(&self, earlier: Option<&HistogramSnapshot>) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            let now = self.buckets.get(i).copied().unwrap_or(0);
            let was = earlier.and_then(|e| e.buckets.get(i)).copied().unwrap_or(0);
            *b = now.saturating_sub(was);
        }
        let sum = self.sum.saturating_sub(earlier.map(|e| e.sum).unwrap_or(0));
        HistogramSnapshot::from_buckets(buckets, sum)
    }
}

/// A point-in-time copy of a registry: counters, gauges, and derived
/// histogram summaries, all name-sorted.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge levels by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// The change since `earlier`: counters and histogram buckets
    /// subtract (saturating, so a restarted peer reads as its absolute
    /// values), gauges keep this snapshot's instantaneous level, and
    /// histogram percentiles are recomputed over the delta buckets —
    /// i.e. the percentiles of *this interval's* observations.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, &v)| {
                    (
                        k.clone(),
                        v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0)),
                    )
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.delta(earlier.histograms.get(k))))
                .collect(),
        }
    }

    /// JSON exposition: `{"counters": {...}, "gauges": {...},
    /// "histograms": {name: {count, sum, p50, p95, p99, buckets:
    /// {bound: n, ...}}}}`. Bucket maps are sparse (non-zero buckets
    /// only, keyed by the bucket's inclusive upper bound).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(
            &mut out,
            self.counters.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges.iter().map(|(k, v)| (k, v.to_string())),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let mut buckets = String::from("{");
                let mut first = true;
                for (i, &c) in h.buckets.iter().enumerate() {
                    if c == 0 {
                        continue;
                    }
                    if !first {
                        buckets.push_str(", ");
                    }
                    first = false;
                    buckets.push_str(&format!("\"{}\": {}", bucket_bound(i), c));
                }
                buckets.push('}');
                (
                    k,
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}, \"buckets\": {}}}",
                        h.count, h.sum, h.p50, h.p95, h.p99, buckets
                    ),
                )
            }),
        );
        out.push_str("}\n}");
        out
    }

    /// Rebuilds a snapshot from its [`Snapshot::to_json`] exposition
    /// (a parsed `{"counters", "gauges", "histograms"}` object). The
    /// sparse bucket map keys are bucket upper bounds, which map back
    /// to their bucket index exactly, so a parse → delta round trip
    /// over the wire is lossless. This is what lets `repro stats
    /// --watch` reuse [`Snapshot::delta`] on remote snapshots.
    ///
    /// Returns `None` if the document does not have the snapshot
    /// shape.
    pub fn from_json(doc: &Value) -> Option<Snapshot> {
        let mut snap = Snapshot::default();
        for (name, v) in doc.get("counters")?.entries()? {
            snap.counters.insert(name.clone(), v.as_u64()?);
        }
        for (name, v) in doc.get("gauges")?.entries()? {
            snap.gauges.insert(name.clone(), v.as_i64()?);
        }
        for (name, h) in doc.get("histograms")?.entries()? {
            let mut buckets = [0u64; NUM_BUCKETS];
            for (bound, count) in h.get("buckets")?.entries()? {
                let bound: u64 = bound.parse().ok()?;
                buckets[bucket_index(bound)] = count.as_u64()?;
            }
            snap.histograms.insert(
                name.clone(),
                HistogramSnapshot::from_buckets(buckets, h.get("sum")?.as_u64()?),
            );
        }
        Some(snap)
    }

    /// Prometheus-style text exposition: dots in names become
    /// underscores; histograms expand to `_bucket{le="..."}`
    /// cumulative series plus `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = promname(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = promname(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let n = promname(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cum = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cum += c;
                out.push_str(&format!("{n}_bucket{{le=\"{}\"}} {cum}\n", bucket_bound(i)));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }
}

fn promname(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn push_map<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {v}", crate::json::escape(k)));
    }
    if !first {
        out.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_shares_handles_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        assert_eq!(reg.snapshot().counters["x"], 3);
    }

    #[test]
    fn snapshot_percentiles_land_on_bucket_bounds() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        // 90 fast observations at 3, 10 slow at 1000.
        h.record_n(3, 90);
        h.record_n(1000, 10);
        let s = reg.snapshot();
        let hs = &s.histograms["lat"];
        assert_eq!(hs.count, 100);
        assert_eq!(hs.p50, 3); // bucket [2,3]
        assert_eq!(hs.p95, 1023); // bucket [512,1023]
        assert_eq!(hs.p99, 1023);
    }

    #[test]
    fn delta_subtracts_counters_and_recomputes_percentiles() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("n");
        let g = reg.gauge("depth");
        let h = reg.histogram("lat");
        c.add(5);
        g.set(7);
        h.record_n(2, 10);
        let before = reg.snapshot();
        c.add(3);
        g.set(1);
        h.record_n(4096, 4);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counters["n"], 3);
        assert_eq!(d.gauges["depth"], 1); // gauges keep the latest level
        assert_eq!(d.histograms["lat"].count, 4);
        assert_eq!(d.histograms["lat"].p50, 8191); // only the new observations
    }

    #[test]
    fn delta_against_empty_baseline_is_the_absolute_snapshot() {
        // First-snapshot case: no earlier snapshot exists yet, so the
        // caller deltas against `Snapshot::default()` and must read
        // back the absolute values unchanged.
        let reg = MetricsRegistry::new();
        reg.counter("n").add(9);
        reg.gauge("depth").set(-2);
        reg.histogram("lat").record_n(5, 3);
        let s = reg.snapshot();
        let d = s.delta(&Snapshot::default());
        assert_eq!(d, s);
    }

    #[test]
    fn metrics_appearing_between_snapshots_delta_from_zero() {
        let reg = MetricsRegistry::new();
        reg.counter("old").add(1);
        let before = reg.snapshot();
        // Registered only after the first snapshot: the delta must
        // treat the missing earlier value as zero, not drop the
        // series.
        reg.counter("new").add(4);
        reg.histogram("new.lat").record(100);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counters["old"], 0);
        assert_eq!(d.counters["new"], 4);
        assert_eq!(d.histograms["new.lat"].count, 1);
        assert_eq!(d.histograms["new.lat"].p50, 127);
    }

    #[test]
    fn empty_delta_has_zero_percentiles_not_stale_ones() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        h.record_n(1 << 20, 50);
        let before = reg.snapshot();
        // Nothing observed in the interval: count, sum, and every
        // percentile must be 0 — not the lifetime percentiles.
        let d = reg.snapshot().delta(&before);
        let hd = &d.histograms["lat"];
        assert_eq!(hd.count, 0);
        assert_eq!(hd.sum, 0);
        assert_eq!((hd.p50, hd.p95, hd.p99), (0, 0, 0));
        assert!(hd.buckets.iter().all(|&b| b == 0));
    }

    #[test]
    fn sparse_bucket_deltas_subtract_per_bucket() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        // Two widely separated buckets before...
        h.record_n(3, 10);
        h.record_n(1 << 30, 2);
        let before = reg.snapshot();
        // ...and growth in one old bucket plus one brand-new bucket.
        h.record_n(3, 5);
        h.record_n(60_000, 7);
        let d = reg.snapshot().delta(&before);
        let hd = &d.histograms["lat"];
        assert_eq!(hd.count, 12);
        assert_eq!(hd.buckets[bucket_index(3)], 5);
        assert_eq!(hd.buckets[bucket_index(60_000)], 7);
        assert_eq!(hd.buckets[bucket_index(1 << 30)], 0, "unchanged bucket");
        // Percentiles reflect only the interval's observations.
        assert_eq!(hd.p50, bucket_bound(bucket_index(60_000)));
    }

    #[test]
    fn snapshot_round_trips_through_json_exposition() {
        let reg = MetricsRegistry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(-4);
        let h = reg.histogram("lat");
        h.record_n(3, 9);
        h.record_n(12_345, 2);
        let s = reg.snapshot();
        let doc = crate::json::parse(&s.to_json()).expect("valid JSON");
        let back = Snapshot::from_json(&doc).expect("snapshot shape");
        assert_eq!(back, s);
        // And the rebuilt snapshot deltas cleanly against the
        // original (everything cancels).
        let d = back.delta(&s);
        assert!(d.counters.values().all(|&v| v == 0));
        assert!(d.histograms.values().all(|h| h.count == 0));
        // Non-snapshot documents are rejected, not misread.
        assert!(Snapshot::from_json(&Value::Obj(vec![])).is_none());
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(12);
        reg.gauge("g").set(-3);
        reg.histogram("h").record(100);
        let s = reg.snapshot();
        let v = crate::json::parse(&s.to_json()).expect("snapshot JSON parses");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.b"))
                .and_then(|x| x.as_u64()),
            Some(12)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|c| c.get("g"))
                .and_then(|x| x.as_i64()),
            Some(-3)
        );
        let h = v.get("histograms").and_then(|c| c.get("h")).unwrap();
        assert_eq!(h.get("count").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(h.get("p50").and_then(|x| x.as_u64()), Some(127));
    }

    #[test]
    fn prometheus_exposition_is_well_formed() {
        let reg = MetricsRegistry::new();
        reg.counter("server.errors").inc();
        reg.histogram("lat.us").record(5);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE server_errors counter\nserver_errors 1\n"));
        assert!(text.contains("lat_us_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("lat_us_count 1\n"));
    }
}
