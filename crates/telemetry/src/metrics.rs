//! The atomic metric primitives: [`Counter`], [`Gauge`], and the
//! log2-bucketed [`Histogram`].
//!
//! All operations use relaxed atomics — metrics are statistical, not
//! synchronization points — so the hot-path cost is one or two
//! uncontended atomic RMWs.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter (saturating at `u64::MAX` is not
    /// required in practice; wrapping add is fine for a counter that
    /// would take centuries to wrap).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (queue depth, busy workers). Signed so a
/// transient dec-before-inc interleaving cannot wrap to 2^64.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the level by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements the level by one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Subtracts `n` from the level.
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Sets the level to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one exact-zero bucket plus one per
/// possible bit length of a `u64` value.
pub const NUM_BUCKETS: usize = 65;

/// The bucket index a value lands in: 0 for 0, else the value's bit
/// length (so bucket `i ≥ 1` covers `[2^(i-1), 2^i - 1]`).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `i` (the value reported for
/// percentiles that land in the bucket): 0 for bucket 0, `2^i - 1`
/// otherwise, saturating at `u64::MAX` for the top bucket.
pub fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        u64::MAX >> (64 - i.min(64))
    }
}

/// A log2-bucketed value recorder with a total count and sum.
///
/// Bucket boundaries are powers of two, so recording needs only a
/// `leading_zeros` and two relaxed atomic adds; percentiles are
/// derived at snapshot time as the upper bound of the bucket the
/// nearest-rank falls in (≤ 2× overestimate by construction, plenty
/// for latency tails).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation of `value`.
    pub fn record(&self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value` (used when a batch of `n`
    /// equal-cost items is accounted in one call).
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(value)].fetch_add(n, Ordering::Relaxed);
        self.count.fetch_add(n, Ordering::Relaxed);
        // The sum saturates rather than wrapping (a wrapped sum would
        // silently corrupt derived means): CAS loop, still lock-free.
        let add = value.saturating_mul(n);
        let mut cur = self.sum.load(Ordering::Relaxed);
        while let Err(actual) = self.sum.compare_exchange_weak(
            cur,
            cur.saturating_add(add),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            cur = actual;
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Copies the per-bucket counts out (index = [`bucket_index`]).
    pub fn bucket_counts(&self) -> [u64; NUM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Zero gets its own exact bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_bound(0), 0);
        // Exact powers of two open a new bucket; one less closes the
        // previous one.
        for i in 0..63usize {
            let p = 1u64 << i;
            assert_eq!(bucket_index(p), i + 1, "2^{i}");
            if p > 1 {
                assert_eq!(bucket_index(p - 1), i, "2^{i} - 1");
            }
            assert_eq!(
                bucket_bound(i + 1),
                (p - 1) + p,
                "bound of bucket {}",
                i + 1
            );
        }
        // Saturating top bucket.
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
        assert_eq!(bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn histogram_records_count_sum_and_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record_n(1000, 4);
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 6 + 4000);
        let b = h.bucket_counts();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2, 3
        assert_eq!(b[10], 4); // 1000 ∈ [512, 1023]
        assert_eq!(b.iter().sum::<u64>(), 8);
    }

    #[test]
    fn histogram_saturates_at_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        // The sum saturates instead of wrapping.
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.bucket_counts()[64], 2);
    }

    #[test]
    fn gauge_can_go_transiently_negative() {
        let g = Gauge::new();
        g.dec();
        assert_eq!(g.get(), -1);
        g.inc();
        g.inc();
        assert_eq!(g.get(), 1);
        g.set(42);
        assert_eq!(g.get(), 42);
        g.sub(2);
        assert_eq!(g.get(), 40);
    }
}
