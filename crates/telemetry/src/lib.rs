//! # pigeonring-telemetry
//!
//! Dependency-free runtime telemetry for the pigeonring serving stack.
//!
//! The paper's argument is about *where candidates die* — how many
//! pairs survive each pigeonring chain stage before verification — so
//! the serving layers need per-stage counters and tail-latency
//! histograms that can be read off a **live** process, not
//! reconstructed from offline bench artifacts. This crate provides the
//! primitives and stays `std`-only (the workspace builds without
//! registry access):
//!
//! * [`Counter`] / [`Gauge`] — lock-free atomics for monotonic event
//!   counts and instantaneous levels (queue depths, busy workers).
//! * [`Histogram`] — log2-bucketed value recorder (65 buckets: an
//!   exact zero bucket plus one per bit length) with derived
//!   nearest-rank p50/p95/p99. Recording is two relaxed atomic adds;
//!   no locks on the hot path.
//! * [`MetricsRegistry`] — name → metric map handing out cheap
//!   `Arc` handles. Instrumented code resolves its handles once and
//!   then touches only atomics.
//! * [`Snapshot`] — a point-in-time copy with [`Snapshot::delta`]
//!   (for before/after accounting around a load run), JSON exposition
//!   ([`Snapshot::to_json`]) and Prometheus-style text exposition
//!   ([`Snapshot::to_prometheus`]).
//! * [`json`] — a minimal JSON parser/pretty-printer so clients (the
//!   `repro stats` subcommand, the loadgen delta recorder) can read
//!   snapshots back without serde.
//! * [`percentile`] — the nearest-rank percentile helper shared with
//!   the service-layer sweep driver (moved here so histograms and the
//!   sweep use one tested implementation).
//! * [`trace`] — span-based per-request tracing: a [`TraceCollector`]
//!   with 1/N head sampling and a bounded span ring, [`Span`] trees
//!   with parent/child links, and Chrome trace-event export. Metrics
//!   say how the server is doing; traces say why *one* query was
//!   slow.

pub mod json;
pub mod metrics;
pub mod registry;
pub mod trace;

pub use metrics::{bucket_bound, bucket_index, Counter, Gauge, Histogram, NUM_BUCKETS};
pub use registry::{HistogramSnapshot, MetricsRegistry, Snapshot};
pub use trace::{Span, SpanHandle, TraceCollector};

/// Nearest-rank percentile of an ascending-sorted slice; `p` in
/// [0, 100]. Returns 0.0 on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }
}
