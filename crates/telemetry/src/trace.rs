//! Span-based per-request tracing.
//!
//! PR 7's metrics answer "how is the server doing"; this module
//! answers "why was *this* query slow". A sampled request gets a
//! **trace**: a tree of spans — monotonic-clock intervals with
//! parent/child links — covering queue wait, dispatch, planning, the
//! worker-pool fan-out, per-shard execution, and one zero-duration
//! child span per filter-chain stage carrying that stage's candidate
//! count (the paper's per-stage pruning power, figs. 5–8, per
//! request instead of per run).
//!
//! Design constraints, in order:
//!
//! * **Near-zero cost when disabled.** The sampling decision is one
//!   relaxed atomic fetch-add on admission; untraced requests never
//!   allocate, never lock, and never construct a span. The CI bench
//!   gate holds the disabled path under 1% overhead.
//! * **No per-span locking when enabled.** Spans are buffered in
//!   plain `Vec`s owned by the emitting thread's stack frame (the
//!   dispatcher batch, the worker-pool job) and drained into the
//!   bounded central ring with a single lock acquisition per batch
//!   via [`TraceCollector::extend`].
//! * **Bounded memory.** The ring holds at most `capacity` spans;
//!   older spans are evicted (and counted) as new ones arrive. Traces
//!   of queries that crossed the slow-query threshold can be
//!   [`pinned`](TraceCollector::pin) so eviction cannot erase exactly
//!   the traces an operator most wants to read — that is the
//!   always-keep-on-slow coupling to the slow-query ring.
//!
//! Timestamps are microseconds since the collector's creation
//! (`Instant`-based, so monotonic and immune to wall-clock steps);
//! span ids are allocated from one process-wide counter so a parent
//! link is valid across threads. Span id 0 is reserved to mean "no
//! parent" (a root span).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::json::Value;

/// Default span-ring capacity (`serve --trace-buffer`).
pub const DEFAULT_TRACE_BUFFER: usize = 4096;

/// How many slow traces the pinned store retains before the oldest
/// pinned trace is dropped.
const MAX_PINNED_TRACES: usize = 16;

/// Span kinds, one per instrumented layer. Stable strings: they are
/// the `kind` field of the exported JSON and the `cat` field of the
/// Chrome trace events.
pub mod kind {
    /// Root span of a traced request (name = domain).
    pub const QUERY: &str = "query";
    /// Admission → dispatcher pop of the request's lane entry.
    pub const QUEUE_WAIT: &str = "queue_wait";
    /// One param-group execution inside a dispatcher batch.
    pub const DISPATCH: &str = "dispatch";
    /// Plan-once phase of a group (dictionary lookups, signature
    /// enumeration).
    pub const PLAN: &str = "plan";
    /// Worker-pool fan-out window: first submit → last shard
    /// collected.
    pub const POOL: &str = "pool";
    /// One shard's execution of the group, measured on the worker.
    pub const SHARD: &str = "shard";
    /// Zero-duration stage marker; name = the engine's `MergeStats`
    /// field, `count` tag = the merged per-query value.
    pub const STAGE: &str = "stage";
}

/// A finished span. Plain data; built on the emitting thread and
/// moved into the collector with [`TraceCollector::extend`].
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// Unique (process-wide) span id, never 0.
    pub id: u64,
    /// Parent span id; 0 for a trace's root span.
    pub parent: u64,
    /// Layer that emitted the span (see [`kind`]).
    pub kind: &'static str,
    /// Detail within the kind (domain for `query`, stage field for
    /// `stage`); empty when the kind says it all.
    pub name: &'static str,
    /// Microseconds since the collector's epoch.
    pub start_us: u64,
    /// Span duration in microseconds (0 for instant markers).
    pub dur_us: u64,
    /// Numeric annotations (shard index, batch size, stage counts…).
    pub tags: Vec<(&'static str, u64)>,
}

impl Span {
    fn to_json(&self) -> Value {
        let mut entries = vec![
            ("id".to_string(), Value::Num(self.id as f64)),
            ("parent".to_string(), Value::Num(self.parent as f64)),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
            ("name".to_string(), Value::Str(self.name.to_string())),
            ("start_us".to_string(), Value::Num(self.start_us as f64)),
            ("dur_us".to_string(), Value::Num(self.dur_us as f64)),
        ];
        if !self.tags.is_empty() {
            let tags = self
                .tags
                .iter()
                .map(|(k, v)| (k.to_string(), Value::Num(*v as f64)))
                .collect();
            entries.push(("tags".to_string(), Value::Obj(tags)));
        }
        Value::Obj(entries)
    }
}

/// An open span: the identifiers plus the start timestamp. `Copy`, so
/// it can be carried through queues and closures freely; nothing is
/// recorded until [`TraceCollector::finish`] turns it into a [`Span`].
#[derive(Debug, Clone, Copy)]
pub struct SpanHandle {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub id: u64,
    /// Parent span id (0 = root).
    pub parent: u64,
    /// Start timestamp, µs since the collector epoch.
    pub start_us: u64,
}

struct Ring {
    spans: VecDeque<Span>,
    /// Spans of pinned (slow) traces, exempt from ring eviction.
    pinned: VecDeque<Span>,
    /// Pin order, oldest first; bounds the pinned store.
    pinned_order: VecDeque<u64>,
    dropped: u64,
}

/// The process-wide trace sink: sampling decisions, span-id
/// allocation, and the bounded ring of recent spans.
pub struct TraceCollector {
    epoch: Instant,
    sample_every: u64,
    admitted: AtomicU64,
    next_trace: AtomicU64,
    next_span: AtomicU64,
    capacity: usize,
    inner: Mutex<Ring>,
}

impl TraceCollector {
    /// A collector sampling one request in `sample_every` (0 disables
    /// head sampling; EXPLAIN-forced traces still work) retaining at
    /// most `capacity` spans.
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        TraceCollector {
            epoch: Instant::now(),
            sample_every,
            admitted: AtomicU64::new(0),
            next_trace: AtomicU64::new(1),
            next_span: AtomicU64::new(1),
            capacity: capacity.max(1),
            inner: Mutex::new(Ring {
                spans: VecDeque::new(),
                pinned: VecDeque::new(),
                pinned_order: VecDeque::new(),
                dropped: 0,
            }),
        }
    }

    /// The configured head-sampling rate (0 = disabled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Microseconds since the collector was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Head-sampling decision for a newly admitted request. Returns
    /// the open root span for sampled requests. `force` (the EXPLAIN
    /// flag) traces regardless of the sampling rate. The disabled,
    /// unforced path is a single relaxed atomic add.
    pub fn sample(&self, force: bool) -> Option<SpanHandle> {
        if !force {
            if self.sample_every == 0 {
                return None;
            }
            let n = self.admitted.fetch_add(1, Ordering::Relaxed);
            if n % self.sample_every != 0 {
                return None;
            }
        }
        let trace_id = self.next_trace.fetch_add(1, Ordering::Relaxed);
        Some(SpanHandle {
            trace_id,
            id: self.next_span.fetch_add(1, Ordering::Relaxed),
            parent: 0,
            start_us: self.now_us(),
        })
    }

    /// Opens a child span under `parent`, starting now.
    pub fn child(&self, parent: &SpanHandle) -> SpanHandle {
        self.child_of(parent.trace_id, parent.id)
    }

    /// Opens a child span from raw ids (for layers that carry
    /// `(trace_id, parent)` pairs instead of handles).
    pub fn child_of(&self, trace_id: u64, parent: u64) -> SpanHandle {
        SpanHandle {
            trace_id,
            id: self.next_span.fetch_add(1, Ordering::Relaxed),
            parent,
            start_us: self.now_us(),
        }
    }

    /// Closes an open span: duration = now − start. The result still
    /// has to be handed to [`extend`](Self::extend).
    pub fn finish(
        &self,
        h: SpanHandle,
        kind: &'static str,
        name: &'static str,
        tags: Vec<(&'static str, u64)>,
    ) -> Span {
        Span {
            trace_id: h.trace_id,
            id: h.id,
            parent: h.parent,
            kind,
            name,
            start_us: h.start_us,
            dur_us: self.now_us().saturating_sub(h.start_us),
            tags,
        }
    }

    /// A zero-duration marker span (stage counts), stamped now.
    pub fn instant(
        &self,
        trace_id: u64,
        parent: u64,
        kind: &'static str,
        name: &'static str,
        tags: Vec<(&'static str, u64)>,
    ) -> Span {
        Span {
            trace_id,
            id: self.next_span.fetch_add(1, Ordering::Relaxed),
            parent,
            kind,
            name,
            start_us: self.now_us(),
            dur_us: 0,
            tags,
        }
    }

    /// Drains a thread-local span buffer into the ring: one lock
    /// acquisition for the whole batch. Evicts oldest spans (counted
    /// in `dropped_spans`) once the ring exceeds its capacity.
    pub fn extend(&self, buf: Vec<Span>) {
        if buf.is_empty() {
            return;
        }
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for span in buf {
            ring.spans.push_back(span);
        }
        while ring.spans.len() > self.capacity {
            ring.spans.pop_front();
            ring.dropped += 1;
        }
    }

    /// Pins a trace: copies its spans into the pinned store, which
    /// ring eviction cannot touch (bounded by dropping the *oldest
    /// pinned trace* past [`MAX_PINNED_TRACES`]). Called when a traced
    /// query crosses the slow-query threshold, so slow-query log
    /// entries always have their trace to link to.
    pub fn pin(&self, trace_id: u64) {
        let mut ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if ring.pinned_order.contains(&trace_id) {
            return;
        }
        let spans: Vec<Span> = ring
            .spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .cloned()
            .collect();
        if spans.is_empty() {
            return;
        }
        ring.pinned.extend(spans);
        ring.pinned_order.push_back(trace_id);
        while ring.pinned_order.len() > MAX_PINNED_TRACES {
            let evict = ring.pinned_order.pop_front().expect("non-empty");
            ring.pinned.retain(|s| s.trace_id != evict);
        }
    }

    /// The per-stage candidate counts recorded for `trace_id` (from
    /// its `stage` marker spans), for embedding in slow-query log
    /// entries. Empty if the trace is gone or had no stage spans.
    pub fn stage_breakdown(&self, trace_id: u64) -> Vec<(&'static str, u64)> {
        let ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for span in ring.pinned.iter().chain(ring.spans.iter()) {
            if span.trace_id == trace_id && span.kind == kind::STAGE {
                if let Some((_, count)) = span.tags.iter().find(|(k, _)| *k == "count") {
                    if !out.iter().any(|(n, _)| *n == span.name) {
                        out.push((span.name, *count));
                    }
                }
            }
        }
        out
    }

    /// One trace as JSON: `{"trace_id": …, "spans": [...]}` with spans
    /// in start order. Used by the EXPLAIN reply.
    pub fn export_trace(&self, trace_id: u64) -> Value {
        let ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let spans = collect_trace(&ring, trace_id);
        trace_to_json(trace_id, &spans)
    }

    /// Every trace currently retained (pinned slow traces first, then
    /// the ring's, oldest first), as one JSON document:
    /// `{"sample_every", "dropped_spans", "traces": [...]}`. This is
    /// the `Request::Trace` payload.
    pub fn export_recent(&self) -> Value {
        let ring = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut order: Vec<u64> = Vec::new();
        for id in ring
            .pinned_order
            .iter()
            .chain(ring.spans.iter().map(|s| &s.trace_id))
        {
            if !order.contains(id) {
                order.push(*id);
            }
        }
        let traces: Vec<Value> = order
            .iter()
            .map(|&id| trace_to_json(id, &collect_trace(&ring, id)))
            .collect();
        Value::Obj(vec![
            (
                "sample_every".to_string(),
                Value::Num(self.sample_every as f64),
            ),
            ("dropped_spans".to_string(), Value::Num(ring.dropped as f64)),
            ("traces".to_string(), Value::Arr(traces)),
        ])
    }
}

fn collect_trace(ring: &Ring, trace_id: u64) -> Vec<Span> {
    let mut spans: Vec<Span> = Vec::new();
    for span in ring.pinned.iter().chain(ring.spans.iter()) {
        if span.trace_id == trace_id && !spans.iter().any(|s| s.id == span.id) {
            spans.push(span.clone());
        }
    }
    spans.sort_by_key(|s| (s.start_us, s.id));
    spans
}

fn trace_to_json(trace_id: u64, spans: &[Span]) -> Value {
    Value::Obj(vec![
        ("trace_id".to_string(), Value::Num(trace_id as f64)),
        (
            "spans".to_string(),
            Value::Arr(spans.iter().map(Span::to_json).collect()),
        ),
    ])
}

/// Per-batch trace context the dispatcher hands to the execution
/// handler: which queries (by emit slot) are traced, and under which
/// `(trace_id, root span id)`. [`TraceBatch::untraced`] is the
/// zero-cost common case.
pub struct TraceBatch {
    collector: Option<Arc<TraceCollector>>,
    targets: Vec<Option<(u64, u64)>>,
}

impl TraceBatch {
    /// A batch with no traced queries (handler fast path).
    pub fn untraced(n: usize) -> Self {
        TraceBatch {
            collector: None,
            targets: vec![None; n],
        }
    }

    /// A batch with per-slot targets (`None` = untraced slot).
    pub fn new(collector: Arc<TraceCollector>, targets: Vec<Option<(u64, u64)>>) -> Self {
        let collector = targets.iter().any(Option::is_some).then_some(collector);
        TraceBatch { collector, targets }
    }

    /// The collector, if any slot is traced.
    pub fn collector(&self) -> Option<&Arc<TraceCollector>> {
        self.collector.as_ref()
    }

    /// `(trace_id, root span id)` for a slot, if that query is traced.
    pub fn target(&self, slot: usize) -> Option<(u64, u64)> {
        self.collector.as_ref()?;
        self.targets.get(slot).copied().flatten()
    }
}

/// Trace context for one sharded batch execution: every traced query
/// in the group, with the span each layer should parent its children
/// under. Wrapped in an `Arc` so worker-pool job closures can carry
/// it.
pub struct ShardTrace {
    /// The sink spans are drained into.
    pub collector: Arc<TraceCollector>,
    /// `(trace_id, parent span id)` per traced query in the group.
    pub targets: Vec<(u64, u64)>,
}

/// Converts an exported trace document (the [`export_recent`]
/// shape, or anything with a `"traces"` array) into Chrome
/// trace-event JSON loadable in Perfetto / `chrome://tracing`:
/// `{"traceEvents": [...]}` with one complete (`"ph": "X"`) event per
/// span and one row (tid) per trace.
///
/// [`export_recent`]: TraceCollector::export_recent
pub fn chrome_trace(doc: &Value) -> Result<String, String> {
    let traces = match doc.get("traces") {
        Some(Value::Arr(items)) => items.as_slice(),
        _ => return Err("document has no \"traces\" array".to_string()),
    };
    let mut events: Vec<Value> = Vec::new();
    for (ti, trace) in traces.iter().enumerate() {
        let tid = (ti + 1) as f64;
        let trace_id = trace
            .get("trace_id")
            .and_then(Value::as_u64)
            .ok_or("trace entry is missing \"trace_id\"")?;
        let spans = match trace.get("spans") {
            Some(Value::Arr(items)) => items.as_slice(),
            _ => return Err("trace entry has no \"spans\" array".to_string()),
        };
        // A metadata event names the row after the trace's root span.
        let root_name = spans
            .iter()
            .find(|s| s.get("parent").and_then(Value::as_u64) == Some(0))
            .and_then(|s| s.get("name").and_then(Value::as_str))
            .unwrap_or("");
        events.push(Value::Obj(vec![
            ("name".to_string(), Value::Str("thread_name".to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::Num(1.0)),
            ("tid".to_string(), Value::Num(tid)),
            (
                "args".to_string(),
                Value::Obj(vec![(
                    "name".to_string(),
                    Value::Str(format!("trace {trace_id} ({root_name})")),
                )]),
            ),
        ]));
        for span in spans {
            let field = |key: &str| {
                span.get(key)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("span is missing numeric \"{key}\""))
            };
            let kind = span
                .get("kind")
                .and_then(Value::as_str)
                .ok_or("span is missing \"kind\"")?;
            let name = span.get("name").and_then(Value::as_str).unwrap_or("");
            let display = if name.is_empty() {
                kind.to_string()
            } else {
                format!("{kind}:{name}")
            };
            let mut args = vec![
                ("trace_id".to_string(), Value::Num(trace_id as f64)),
                ("span_id".to_string(), Value::Num(field("id")? as f64)),
                ("parent".to_string(), Value::Num(field("parent")? as f64)),
            ];
            if let Some(Value::Obj(tags)) = span.get("tags") {
                args.extend(tags.iter().cloned());
            }
            events.push(Value::Obj(vec![
                ("name".to_string(), Value::Str(display)),
                ("cat".to_string(), Value::Str(kind.to_string())),
                ("ph".to_string(), Value::Str("X".to_string())),
                ("ts".to_string(), Value::Num(field("start_us")? as f64)),
                ("dur".to_string(), Value::Num(field("dur_us")? as f64)),
                ("pid".to_string(), Value::Num(1.0)),
                ("tid".to_string(), Value::Num(tid)),
                ("args".to_string(), Value::Obj(args)),
            ]));
        }
    }
    Ok(Value::Obj(vec![("traceEvents".to_string(), Value::Arr(events))]).pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn head_sampling_picks_one_in_n() {
        let c = TraceCollector::new(3, 64);
        let sampled: Vec<bool> = (0..9).map(|_| c.sample(false).is_some()).collect();
        assert_eq!(
            sampled,
            vec![true, false, false, true, false, false, true, false, false]
        );
        // Disabled sampling: nothing sampled, but force still traces.
        let off = TraceCollector::new(0, 64);
        assert!(off.sample(false).is_none());
        assert!(off.sample(true).is_some());
    }

    #[test]
    fn spans_nest_and_export_in_start_order() {
        let c = TraceCollector::new(1, 64);
        let root = c.sample(false).expect("sampled");
        let child = c.child(&root);
        let buf = vec![
            c.finish(child, kind::DISPATCH, "", vec![("batch", 4)]),
            c.instant(
                root.trace_id,
                root.id,
                kind::STAGE,
                "candidates",
                vec![("count", 17)],
            ),
            c.finish(root, kind::QUERY, "hamming", vec![]),
        ];
        c.extend(buf);

        let doc = c.export_trace(root.trace_id);
        let spans = match doc.get("spans") {
            Some(Value::Arr(items)) => items.clone(),
            other => panic!("spans array missing: {other:?}"),
        };
        assert_eq!(spans.len(), 3);
        // Every parent id exists in the trace (or is 0 for the root).
        let ids: Vec<u64> = spans
            .iter()
            .map(|s| s.get("id").and_then(Value::as_u64).unwrap())
            .collect();
        for s in &spans {
            let parent = s.get("parent").and_then(Value::as_u64).unwrap();
            assert!(parent == 0 || ids.contains(&parent), "dangling parent");
        }
        // The root starts first.
        assert_eq!(
            spans[0].get("kind").and_then(Value::as_str),
            Some(kind::QUERY)
        );
        assert_eq!(
            c.stage_breakdown(root.trace_id),
            vec![("candidates", 17u64)]
        );
    }

    #[test]
    fn ring_is_bounded_and_pins_survive_eviction() {
        let c = TraceCollector::new(1, 4);
        let old = c.sample(false).expect("sampled");
        c.extend(vec![c.finish(old, kind::QUERY, "editdist", vec![])]);
        c.pin(old.trace_id);
        // Flood the ring far past capacity.
        for _ in 0..10 {
            let h = c.sample(false).expect("sampled");
            c.extend(vec![c.finish(h, kind::QUERY, "setsim", vec![])]);
        }
        let doc = c.export_recent();
        assert!(doc.get("dropped_spans").and_then(Value::as_u64).unwrap() >= 6);
        // The pinned trace is still exported even though the ring
        // evicted its span long ago — and it is listed first.
        let traces = match doc.get("traces") {
            Some(Value::Arr(items)) => items.clone(),
            other => panic!("traces array missing: {other:?}"),
        };
        assert_eq!(traces.len(), 1 + 4, "pinned + ring capacity");
        assert_eq!(
            traces[0].get("trace_id").and_then(Value::as_u64),
            Some(old.trace_id)
        );
    }

    #[test]
    fn chrome_export_is_valid_and_covers_every_span() {
        let c = TraceCollector::new(1, 64);
        let root = c.sample(false).expect("sampled");
        let shard = c.child(&root);
        c.extend(vec![
            c.finish(shard, kind::SHARD, "", vec![("shard", 1)]),
            c.finish(root, kind::QUERY, "graph", vec![]),
        ]);
        let chrome = chrome_trace(&c.export_recent()).expect("converts");
        let doc = json::parse(&chrome).expect("valid JSON");
        let events = match doc.get("traceEvents") {
            Some(Value::Arr(items)) => items.clone(),
            other => panic!("traceEvents missing: {other:?}"),
        };
        // One metadata event + two complete events.
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].get("ph").and_then(Value::as_str), Some("M"));
        for e in &events[1..] {
            assert_eq!(e.get("ph").and_then(Value::as_str), Some("X"));
            assert!(e.get("ts").and_then(Value::as_u64).is_some());
            assert!(e.get("dur").and_then(Value::as_u64).is_some());
        }
        assert_eq!(
            events[2].get("name").and_then(Value::as_str),
            Some("shard"),
            "kind-only spans display their kind"
        );
        // Malformed documents are rejected, not mis-rendered.
        assert!(chrome_trace(&Value::Obj(vec![])).is_err());
    }

    #[test]
    fn trace_batch_routes_targets_by_slot() {
        let c = Arc::new(TraceCollector::new(1, 64));
        let none = TraceBatch::untraced(3);
        assert!(none.collector().is_none());
        assert_eq!(none.target(1), None);

        let batch = TraceBatch::new(Arc::clone(&c), vec![None, Some((7, 42)), None]);
        assert!(batch.collector().is_some());
        assert_eq!(batch.target(0), None);
        assert_eq!(batch.target(1), Some((7, 42)));
        assert_eq!(batch.target(9), None, "out of range is just untraced");

        // All-None targets collapse to the untraced fast path.
        let empty = TraceBatch::new(c, vec![None, None]);
        assert!(empty.collector().is_none());
    }
}
