//! A minimal JSON value model, recursive-descent parser, and pretty
//! printer — just enough for clients to read metric snapshots back
//! (the workspace is dependency-free, so no serde).
//!
//! The parser accepts the JSON this workspace emits (objects, arrays,
//! strings with `\"`/`\\`/`\n`-style escapes and `\uXXXX`, f64
//! numbers, booleans, null) and rejects trailing garbage. Object key
//! order is preserved (keys are kept in a `Vec`), so a parse →
//! pretty-print round trip is stable.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integral values up to 2^53
    /// round-trip exactly, which covers every metric this workspace
    /// emits in practice).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, key order preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if numeric.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The object's entries, if an object.
    pub fn entries(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing
    /// newline-free result.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => out.push_str(&fmt_num(*n)),
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push_str(&pad);
                    out.push_str("  \"");
                    out.push_str(&escape(k));
                    out.push_str("\": ");
                    v.write_pretty(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn fmt_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Escapes a string for embedding in a JSON document (quotes,
/// backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Value::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Value::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        // Surrogates and other unassignable points fall
                        // back to the replacement character.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 character (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        entries.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(entries));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}}"#)
            .expect("parses");
        assert_eq!(
            v.get("a").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.5), Value::Num(-3.0)])
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("x\ny")
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("d")),
            Some(&Value::Bool(true))
        );
        assert_eq!(v.get("b").and_then(|b| b.get("e")), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "{} trailing",
            "nul",
            "1e999",
            r#""unterminated"#,
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn pretty_print_round_trips() {
        let src = r#"{"z": 1, "a": {"k": [true, "s"], "empty": {}}, "arr": []}"#;
        let v = parse(src).unwrap();
        let pretty = v.pretty();
        // Key order is preserved and the pretty form re-parses to the
        // same value.
        assert!(pretty.find("\"z\"").unwrap() < pretty.find("\"a\"").unwrap());
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn escape_handles_controls_and_quotes() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(
            parse(&format!("\"{}\"", escape("a\"b\\c\nd"))).unwrap(),
            Value::Str("a\"b\\c\nd".into())
        );
    }
}
