//! Criterion micro-benchmarks for the hot kernels: chain viability
//! checks (with and without Corollary-2 skipping), popcount part
//! distances, signature enumeration, k-combination signatures, content
//! filter bounds, banded edit-distance verification, set-overlap merges,
//! subgraph embedding, and threshold-pruned GED — plus the
//! scalar-vs-batched-vs-dispatched tier comparison for the vectorized
//! distance kernels.
//!
//! This binary has a custom `main` (not `criterion_main!`): it accepts
//! `--quick` (small sample counts, for the CI `kernel-bench-smoke` job;
//! cargo-bench flags like `--bench` are ignored) and always writes the
//! recorded timings plus a machine fingerprint to
//! `results/BENCH_kernels.json`.

use criterion::{black_box, Criterion};
use pigeonring_core::viability::{
    find_prefix_viable, find_prefix_viable_noskip, Direction, ThresholdScheme,
};
use pigeonring_editdist::content::{char_mask, min_window_bound, window_masks};
use pigeonring_editdist::verify::{
    edit_distance, edit_distance_within, edit_distance_within_banded,
    edit_distance_within_reference,
};
use pigeonring_hamming::index::enumerate_within;
use pigeonring_hamming::{kernels, BitVector};
use pigeonring_service::MachineFingerprint;
use rand::{Rng, SeedableRng};

fn rng() -> rand::rngs::SmallRng {
    rand::rngs::SmallRng::seed_from_u64(0xBEEF)
}

fn bench_chain_check(c: &mut Criterion) {
    let mut r = rng();
    let boxes: Vec<Vec<i64>> = (0..256)
        .map(|_| (0..16).map(|_| r.gen_range(0..8)).collect())
        .collect();
    let scheme = ThresholdScheme::uniform(48i64, 16);
    c.bench_function("chain_check/skip", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for bx in &boxes {
                if find_prefix_viable(black_box(bx), &scheme, Direction::Le, 5).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
    c.bench_function("chain_check/noskip", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for bx in &boxes {
                if find_prefix_viable_noskip(black_box(bx), &scheme, Direction::Le, 5).is_some() {
                    found += 1;
                }
            }
            found
        })
    });
}

fn bench_part_distance(c: &mut Criterion) {
    let mut r = rng();
    let a = BitVector::from_bits((0..256).map(|_| r.gen::<bool>()));
    let b = BitVector::from_bits((0..256).map(|_| r.gen::<bool>()));
    c.bench_function("hamming/full_distance", |bch| {
        bch.iter(|| black_box(&a).distance(black_box(&b)))
    });
    c.bench_function("hamming/part_distance_16", |bch| {
        bch.iter(|| {
            (0..16u32)
                .map(|i| a.part_distance(&b, (i as usize) * 16, (i as usize + 1) * 16))
                .sum::<u32>()
        })
    });
}

fn bench_signature_enumeration(c: &mut Criterion) {
    c.bench_function("hamming/enumerate_r2_w16", |b| {
        b.iter(|| {
            let mut n = 0u64;
            enumerate_within(black_box(0xBEEF), 16, 2, &mut |_, _| n += 1);
            n
        })
    });
    c.bench_function("hamming/enumerate_r4_w16", |b| {
        b.iter(|| {
            let mut n = 0u64;
            enumerate_within(black_box(0xBEEF), 16, 4, &mut |_, _| n += 1);
            n
        })
    });
}

fn bench_content_filter(c: &mut Criterion) {
    let mut r = rng();
    let text: Vec<u8> = (0..101).map(|_| b'a' + r.gen_range(0..26)).collect();
    let masks = window_masks(&text, 6);
    let gram = char_mask(b"ringed");
    c.bench_function("editdist/window_masks_101", |b| {
        b.iter(|| window_masks(black_box(&text), 6))
    });
    c.bench_function("editdist/min_window_bound", |b| {
        b.iter(|| min_window_bound(black_box(gram), &masks, 20, 44))
    });
}

fn bench_verify(c: &mut Criterion) {
    let mut r = rng();
    let a: Vec<u8> = (0..101).map(|_| b'a' + r.gen_range(0..26)).collect();
    let mut bb = a.clone();
    for _ in 0..6 {
        let p = r.gen_range(0..bb.len());
        bb[p] = b'a' + r.gen_range(0..26);
    }
    c.bench_function("editdist/full_dp_101", |bch| {
        bch.iter(|| edit_distance(black_box(&a), black_box(&bb)))
    });
    c.bench_function("editdist/banded_tau6_101", |bch| {
        bch.iter(|| edit_distance_within(black_box(&a), black_box(&bb), 6))
    });
}

fn bench_set_kernels(c: &mut Criterion) {
    use pigeonring_setsim::pkwise::{for_each_combination, signature_hash};
    use pigeonring_setsim::types::{overlap, overlap_at_least};
    let mut r = rng();
    let mut mk = |n: usize| -> Vec<u32> {
        let mut v: Vec<u32> = (0..n).map(|_| r.gen_range(0..5000)).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let a = mk(142);
    let b = mk(142);
    c.bench_function("setsim/overlap_merge_142", |bch| {
        bch.iter(|| overlap(black_box(&a), black_box(&b)))
    });
    c.bench_function("setsim/overlap_at_least_142", |bch| {
        bch.iter(|| overlap_at_least(black_box(&a), black_box(&b), 100))
    });
    let toks: Vec<u32> = (0..11).collect();
    c.bench_function("setsim/combos_11_choose_3", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for_each_combination(black_box(&toks), 3, &mut |combo| {
                acc ^= signature_hash(combo);
            });
            acc
        })
    });
}

fn bench_graph_kernels(c: &mut Criterion) {
    use pigeonring_graph::{ged_within, part_embeds, partition_graph, Graph};
    let mut r = rng();
    let mut mk = |n: usize, labels: u32| -> Graph {
        let mut g = Graph::new((0..n).map(|_| r.gen_range(0..labels)).collect());
        for v in 1..n as u32 {
            let u = r.gen_range(0..v);
            g.add_edge(u, v, r.gen_range(0..3));
        }
        g
    };
    let x = mk(16, 20);
    let q = mk(16, 20);
    let parts = partition_graph(&x, 5);
    c.bench_function("graph/part_embeds_16v", |bch| {
        bch.iter(|| {
            parts
                .iter()
                .filter(|p| part_embeds(black_box(p), black_box(&q)))
                .count()
        })
    });
    c.bench_function("graph/ged_within_tau4_dissimilar", |bch| {
        bch.iter(|| ged_within(black_box(&x), black_box(&q), 4))
    });
    c.bench_function("graph/ged_within_tau4_self", |bch| {
        bch.iter(|| ged_within(black_box(&x), black_box(&x), 4))
    });
}

/// The scalar/batched/dispatch tier comparison for the vectorized
/// distance kernels — the rows the CI `kernel-bench-smoke` job records.
/// "dispatch" is the production entry point: the batched-scalar kernel
/// by default, AVX2 when compiled with `--features simd` on an AVX2
/// host.
fn bench_kernel_tiers(c: &mut Criterion) {
    let mut r = rng();
    // 4096 dims = 64 words: long enough that per-batch structure shows.
    let a = BitVector::from_bits((0..4096).map(|_| r.gen::<bool>()));
    let b = BitVector::from_bits((0..4096).map(|_| r.gen::<bool>()));
    let (aw, bw) = (a.words(), b.words());
    let tau = a.distance(&b); // pass case: every kernel scans all words
    c.bench_function("hamming/distance_within_4096/scalar", |bch| {
        bch.iter(|| kernels::distance_within_scalar(black_box(aw), black_box(bw), tau))
    });
    c.bench_function("hamming/distance_within_4096/batched", |bch| {
        bch.iter(|| kernels::distance_within_batched(black_box(aw), black_box(bw), tau))
    });
    c.bench_function("hamming/distance_within_4096/dispatch", |bch| {
        bch.iter(|| kernels::distance_within(black_box(aw), black_box(bw), tau))
    });
    // Unaligned interior part [67, 4031): masked head/tail words plus a
    // long unmasked interior run.
    c.bench_function("hamming/part_distance_4096/scalar", |bch| {
        bch.iter(|| kernels::part_distance_scalar(black_box(aw), black_box(bw), 67, 4031))
    });
    c.bench_function("hamming/part_distance_4096/batched", |bch| {
        bch.iter(|| kernels::part_distance_batched(black_box(aw), black_box(bw), 67, 4031))
    });
    c.bench_function("hamming/part_distance_4096/dispatch", |bch| {
        bch.iter(|| kernels::part_distance(black_box(aw), black_box(bw), 67, 4031))
    });
    // Banded edit distance at τ = 12 (band width 25: three full 8-lane
    // chunks) over 256-char strings with 9 scattered substitutions.
    let s: Vec<u8> = (0..256).map(|_| b'a' + r.gen_range(0..4)).collect();
    let mut t = s.clone();
    for _ in 0..9 {
        let p = r.gen_range(0..t.len());
        t[p] = b'a' + r.gen_range(0..4);
    }
    c.bench_function("editdist/edit_distance_within_256_tau12/scalar", |bch| {
        bch.iter(|| edit_distance_within_reference(black_box(&s), black_box(&t), 12))
    });
    c.bench_function("editdist/edit_distance_within_256_tau12/batched", |bch| {
        bch.iter(|| edit_distance_within_banded(black_box(&s), black_box(&t), 12))
    });
    c.bench_function("editdist/edit_distance_within_256_tau12/dispatch", |bch| {
        bch.iter(|| edit_distance_within(black_box(&s), black_box(&t), 12))
    });
}

/// The metrics-overhead guard: the µs-scale banded verify kernel runs
/// bare and then with the full per-call telemetry hot path (one counter
/// increment + one histogram record, the same primitives every
/// instrumented layer uses). CI gates the derived
/// `telemetry_overhead_pct` below 2% — instrumentation must stay
/// effectively free relative to real work. 16 calls per iteration keep
/// the measured quantum tens of µs so timer noise doesn't swamp a
/// nanosecond-scale delta.
fn bench_telemetry_overhead(c: &mut Criterion) {
    use pigeonring_telemetry::{Counter, Histogram};
    let mut r = rng();
    let a: Vec<u8> = (0..101).map(|_| b'a' + r.gen_range(0..26)).collect();
    let mut bb = a.clone();
    for _ in 0..6 {
        let p = r.gen_range(0..bb.len());
        bb[p] = b'a' + r.gen_range(0..26);
    }
    const CALLS: usize = 16;
    let queries = Counter::new();
    let latency = Histogram::new();
    // Interleaved A/B/A/B so a background-noise burst cannot land
    // entirely on one variant; the derived overhead uses the fastest
    // sample of each variant (min-of-samples only ever over-counts
    // noise, never the kernel).
    for round in ["r1", "r2"] {
        c.bench_function(format!("telemetry/edit_within_bare/{round}"), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for _ in 0..CALLS {
                    acc += usize::from(
                        edit_distance_within(black_box(&a), black_box(&bb), 6).is_some(),
                    );
                }
                acc
            })
        });
        c.bench_function(
            format!("telemetry/edit_within_instrumented/{round}"),
            |bch| {
                bch.iter(|| {
                    let mut acc = 0usize;
                    for _ in 0..CALLS {
                        let hit = edit_distance_within(black_box(&a), black_box(&bb), 6).is_some();
                        queries.inc();
                        latency.record(acc as u64);
                        acc += usize::from(hit);
                    }
                    acc
                })
            },
        );
    }
    black_box((queries.get(), latency.count()));
}

/// The tracing-overhead guard, same protocol as the telemetry guard:
/// with sampling disabled (`--trace-sample` unset), the only per-query
/// cost the tracing layer adds is one [`TraceCollector::sample`] call
/// at admission — a single branch on the cadence. CI gates the derived
/// `tracing_overhead_pct` below 1%.
fn bench_tracing_overhead(c: &mut Criterion) {
    use pigeonring_telemetry::TraceCollector;
    let mut r = rng();
    let a: Vec<u8> = (0..101).map(|_| b'a' + r.gen_range(0..26)).collect();
    let mut bb = a.clone();
    for _ in 0..6 {
        let p = r.gen_range(0..bb.len());
        bb[p] = b'a' + r.gen_range(0..26);
    }
    const CALLS: usize = 16;
    let collector = TraceCollector::new(0, 64); // sampling disabled
    for round in ["r1", "r2"] {
        c.bench_function(format!("tracing/edit_within_bare/{round}"), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for _ in 0..CALLS {
                    acc += usize::from(
                        edit_distance_within(black_box(&a), black_box(&bb), 6).is_some(),
                    );
                }
                acc
            })
        });
        c.bench_function(format!("tracing/edit_within_sampling_off/{round}"), |bch| {
            bch.iter(|| {
                let mut acc = 0usize;
                for _ in 0..CALLS {
                    let hit = edit_distance_within(black_box(&a), black_box(&bb), 6).is_some();
                    black_box(collector.sample(false));
                    acc += usize::from(hit);
                }
                acc
            })
        });
    }
}

/// Writes the recorded summaries plus the machine fingerprint as the
/// `results/BENCH_kernels.json` artifact (the CI `kernel-bench-smoke`
/// job validates and uploads it). Written relative to the manifest so
/// `cargo bench` finds `results/` regardless of its working directory.
fn write_kernels_json(c: &Criterion, quick: bool) {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/BENCH_kernels.json"
    );
    // The overhead guard: instrumented-over-bare for the banded verify
    // kernel, computed from each variant's fastest sample across its
    // interleaved rounds (minimum-of-samples is robust to scheduling
    // noise on a busy host) and clamped at 0. CI gates this below 2%.
    let min_low = |prefix: &str| {
        c.summaries()
            .iter()
            .filter(|s| s.id.starts_with(prefix))
            .map(|s| s.low_ns)
            .fold(f64::INFINITY, f64::min)
    };
    let overhead_pct_of = |bare: f64, instrumented: f64| {
        if bare.is_finite() && instrumented.is_finite() && bare > 0.0 {
            ((instrumented - bare) / bare * 100.0).max(0.0)
        } else {
            0.0
        }
    };
    let overhead_pct = overhead_pct_of(
        min_low("telemetry/edit_within_bare/"),
        min_low("telemetry/edit_within_instrumented/"),
    );
    // The sampling-disabled tracing hot path; CI gates this below 1%.
    let tracing_pct = overhead_pct_of(
        min_low("tracing/edit_within_bare/"),
        min_low("tracing/edit_within_sampling_off/"),
    );
    let mut out = String::from("{\n\"machine\": ");
    out.push_str(&MachineFingerprint::detect().to_json());
    out.push_str(&format!(
        ",\n\"simd_compiled\": {},\n\"hamming_backend\": \"{}\",\n\"quick\": {},\n\
         \"telemetry_overhead_pct\": {overhead_pct:.3},\n\
         \"tracing_overhead_pct\": {tracing_pct:.3},\n\"rows\": [\n",
        cfg!(feature = "simd"),
        kernels::backend(),
        quick
    ));
    for (i, s) in c.summaries().iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"low_ns\": {:.1}, \"high_ns\": {:.1}}}{}\n",
            s.id,
            s.median_ns,
            s.low_ns,
            s.high_ns,
            if i + 1 < c.summaries().len() { "," } else { "" },
        ));
    }
    out.push_str("]\n}");
    std::fs::write(path, out).expect("write BENCH_kernels.json");
    println!("wrote {path}");
}

fn main() {
    // `cargo bench` appends harness flags like `--bench`; take `--quick`
    // for the CI smoke run and ignore everything else.
    let quick = std::env::args().any(|a| a == "--quick");
    let mut c = if quick {
        Criterion::default().sample_size(5)
    } else {
        Criterion::default()
    };
    bench_chain_check(&mut c);
    bench_part_distance(&mut c);
    bench_signature_enumeration(&mut c);
    bench_content_filter(&mut c);
    bench_verify(&mut c);
    bench_set_kernels(&mut c);
    bench_graph_kernels(&mut c);
    bench_kernel_tiers(&mut c);
    bench_telemetry_overhead(&mut c);
    bench_tracing_overhead(&mut c);
    write_kernels_json(&c, quick);
}
