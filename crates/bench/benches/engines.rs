//! Criterion end-to-end benchmarks: each τ-selection engine against its
//! pigeonhole baseline on small seeded datasets (the full sweeps live in
//! the `repro` binary; these are the regression-tracking versions).

use criterion::{criterion_group, criterion_main, Criterion};
use pigeonring_datagen::{sample_query_ids, GraphConfig, SetConfig, StringConfig, VectorConfig};
use pigeonring_editdist::{GramOrder, QGramCollection, RingEdit};
use pigeonring_graph::RingGraph;
use pigeonring_hamming::{AllocationStrategy, RingHamming};
use pigeonring_setsim::{Collection, RingSetSim, Threshold};

fn bench_hamming(c: &mut Criterion) {
    let data = VectorConfig::gist_like(4000).generate();
    let queries = sample_query_ids(data.len(), 10, 1);
    let mut eng = RingHamming::build(data.clone(), 16, AllocationStrategy::CostModel);
    let mut group = c.benchmark_group("hamming_gist4k_tau48");
    for l in [1usize, 5] {
        group.bench_function(format!("l{l}"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&qid| eng.search(&data[qid].clone(), 48, l).1.results)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_setsim(c: &mut Criterion) {
    let coll = Collection::new(SetConfig::dblp_like(4000).generate());
    let queries = sample_query_ids(coll.len(), 10, 2);
    let mut eng = RingSetSim::build(coll.clone(), Threshold::jaccard(0.8), 5);
    let mut group = c.benchmark_group("setsim_dblp4k_tau0.8");
    for l in [1usize, 2] {
        group.bench_function(format!("l{l}"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&qid| eng.search(coll.record(qid), l).1.results)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_editdist(c: &mut Criterion) {
    let strings = StringConfig::imdb_like(4000).generate();
    let queries = sample_query_ids(strings.len(), 10, 3);
    let coll = QGramCollection::build(strings.clone(), 2, GramOrder::Frequency);
    let mut eng = RingEdit::build(coll, 2);
    let mut group = c.benchmark_group("editdist_imdb4k_tau2");
    for l in [1usize, 3] {
        group.bench_function(format!("l{l}"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&qid| eng.search(&strings[qid].clone(), l).1.results)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let graphs = GraphConfig::aids_like(500).generate();
    let queries = sample_query_ids(graphs.len(), 5, 4);
    let eng = RingGraph::build(graphs.clone(), 4);
    let mut group = c.benchmark_group("graph_aids500_tau4");
    for l in [1usize, 4] {
        group.bench_function(format!("l{l}"), |b| {
            b.iter(|| {
                queries
                    .iter()
                    .map(|&qid| eng.search(&graphs[qid], l).1.results)
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = engines;
    config = Criterion::default().sample_size(10);
    targets = bench_hamming, bench_setsim, bench_editdist, bench_graph
}
criterion_main!(engines);
