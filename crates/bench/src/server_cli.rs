//! The `repro serve` / `repro query` / `repro loadgen` / `repro stats`
//! / `repro trace` / `repro server-smoke` subcommands: the measurable
//! end-to-end path of the `pigeonring-server` network frontend.
//!
//! * `serve` builds the four domain engines ([`EngineSpec`] is
//!   deterministic per scale, so clients at the same scale hold the same
//!   datasets) and answers on a loopback-style TCP port until killed.
//!   `--slow-query-ms` arms the server's slow-query log;
//!   `--metrics-dump PATH` writes the live metrics snapshot to a file
//!   every `--metrics-interval-secs` seconds.
//! * `stats` asks a running server for its live telemetry snapshot
//!   (`Request::Stats`) and pretty-prints it; `--raw` emits the JSON
//!   byte-for-byte for piping into `jq`; `--watch SECS` keeps polling
//!   and prints what *moved* between snapshots (counter deltas and
//!   interval histogram percentiles, via `Snapshot::delta`).
//! * `trace` asks a running server for its recent sampled request
//!   traces (`Request::Trace`); `--raw` dumps the JSON, `--chrome PATH`
//!   writes Chrome trace-event JSON loadable in `chrome://tracing` /
//!   Perfetto. Arm sampling with `serve --trace-sample N`.
//! * `query` drives one domain's (or every domain's) standard query set
//!   through a running server and prints the `result_hash` fingerprint —
//!   comparable across processes and against `repro sweep`-style
//!   in-process runs.
//! * `loadgen` opens `--conns` concurrent connections, each keeping
//!   `--pipeline` requests in flight (wire-v2 pipelining, responses
//!   matched by id), and reports per-domain throughput plus p50/p95/p99
//!   latency into `results/BENCH_server.json`. With `--mix` it runs the
//!   *fairness experiment*: one solo phase per domain (that domain
//!   only) followed by a mixed round-robin phase, recording each
//!   domain's `mixed_over_solo_p50` — the number that shows whether a
//!   slow domain (graph GED) still inflates a fast domain's tail.
//! * `server-smoke` is the CI gate: in one process it starts a server on
//!   an OS-assigned loopback port, diffs every domain's client-observed
//!   `result_hash` against a direct in-process run on the *same*
//!   engines, then runs the mixed-load fairness loadgen for the
//!   artifact. Any hash mismatch is a hard failure.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Instant;

use pigeonring_server::server::Backend;
use pigeonring_server::{
    start, start_with_handler, Client, Domain, DomainQuery, EngineSet, EngineSpec, Outcome,
    Response, ServerConfig,
};
use pigeonring_service::{percentile, ResultHasher, WorkerPool};
use pigeonring_telemetry::json as telemetry_json;
use pigeonring_telemetry::{trace::chrome_trace, Snapshot};

use crate::{f1, f3, Report, Scale};

/// Parsed flags shared by the server subcommands.
#[derive(Clone, Debug)]
pub struct ServerCliOpts {
    /// Dataset scale (`--quick` / `--paper`).
    pub scale: Scale,
    /// Connection-handling backend for `serve` / `server-smoke`
    /// (`--backend reactor|threaded`; default reactor).
    pub backend: Backend,
    /// Shard count per domain index.
    pub shards: usize,
    /// Worker threads (defaults to `min(shards, cores)`).
    pub threads: Option<usize>,
    /// TCP port (`serve`/`query`/`loadgen`; `server-smoke` uses an
    /// OS-assigned port).
    pub port: u16,
    /// Admission-control depth `Q` of each per-domain lane.
    pub queue: usize,
    /// Micro-batch size `B` (max queued requests per pool dispatch).
    pub batch: usize,
    /// Concurrent loadgen connections.
    pub conns: usize,
    /// Loadgen requests per connection (per phase).
    pub requests: usize,
    /// Requests each loadgen connection keeps in flight (wire-v2
    /// pipelining; 1 = the v1-era one-at-a-time behavior).
    pub pipeline: usize,
    /// Run the solo-vs-mixed fairness experiment in `loadgen`
    /// (`server-smoke` always does).
    pub mix: bool,
    /// Restrict `query` to one domain (`None` = all four).
    pub domain: Option<Domain>,
    /// `stats`: print the raw snapshot JSON instead of pretty-printing.
    pub raw: bool,
    /// `serve`: periodically write the live metrics snapshot to this
    /// file (`--metrics-dump PATH`).
    pub metrics_dump: Option<String>,
    /// `serve`: seconds between metrics-dump writes.
    pub metrics_interval_secs: usize,
    /// `serve` / `server-smoke`: slow-query log threshold in
    /// milliseconds (`None` = disabled).
    pub slow_query_ms: Option<u64>,
    /// `serve` / `server-smoke`: slow-query ring capacity (`None` =
    /// the server default of 64).
    pub slow_query_ring: Option<usize>,
    /// `serve` / `server-smoke`: trace one admitted query in N
    /// (`None` = sampling disabled; EXPLAIN still traces).
    pub trace_sample: Option<u64>,
    /// `serve` / `server-smoke`: span-ring capacity (`None` = the
    /// telemetry default).
    pub trace_buffer: Option<usize>,
    /// `stats`: poll every SECS seconds and print snapshot deltas
    /// instead of one snapshot.
    pub watch: Option<usize>,
    /// `trace`: write Chrome trace-event JSON to this path.
    pub chrome: Option<String>,
}

impl ServerCliOpts {
    /// Parses and validates the server-subcommand flag set; unknown
    /// flags and malformed values are errors, not silent defaults.
    pub fn from_args(args: &[String]) -> Result<ServerCliOpts, String> {
        const BOOL_FLAGS: [&str; 4] = ["--quick", "--paper", "--mix", "--raw"];
        const VALUE_FLAGS: [&str; 18] = [
            "--backend",
            "--shards",
            "--threads",
            "--port",
            "--queue",
            "--batch",
            "--conns",
            "--requests",
            "--pipeline",
            "--domain",
            "--metrics-dump",
            "--metrics-interval-secs",
            "--slow-query-ms",
            "--slow-query-ring",
            "--trace-sample",
            "--trace-buffer",
            "--watch",
            "--chrome",
        ];
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if VALUE_FLAGS.contains(&a) {
                i += 2;
            } else if a.starts_with("--") && !BOOL_FLAGS.contains(&a) {
                return Err(format!(
                    "unknown flag {a:?}; known: --quick, --paper, --mix, --raw, \
                     --backend reactor|threaded, --shards K, --threads T, --port P, --queue Q, \
                     --batch B, --conns C, --requests N, --pipeline P, --domain D, \
                     --metrics-dump PATH, --metrics-interval-secs S, --slow-query-ms MS, \
                     --slow-query-ring N, --trace-sample N, --trace-buffer M, --watch SECS, \
                     --chrome PATH"
                ));
            } else {
                i += 1;
            }
        }
        let value_of = |flag: &str| -> Result<Option<usize>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .map(Some)
                    .ok_or_else(|| format!("{flag} requires a positive integer value")),
            }
        };
        let backend = match args.iter().position(|a| a == "--backend") {
            None => Backend::default(),
            Some(i) => {
                let name = args
                    .get(i + 1)
                    .ok_or("--backend requires a value (reactor|threaded)")?;
                Backend::parse_name(name)
                    .ok_or_else(|| format!("unknown backend {name:?}; expected reactor|threaded"))?
            }
        };
        let domain = match args.iter().position(|a| a == "--domain") {
            None => None,
            Some(i) => {
                let name = args
                    .get(i + 1)
                    .ok_or("--domain requires a value (hamming|editdist|setsim|graph|all)")?;
                if name == "all" {
                    None
                } else {
                    Some(Domain::parse_name(name).ok_or_else(|| {
                        format!(
                            "unknown domain {name:?}; expected hamming|editdist|setsim|graph|all"
                        )
                    })?)
                }
            }
        };
        let path_value = |flag: &'static str| -> Result<Option<String>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => Ok(Some(
                    args.get(i + 1)
                        .filter(|p| !p.starts_with("--"))
                        .ok_or(format!("{flag} requires a file path"))?
                        .clone(),
                )),
            }
        };
        let metrics_dump = path_value("--metrics-dump")?;
        let chrome = path_value("--chrome")?;
        let port = value_of("--port")?.unwrap_or(7878);
        if port > u16::MAX as usize {
            return Err(format!("--port must be at most 65535 (got {port})"));
        }
        Ok(ServerCliOpts {
            scale: Scale::from_args(args),
            backend,
            shards: value_of("--shards")?.unwrap_or(2),
            threads: value_of("--threads")?,
            port: port as u16,
            queue: value_of("--queue")?.unwrap_or(64),
            batch: value_of("--batch")?.unwrap_or(16),
            conns: value_of("--conns")?.unwrap_or(4),
            requests: value_of("--requests")?.unwrap_or(64),
            pipeline: value_of("--pipeline")?.unwrap_or(4),
            mix: args.iter().any(|a| a == "--mix"),
            domain,
            raw: args.iter().any(|a| a == "--raw"),
            metrics_dump,
            metrics_interval_secs: value_of("--metrics-interval-secs")?.unwrap_or(10),
            slow_query_ms: value_of("--slow-query-ms")?.map(|ms| ms as u64),
            slow_query_ring: value_of("--slow-query-ring")?,
            trace_sample: value_of("--trace-sample")?.map(|n| n as u64),
            trace_buffer: value_of("--trace-buffer")?,
            watch: value_of("--watch")?,
            chrome,
        })
    }

    /// The deterministic engine spec for this scale and shard count.
    pub fn spec(&self) -> EngineSpec {
        let mut spec = match self.scale {
            Scale::Quick => EngineSpec::quick(),
            Scale::Full => EngineSpec::full(),
            Scale::Paper => EngineSpec::paper(),
        };
        spec.shards = self.shards;
        spec
    }

    /// Worker threads: explicit `--threads`, else
    /// `min(shards, hardware cores)`, always ≥ 1.
    pub fn worker_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| self.shards.min(pigeonring_service::cores()))
            .max(1)
    }

    fn server_config(&self) -> ServerConfig {
        let defaults = ServerConfig::default();
        ServerConfig {
            backend: self.backend,
            lane_depth: self.queue,
            micro_batch: self.batch,
            slow_query_ms: self.slow_query_ms,
            slow_query_ring: self.slow_query_ring.unwrap_or(defaults.slow_query_ring),
            trace_sample: self.trace_sample.unwrap_or(defaults.trace_sample),
            trace_buffer: self.trace_buffer.unwrap_or(defaults.trace_buffer),
            ..defaults
        }
    }
}

/// Dispatches one of the server subcommands. `Err` means "print to
/// stderr and exit non-zero".
pub fn run(cmd: &str, args: &[String]) -> Result<(), String> {
    let opts = ServerCliOpts::from_args(args)?;
    match cmd {
        "serve" => serve(&opts),
        "query" => query(&opts),
        "loadgen" => loadgen(&opts),
        "stats" => stats(&opts),
        "trace" => trace(&opts),
        "server-smoke" => server_smoke(&opts),
        other => Err(format!("not a server subcommand: {other:?}")),
    }
}

/// `repro serve`: build engines, bind, answer until killed.
fn serve(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    eprintln!(
        "building engines (hamming {} / editdist {} / setsim {} / graph {} records, {} shards)...",
        spec.hamming_n, spec.edit_n, spec.set_n, spec.graph_n, spec.shards
    );
    let engines = Arc::new(EngineSet::build(spec));
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    let pool = WorkerPool::new(opts.worker_threads());
    let handle = start(listener, engines, pool, opts.server_config())
        .map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "pigeonring-server listening on {} ({} backend, lane depth {}, micro-batch {}, {} workers)",
        handle.addr(),
        opts.backend,
        opts.queue,
        opts.batch,
        opts.worker_threads()
    );
    if let Some(path) = &opts.metrics_dump {
        let path = path.clone();
        let interval = std::time::Duration::from_secs(opts.metrics_interval_secs.max(1) as u64);
        let metrics = Arc::clone(handle.metrics());
        std::thread::spawn(move || loop {
            std::thread::sleep(interval);
            if let Err(e) = std::fs::write(&path, metrics.stats_json()) {
                eprintln!("metrics dump to {path:?} failed: {e}");
            }
        });
        println!(
            "metrics dump: {} every {}s",
            opts.metrics_dump.as_deref().unwrap_or(""),
            opts.metrics_interval_secs.max(1)
        );
    }
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

/// `repro stats`: fetch a running server's live metrics snapshot over
/// the wire (`Request::Stats`) and pretty-print it (`--raw` dumps the
/// JSON exactly as the server sent it).
fn stats(opts: &ServerCliOpts) -> Result<(), String> {
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    if let Some(secs) = opts.watch {
        return watch_stats(&mut client, secs);
    }
    let snapshot = client.stats().map_err(|e| format!("stats failed: {e}"))?;
    if opts.raw {
        println!("{snapshot}");
    } else {
        let doc = telemetry_json::parse(&snapshot)
            .map_err(|e| format!("server sent an unparseable snapshot: {e}"))?;
        println!("{}", doc.pretty());
    }
    Ok(())
}

/// `repro stats --watch SECS`: poll the server and print only what
/// *moved* between snapshots, via [`Snapshot::delta`] — counter
/// increments plus interval histogram percentiles (recomputed over the
/// delta buckets, so they describe this window's requests, not server
/// history). The first tick's baseline is the empty snapshot, so it
/// prints cumulative totals; runs until interrupted.
fn watch_stats(client: &mut Client, secs: usize) -> Result<(), String> {
    let mut prev = Snapshot::default();
    loop {
        let raw = client.stats().map_err(|e| format!("stats failed: {e}"))?;
        let doc = telemetry_json::parse(&raw)
            .map_err(|e| format!("server sent an unparseable snapshot: {e}"))?;
        let now = doc
            .get("metrics")
            .and_then(Snapshot::from_json)
            .ok_or("snapshot has no parseable \"metrics\" member")?;
        let delta = now.delta(&prev);
        let uptime_ms = doc
            .get("uptime_ms")
            .and_then(telemetry_json::Value::as_u64)
            .unwrap_or(0);
        println!(
            "--- uptime {:.1}s, last {secs}s ---",
            uptime_ms as f64 / 1e3
        );
        let mut quiet = true;
        for (name, v) in &delta.counters {
            if *v > 0 {
                println!("  {name:<44} +{v}");
                quiet = false;
            }
        }
        for (name, h) in &delta.histograms {
            if h.count > 0 {
                println!(
                    "  {name:<44} count={} p50={} p95={} p99={}",
                    h.count, h.p50, h.p95, h.p99
                );
                quiet = false;
            }
        }
        if quiet {
            println!("  (idle)");
        }
        prev = now;
        std::thread::sleep(std::time::Duration::from_secs(secs.max(1) as u64));
    }
}

/// `repro trace`: fetch a running server's recent sampled traces
/// (`Request::Trace`). Default pretty-prints the span trees; `--raw`
/// dumps the JSON for `jq`; `--chrome PATH` writes Chrome trace-event
/// JSON loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
fn trace(opts: &ServerCliOpts) -> Result<(), String> {
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let mut client = Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let raw = client.trace().map_err(|e| format!("trace failed: {e}"))?;
    if let Some(path) = &opts.chrome {
        let doc = telemetry_json::parse(&raw)
            .map_err(|e| format!("server sent an unparseable trace document: {e}"))?;
        let events = chrome_trace(&doc)
            .map_err(|e| format!("cannot convert to Chrome trace events: {e}"))?;
        std::fs::write(path, &events).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path} (load in chrome://tracing or https://ui.perfetto.dev)");
    } else if opts.raw {
        println!("{raw}");
    } else {
        let doc = telemetry_json::parse(&raw)
            .map_err(|e| format!("server sent an unparseable trace document: {e}"))?;
        println!("{}", doc.pretty());
    }
    Ok(())
}

/// `repro query`: one domain's (or all domains') standard query set
/// through a running server; prints counts and the result hash.
fn query(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let domains: Vec<Domain> = match opts.domain {
        Some(d) => vec![d],
        None => Domain::ALL.to_vec(),
    };
    let mut rep = Report::new(
        "server_query",
        &["domain", "queries", "results", "busy", "result_hash"],
    );
    for domain in domains {
        let queries = spec.sample_queries(domain);
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (hash, results, busy) = run_query_set(&mut client, &queries)?;
        rep.row(&[
            domain.to_string(),
            queries.len().to_string(),
            results.to_string(),
            busy.to_string(),
            format!("{hash:016x}"),
        ]);
    }
    rep.emit();
    Ok(())
}

/// Sends every query on one connection (retrying Busy up to a bounded
/// number of times), returning the result hash, total result count, and
/// Busy-retry count. A server that stays Busy past the cap (saturated,
/// or shutting down — a closing queue also answers Busy) is an error,
/// not an infinite spin.
fn run_query_set(
    client: &mut Client,
    queries: &[DomainQuery],
) -> Result<(u64, usize, usize), String> {
    const MAX_BUSY_RETRIES: usize = 1_000;
    let mut hasher = ResultHasher::new();
    let mut results = 0usize;
    let mut busy = 0usize;
    for q in queries {
        let mut attempts = 0usize;
        loop {
            match client
                .search(q.clone())
                .map_err(|e| format!("query failed: {e}"))?
            {
                // A plain query never sets EXPLAIN, but a trace-forced
                // answer still carries the same ids — hash them alike.
                Outcome::Results(ids) | Outcome::Explained { ids, .. } => {
                    hasher.push(&ids);
                    results += ids.len();
                    break;
                }
                Outcome::Failed { code, message } => {
                    return Err(format!("query failed ({code:?}): {message}"));
                }
                Outcome::Busy => {
                    busy += 1;
                    attempts += 1;
                    if attempts >= MAX_BUSY_RETRIES {
                        return Err(format!(
                            "server still busy after {MAX_BUSY_RETRIES} retries; \
                             is it overloaded or shutting down?"
                        ));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }
    Ok((hasher.finish(), results, busy))
}

/// One loadgen measurement for one domain under one load shape.
struct LoadRow {
    /// Connection-handling backend the server ran (`reactor`/`threaded`).
    backend: &'static str,
    domain: &'static str,
    /// `"solo"` (only this domain on the wire) or `"mixed"` (all four
    /// round-robin).
    mode: &'static str,
    requests: usize,
    busy: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// On mixed rows when the solo baseline was also measured: this
    /// domain's mixed-load p50 over its solo-load p50 — 1.0 means the
    /// other domains add nothing to its latency; the old global-FIFO
    /// server showed ≈ 3.5× for hamming/setsim.
    mixed_over_solo_p50: Option<f64>,
}

/// The load shape one phase drives.
#[derive(Clone, Copy)]
enum Phase {
    /// Every request targets the one domain (index into [`Domain::ALL`]).
    Solo(usize),
    /// Requests round-robin all four domains, staggered per connection
    /// so every micro-batch the server forms is mixed.
    Mixed,
}

/// `repro loadgen`: concurrent pipelined connections; reports
/// per-domain throughput and tail latency, writes
/// `results/BENCH_server.json`. With `--mix`, runs one solo phase per
/// domain first so the mixed rows carry `mixed_over_solo_p50`.
fn loadgen(opts: &ServerCliOpts) -> Result<(), String> {
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let query_sets = sample_all_queries(opts);
    // Snapshot the server's metrics around the run so the artifact
    // carries the server-side delta (queue waits, stage survivor
    // counts) next to the client-observed latencies. Best-effort: a
    // server that can't answer Stats degrades the artifact, not the
    // run.
    let before = fetch_stats(addr);
    let rows = if opts.mix {
        run_fairness_loadgen(opts, addr, &query_sets)?
    } else {
        run_phase(opts, addr, &query_sets, Phase::Mixed)?
    };
    let server_metrics = match (&before, fetch_stats(addr)) {
        (Some(b), Some(a)) => Some(metrics_delta_json(b, &a)?),
        _ => None,
    };
    let idle = measure_idle_conns(opts)?;
    emit_loadgen(&rows, opts, server_metrics.as_deref(), &idle)
}

/// Best-effort Stats fetch on a fresh connection; `None` when the
/// server is unreachable or refuses the request.
fn fetch_stats(addr: SocketAddr) -> Option<String> {
    Client::connect(addr).ok()?.stats().ok()
}

/// After-minus-before deltas between two wire Stats snapshots, rendered
/// as the `server_metrics` object for `BENCH_server.json`: every
/// counter that moved (per-domain query counts, filter-stage survivor
/// counts, lane admissions) plus per-histogram interval summaries —
/// delta count/sum with nearest-rank percentiles recomputed over the
/// delta buckets, so queue waits and latencies describe *this run's*
/// requests, not cumulative server history.
fn metrics_delta_json(before: &str, after: &str) -> Result<String, String> {
    use telemetry_json::Value;
    let before =
        telemetry_json::parse(before).map_err(|e| format!("bad 'before' stats snapshot: {e}"))?;
    let after =
        telemetry_json::parse(after).map_err(|e| format!("bad 'after' stats snapshot: {e}"))?;
    let counters = |doc: &Value| -> Vec<(String, u64)> {
        doc.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(Value::entries)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                    .collect()
            })
            .unwrap_or_default()
    };
    // name → (sum, sparse buckets as (upper bound, count)).
    type HistEntry = (String, u64, Vec<(u64, u64)>);
    let histograms = |doc: &Value| -> Vec<HistEntry> {
        doc.get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(Value::entries)
            .map(|entries| {
                entries
                    .iter()
                    .map(|(k, h)| {
                        let sum = h.get("sum").and_then(Value::as_u64).unwrap_or(0);
                        let buckets = h
                            .get("buckets")
                            .and_then(Value::entries)
                            .map(|b| {
                                b.iter()
                                    .filter_map(|(bound, c)| {
                                        Some((bound.parse::<u64>().ok()?, c.as_u64()?))
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        (k.clone(), sum, buckets)
                    })
                    .collect()
            })
            .unwrap_or_default()
    };

    let mut out = String::from("{\n  \"counters\": {");
    let before_counters = counters(&before);
    let mut first = true;
    for (name, now) in counters(&after) {
        let was = before_counters
            .iter()
            .find(|(n, _)| n == &name)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        let delta = now.saturating_sub(was);
        if delta == 0 {
            continue;
        }
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{name}\": {delta}"));
    }
    out.push_str("},\n  \"histograms\": {");
    let before_hists = histograms(&before);
    first = true;
    for (name, sum_now, buckets_now) in histograms(&after) {
        let (sum_was, buckets_was) = before_hists
            .iter()
            .find(|(n, _, _)| n == &name)
            .map(|(_, s, b)| (*s, b.as_slice()))
            .unwrap_or((0, &[][..]));
        let mut delta: Vec<(u64, u64)> = buckets_now
            .iter()
            .map(|&(bound, c)| {
                let was = buckets_was
                    .iter()
                    .find(|&&(b, _)| b == bound)
                    .map(|&(_, c)| c)
                    .unwrap_or(0);
                (bound, c.saturating_sub(was))
            })
            .filter(|&(_, c)| c > 0)
            .collect();
        delta.sort_unstable();
        let count: u64 = delta.iter().map(|&(_, c)| c).sum();
        if count == 0 {
            continue;
        }
        let pct = |p: f64| -> u64 {
            let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
            let mut cum = 0u64;
            for &(bound, c) in &delta {
                cum += c;
                if cum >= rank {
                    return bound;
                }
            }
            delta.last().map(|&(b, _)| b).unwrap_or(0)
        };
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!(
            "\"{name}\": {{\"count\": {count}, \"sum\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            sum_now.saturating_sub(sum_was),
            pct(50.0),
            pct(95.0),
            pct(99.0)
        ));
    }
    out.push_str("}\n}");
    Ok(out)
}

/// The fairness experiment: one solo phase per domain, then the mixed
/// phase, with each mixed row annotated with its solo-p50 ratio.
fn run_fairness_loadgen(
    opts: &ServerCliOpts,
    addr: SocketAddr,
    query_sets: &Arc<Vec<Vec<DomainQuery>>>,
) -> Result<Vec<LoadRow>, String> {
    let mut rows = Vec::new();
    let mut solo_p50: Vec<(&'static str, f64)> = Vec::new();
    for (di, domain) in Domain::ALL.iter().enumerate() {
        let solo = run_phase(opts, addr, query_sets, Phase::Solo(di))?;
        let row = solo
            .into_iter()
            .find(|r| r.domain == domain.as_str() && r.requests > 0)
            .ok_or_else(|| format!("solo phase for {domain} measured nothing"))?;
        solo_p50.push((row.domain, row.p50_ms));
        rows.push(row);
    }
    let mixed = run_phase(opts, addr, query_sets, Phase::Mixed)?;
    for mut row in mixed {
        // Join baselines by domain, not by position: run_phase drops
        // domains the phase never measured, and a busy-only row (p50 0)
        // must not record a meaningless ratio.
        let solo = solo_p50
            .iter()
            .find(|(d, _)| *d == row.domain)
            .map(|&(_, p50)| p50);
        if let Some(solo) = solo.filter(|&p50| p50 > 0.0 && row.requests > 0) {
            row.mixed_over_solo_p50 = Some(row.p50_ms / solo);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Every domain's standard query set for this scale, in `Domain::ALL`
/// order. Sampling regenerates each domain's dataset, so callers that
/// need the sets more than once (e.g. `server-smoke`) sample once and
/// share.
fn sample_all_queries(opts: &ServerCliOpts) -> Arc<Vec<Vec<DomainQuery>>> {
    let spec = opts.spec();
    Arc::new(
        Domain::ALL
            .iter()
            .map(|&d| spec.sample_queries(d))
            .collect(),
    )
}

/// Drives one load phase and aggregates per-domain latency samples.
/// Each connection keeps `opts.pipeline` requests in flight and
/// timestamps every request individually, matching responses by id
/// (out-of-order completion is expected from the v2 server).
fn run_phase(
    opts: &ServerCliOpts,
    addr: SocketAddr,
    query_sets: &Arc<Vec<Vec<DomainQuery>>>,
    phase: Phase,
) -> Result<Vec<LoadRow>, String> {
    let start = Instant::now();
    let workers: Vec<_> = (0..opts.conns)
        .map(|c| {
            let query_sets = Arc::clone(query_sets);
            let requests = opts.requests;
            let window = opts.pipeline.max(1);
            std::thread::spawn(move || -> Result<Vec<(usize, f64, bool)>, String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                // The connection's request sequence, fixed up front.
                let seq: Vec<(usize, DomainQuery)> = (0..requests)
                    .map(|i| {
                        let di = match phase {
                            Phase::Solo(di) => di,
                            // Stagger domains across connections so
                            // every micro-batch the server forms is
                            // mixed.
                            Phase::Mixed => (i + c) % query_sets.len(),
                        };
                        let q = &query_sets[di][(i / query_sets.len()) % query_sets[di].len()];
                        (di, q.clone())
                    })
                    .collect();
                let mut in_flight: std::collections::HashMap<u64, (usize, Instant)> =
                    std::collections::HashMap::with_capacity(window);
                let mut samples = Vec::with_capacity(requests);
                let mut next = 0usize;
                while samples.len() < seq.len() {
                    while in_flight.len() < window && next < seq.len() {
                        let (di, q) = &seq[next];
                        let id = client
                            .send_query(q.clone())
                            .map_err(|e| format!("loadgen send failed: {e}"))?;
                        in_flight.insert(id, (*di, Instant::now()));
                        next += 1;
                    }
                    let (id, outcome) = client
                        .recv_reply()
                        .map_err(|e| format!("loadgen request failed: {e}"))?;
                    let (di, t0) = in_flight
                        .remove(&id)
                        .ok_or("server answered an unknown request id")?;
                    if let Outcome::Failed { code, message } = &outcome {
                        return Err(format!("loadgen query failed ({code:?}): {message}"));
                    }
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    samples.push((di, ms, matches!(outcome, Outcome::Busy)));
                }
                Ok(samples)
            })
        })
        .collect();
    let mut samples: Vec<(usize, f64, bool)> = Vec::new();
    for w in workers {
        samples.extend(w.join().map_err(|_| "loadgen thread panicked")??);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let mode = match phase {
        Phase::Solo(_) => "solo",
        Phase::Mixed => "mixed",
    };

    Ok(Domain::ALL
        .iter()
        .enumerate()
        .map(|(di, &d)| {
            let mut lat: Vec<f64> = samples
                .iter()
                .filter(|(i, _, busy)| *i == di && !busy)
                .map(|(_, ms, _)| *ms)
                .collect();
            lat.sort_by(f64::total_cmp);
            let busy = samples.iter().filter(|(i, _, b)| *i == di && *b).count();
            LoadRow {
                backend: opts.backend.as_str(),
                domain: d.as_str(),
                mode,
                requests: lat.len(),
                busy,
                qps: if wall_s > 0.0 {
                    lat.len() as f64 / wall_s
                } else {
                    0.0
                },
                p50_ms: percentile(&lat, 50.0),
                p95_ms: percentile(&lat, 95.0),
                p99_ms: percentile(&lat, 99.0),
                mixed_over_solo_p50: None,
            }
        })
        .filter(|row| row.requests > 0 || row.busy > 0)
        .collect())
}

/// Idle connections for the thread-cost experiment: enough that the
/// per-connection thread cost of the threaded backend is unmistakable
/// next to the reactor's flat census.
const IDLE_PROBE_CONNS: usize = 256;

/// One backend's footprint while parking [`IDLE_PROBE_CONNS`] idle,
/// fully negotiated connections.
struct IdleRow {
    backend: &'static str,
    conns: usize,
    /// Total process threads while the connections were parked.
    thread_count: u64,
    /// Threads over the pre-start baseline — the per-server cost
    /// (threaded: ≈ `2·conns` reader/writer pairs + dispatchers;
    /// reactor: one event-loop thread + dispatchers, independent of
    /// `conns`).
    threads_added: u64,
    /// `VmRSS` while the connections were parked, in KiB.
    rss_kb: u64,
}

/// `Threads:` and `VmRSS:` (KiB) from `/proc/self/status`; zeros where
/// procfs is unavailable (non-Linux), which skips the experiment.
fn proc_status() -> (u64, u64) {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    let field = |key: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("Threads:"), field("VmRSS:"))
}

/// The tentpole's headline number, measured: for each backend, an
/// in-process server (trivial handler — the cost under test is
/// *connection handling*, not query execution) parks
/// [`IDLE_PROBE_CONNS`] negotiated-but-idle connections while the
/// process thread census and RSS are read from `/proc/self/status`.
/// The servers are spawned in this process precisely so that census
/// is attributable; each backend is measured alone, against its own
/// pre-start baseline.
fn measure_idle_conns(opts: &ServerCliOpts) -> Result<Vec<IdleRow>, String> {
    if proc_status().0 == 0 {
        // No procfs (non-Linux): skip rather than record garbage.
        return Ok(Vec::new());
    }
    let backends: &[Backend] = if cfg!(unix) {
        &[Backend::Threaded, Backend::Reactor]
    } else {
        &[Backend::Threaded]
    };
    let mut rows: Vec<IdleRow> = Vec::new();
    for &backend in backends {
        // Wait for the previous measurement's threads to wind down so
        // baselines don't bleed across backends.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        let settled = loop {
            let (threads, _) = proc_status();
            if rows.is_empty() || threads <= rows[0].thread_count - rows[0].threads_added + 4 {
                break threads;
            }
            if Instant::now() > deadline {
                break threads;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let threads_before = settled;
        let listener = TcpListener::bind("127.0.0.1:0")
            .map_err(|e| format!("idle-conns probe cannot bind loopback: {e}"))?;
        let handle = start_with_handler(
            listener,
            Arc::new(|_, _, _| {}),
            ServerConfig {
                backend,
                ..opts.server_config()
            },
        )
        .map_err(|e| format!("idle-conns probe cannot start {backend} server: {e}"))?;
        let clients = (0..IDLE_PROBE_CONNS)
            .map(|_| Client::connect(handle.addr()))
            .collect::<Result<Vec<Client>, _>>()
            .map_err(|e| format!("idle-conns probe connect failed on {backend}: {e}"))?;
        // Let late thread spawns (threaded writer threads) land before
        // the census.
        std::thread::sleep(std::time::Duration::from_millis(200));
        let (thread_count, rss_kb) = proc_status();
        rows.push(IdleRow {
            backend: backend.as_str(),
            conns: clients.len(),
            thread_count,
            threads_added: thread_count.saturating_sub(threads_before),
            rss_kb,
        });
        println!(
            "idle-conns probe: {backend} holds {} connections with {} threads \
             (+{} over baseline), rss {} KiB",
            clients.len(),
            thread_count,
            thread_count.saturating_sub(threads_before),
            rss_kb
        );
        drop(clients);
        handle.shutdown();
    }
    Ok(rows)
}

/// Prints the loadgen table and writes `results/BENCH_server.json`
/// (embedding the server-side metrics delta when one was captured),
/// then prints the per-domain fairness ratios when both phases ran.
fn emit_loadgen(
    rows: &[LoadRow],
    opts: &ServerCliOpts,
    server_metrics: Option<&str>,
    idle: &[IdleRow],
) -> Result<(), String> {
    let mut rep = Report::new(
        "server_loadgen",
        &[
            "backend",
            "domain",
            "mode",
            "conns",
            "pipeline",
            "requests",
            "busy",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "mixed_over_solo_p50",
        ],
    );
    // BENCH_server.json schema: machine fingerprint + rows, mirroring
    // BENCH_service.json — loadgen numbers without the machine are not
    // comparable across runs.
    let mut json = String::from("{\n\"machine\": ");
    json.push_str(&pigeonring_service::MachineFingerprint::detect().to_json());
    json.push_str(",\n\"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let ratio = row
            .mixed_over_solo_p50
            .map_or("-".to_string(), |r| format!("{r:.2}"));
        rep.row(&[
            row.backend.to_string(),
            row.domain.to_string(),
            row.mode.to_string(),
            opts.conns.to_string(),
            opts.pipeline.to_string(),
            row.requests.to_string(),
            row.busy.to_string(),
            f1(row.qps),
            f3(row.p50_ms),
            f3(row.p95_ms),
            f3(row.p99_ms),
            ratio,
        ]);
        let ratio_json = row.mixed_over_solo_p50.map_or(String::new(), |r| {
            format!(", \"mixed_over_solo_p50\": {r:.3}")
        });
        json.push_str(&format!(
            "  {{\"backend\": \"{}\", \"domain\": \"{}\", \"mode\": \"{}\", \"conns\": {}, \
             \"pipeline\": {}, \"shards\": {}, \"lane_depth\": {}, \"micro_batch\": {}, \
             \"requests\": {}, \"busy\": {}, \"qps\": {:.3}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}{}}}{}\n",
            row.backend,
            row.domain,
            row.mode,
            opts.conns,
            opts.pipeline,
            opts.shards,
            opts.queue,
            opts.batch,
            row.requests,
            row.busy,
            row.qps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            ratio_json,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push(']');
    if !idle.is_empty() {
        json.push_str(",\n\"idle_conns\": [\n");
        for (i, row) in idle.iter().enumerate() {
            json.push_str(&format!(
                "  {{\"backend\": \"{}\", \"conns\": {}, \"thread_count\": {}, \
                 \"threads_added\": {}, \"rss_kb\": {}}}{}\n",
                row.backend,
                row.conns,
                row.thread_count,
                row.threads_added,
                row.rss_kb,
                if i + 1 < idle.len() { "," } else { "" },
            ));
        }
        json.push(']');
    }
    if let Some(delta) = server_metrics {
        json.push_str(",\n\"server_metrics\": ");
        json.push_str(delta);
    }
    json.push_str("\n}");
    rep.emit();
    std::fs::create_dir_all("results").map_err(|e| format!("cannot create results/: {e}"))?;
    std::fs::write("results/BENCH_server.json", json)
        .map_err(|e| format!("cannot write results/BENCH_server.json: {e}"))?;
    println!(
        "wrote results/BENCH_server.json ({} rows{})",
        rows.len(),
        if server_metrics.is_some() {
            ", with server-side metrics delta"
        } else {
            ""
        }
    );
    for row in rows {
        if let Some(r) = row.mixed_over_solo_p50 {
            println!(
                "fairness: {} mixed/solo p50 = {:.2}x ({:.3} ms vs {:.3} ms)",
                row.domain,
                r,
                row.p50_ms,
                row.p50_ms / r
            );
        }
    }
    Ok(())
}

/// `repro server-smoke`: the CI gate. One process, an OS-assigned
/// loopback port; every domain's client-observed result hash must equal
/// a direct in-process run on the same engines, then a small loadgen
/// writes the artifact.
fn server_smoke(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    eprintln!(
        "server-smoke: building engines at {:?} scale...",
        opts.scale
    );
    let engines = Arc::new(EngineSet::build(spec));
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind loopback: {e}"))?;
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(opts.worker_threads()),
        opts.server_config(),
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = handle.addr();
    println!("server-smoke: serving on {addr}");

    // In-process reference pool: separate from the server's so the two
    // paths share nothing but the engines.
    let reference_pool = WorkerPool::new(opts.worker_threads());
    let mut rep = Report::new(
        "server_smoke",
        &["domain", "queries", "server_hash", "inproc_hash", "match"],
    );
    let mut mismatches = Vec::new();
    // Sample every domain's query set once; the smoke loop and the
    // loadgen below share it (sampling regenerates whole datasets).
    let query_sets = sample_all_queries(opts);
    for (domain, queries) in Domain::ALL.into_iter().zip(query_sets.iter()) {
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (server_hash, _, _) = run_query_set(&mut client, queries)?;
        let mut hasher = ResultHasher::new();
        for resp in engines.run(&reference_pool, queries.clone()) {
            match resp {
                Response::Results { ids, .. } => hasher.push(&ids),
                other => return Err(format!("in-process run failed for {domain}: {other:?}")),
            }
        }
        let inproc_hash = hasher.finish();
        let ok = server_hash == inproc_hash;
        if !ok {
            mismatches.push(domain);
        }
        rep.row(&[
            domain.to_string(),
            queries.len().to_string(),
            format!("{server_hash:016x}"),
            format!("{inproc_hash:016x}"),
            ok.to_string(),
        ]);
    }
    rep.emit();

    // The fairness experiment is part of the smoke artifact: solo
    // baselines per domain, then mixed load, so BENCH_server.json
    // records each domain's mixed_over_solo_p50 isolation ratio —
    // bracketed by Stats fetches so the artifact also carries the
    // server-side metrics delta for exactly this load.
    let before = fetch_stats(addr).ok_or("server did not answer Stats before loadgen")?;
    let rows = run_fairness_loadgen(opts, addr, &query_sets)?;
    let after = fetch_stats(addr).ok_or("server did not answer Stats after loadgen")?;
    let server_metrics = metrics_delta_json(&before, &after)?;
    let idle = measure_idle_conns(opts)?;
    emit_loadgen(&rows, opts, Some(&server_metrics), &idle)?;
    // The raw post-load snapshot is its own CI-gated artifact: jq
    // checks per-lane gauges, per-domain query counters, and the
    // embedded machine fingerprint.
    std::fs::write("results/server_stats.json", &after)
        .map_err(|e| format!("cannot write results/server_stats.json: {e}"))?;
    println!("wrote results/server_stats.json");
    // EXPLAIN must not change the answer, and it forces tracing: one
    // explained query per domain *after* loadgen (so its spans cannot
    // be evicted by sampled loadgen traffic) both diffs the flagged
    // path's ids against the plain path and guarantees every domain
    // has a root span in the recent-trace artifact, whatever the
    // sampling cadence did.
    let mut explain_client =
        Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    for (domain, queries) in Domain::ALL.into_iter().zip(query_sets.iter()) {
        let (explained_ids, span_tree) = explain_client
            .explain(queries[0].clone())
            .map_err(|e| format!("EXPLAIN failed for {domain}: {e}"))?;
        match explain_client
            .search(queries[0].clone())
            .map_err(|e| format!("query failed for {domain}: {e}"))?
        {
            Outcome::Results(ids) | Outcome::Explained { ids, .. } => {
                if ids != explained_ids {
                    return Err(format!("EXPLAIN changed {domain}'s result ids"));
                }
            }
            other => return Err(format!("unexpected outcome for {domain}: {other:?}")),
        }
        if !span_tree.contains("\"spans\"") {
            return Err(format!("EXPLAIN for {domain} returned no span tree"));
        }
    }
    // The recent-trace export is the second jq-gated artifact: the
    // EXPLAIN round traced one query per domain, and loadgen traffic
    // adds sampled traces when --trace-sample is armed.
    let traces = explain_client
        .trace()
        .map_err(|e| format!("server did not answer Trace after loadgen: {e}"))?;
    std::fs::write("results/server_trace.json", &traces)
        .map_err(|e| format!("cannot write results/server_trace.json: {e}"))?;
    println!("wrote results/server_trace.json");
    handle.shutdown();

    if mismatches.is_empty() {
        println!("server-smoke: PASS (all four domains hash-identical over loopback)");
        Ok(())
    } else {
        Err(format!(
            "server-smoke: FAIL — server results differ from in-process for {mismatches:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn opts_parse_defaults_and_values() {
        let o = ServerCliOpts::from_args(&args(&[])).expect("defaults parse");
        assert_eq!(o.port, 7878);
        assert_eq!(o.shards, 2);
        assert_eq!(o.pipeline, 4);
        assert!(!o.mix);
        assert!(o.domain.is_none());
        let o = ServerCliOpts::from_args(&args(&[
            "--quick",
            "--port",
            "9000",
            "--domain",
            "graph",
            "--conns",
            "7",
            "--pipeline",
            "16",
            "--mix",
        ]))
        .expect("flags parse");
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.port, 9000);
        assert_eq!(o.conns, 7);
        assert_eq!(o.pipeline, 16);
        assert!(o.mix);
        assert_eq!(o.domain, Some(Domain::Graph));
    }

    #[test]
    fn backend_flag_parses_and_rejects_unknown_names() {
        let o = ServerCliOpts::from_args(&args(&[])).expect("defaults parse");
        assert_eq!(o.backend, Backend::Reactor, "reactor is the default");
        let o = ServerCliOpts::from_args(&args(&["--backend", "threaded"])).expect("parses");
        assert_eq!(o.backend, Backend::Threaded);
        let o = ServerCliOpts::from_args(&args(&["--backend", "reactor"])).expect("parses");
        assert_eq!(o.backend, Backend::Reactor);
        let err = ServerCliOpts::from_args(&args(&["--backend", "green-threads"])).unwrap_err();
        assert!(err.contains("reactor|threaded"), "{err}");
        assert!(ServerCliOpts::from_args(&args(&["--backend"])).is_err());
    }

    #[test]
    fn out_of_range_port_is_an_error_not_a_wrap() {
        let err = ServerCliOpts::from_args(&args(&["--port", "70000"])).unwrap_err();
        assert!(err.contains("65535"), "{err}");
        let err = ServerCliOpts::from_args(&args(&["--port", "65536"])).unwrap_err();
        assert!(err.contains("65535"), "{err}");
        assert!(ServerCliOpts::from_args(&args(&["--port", "65535"])).is_ok());
    }

    #[test]
    fn unknown_flags_and_domains_rejected() {
        assert!(ServerCliOpts::from_args(&args(&["--ports", "1"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--domain", "sets"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--domain", "all"])).is_ok());
        assert!(ServerCliOpts::from_args(&args(&["--conns", "0"])).is_err());
    }

    #[test]
    fn telemetry_flags_parse() {
        let o = ServerCliOpts::from_args(&args(&[])).expect("defaults parse");
        assert!(!o.raw);
        assert!(o.metrics_dump.is_none());
        assert_eq!(o.metrics_interval_secs, 10);
        assert!(o.slow_query_ms.is_none());
        let o = ServerCliOpts::from_args(&args(&[
            "--raw",
            "--metrics-dump",
            "results/dump.json",
            "--metrics-interval-secs",
            "3",
            "--slow-query-ms",
            "250",
        ]))
        .expect("telemetry flags parse");
        assert!(o.raw);
        assert_eq!(o.metrics_dump.as_deref(), Some("results/dump.json"));
        assert_eq!(o.metrics_interval_secs, 3);
        assert_eq!(o.slow_query_ms, Some(250));
        // A missing or flag-shaped path is an error, not a silent skip.
        assert!(ServerCliOpts::from_args(&args(&["--metrics-dump"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--metrics-dump", "--raw"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--slow-query-ms", "0"])).is_err());
    }

    #[test]
    fn tracing_flags_parse() {
        let o = ServerCliOpts::from_args(&args(&[])).expect("defaults parse");
        assert!(o.trace_sample.is_none());
        assert!(o.trace_buffer.is_none());
        assert!(o.slow_query_ring.is_none());
        assert!(o.watch.is_none());
        assert!(o.chrome.is_none());
        let o = ServerCliOpts::from_args(&args(&[
            "--trace-sample",
            "8",
            "--trace-buffer",
            "2048",
            "--slow-query-ring",
            "16",
            "--watch",
            "2",
            "--chrome",
            "results/trace.json",
        ]))
        .expect("tracing flags parse");
        assert_eq!(o.trace_sample, Some(8));
        assert_eq!(o.trace_buffer, Some(2048));
        assert_eq!(o.slow_query_ring, Some(16));
        assert_eq!(o.watch, Some(2));
        assert_eq!(o.chrome.as_deref(), Some("results/trace.json"));
        // Zero is "disabled" spelled wrong — reject it rather than
        // silently arming a meaningless cadence.
        assert!(ServerCliOpts::from_args(&args(&["--trace-sample", "0"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--slow-query-ring", "0"])).is_err());
        // A missing or flag-shaped path is an error, not a silent skip.
        assert!(ServerCliOpts::from_args(&args(&["--chrome"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--chrome", "--raw"])).is_err());
    }

    #[test]
    fn metrics_delta_subtracts_and_recomputes_percentiles() {
        let before = r#"{"metrics": {"counters": {"service.hamming.queries": 10, "server.errors": 2},
            "gauges": {},
            "histograms": {"server.hamming.latency_us": {"count": 4, "sum": 100,
                "p50": 16, "p95": 64, "p99": 64,
                "buckets": {"16": 3, "64": 1}}}}}"#;
        let after = r#"{"metrics": {"counters": {"service.hamming.queries": 16, "server.errors": 2},
            "gauges": {},
            "histograms": {"server.hamming.latency_us": {"count": 10, "sum": 1300,
                "p50": 16, "p95": 256, "p99": 256,
                "buckets": {"16": 7, "64": 1, "256": 2}}}}}"#;
        let delta = metrics_delta_json(before, after).expect("delta computes");
        let doc = telemetry_json::parse(&delta).expect("delta is valid JSON");
        let counters = doc.get("counters").expect("counters");
        assert_eq!(
            counters
                .get("service.hamming.queries")
                .and_then(telemetry_json::Value::as_u64),
            Some(6)
        );
        // Unmoved counters are elided from the delta.
        assert!(counters.get("server.errors").is_none());
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("server.hamming.latency_us"))
            .expect("histogram delta");
        let field = |k: &str| h.get(k).and_then(telemetry_json::Value::as_u64);
        assert_eq!(field("count"), Some(6));
        assert_eq!(field("sum"), Some(1200));
        // Interval buckets: {16: 4, 256: 2} ⇒ p50 lands in 16, p95/p99
        // in 256 — percentiles of the interval, not the cumulative run.
        assert_eq!(field("p50"), Some(16));
        assert_eq!(field("p95"), Some(256));
        assert_eq!(field("p99"), Some(256));
    }
}
