//! The `repro serve` / `repro query` / `repro loadgen` /
//! `repro server-smoke` subcommands: the measurable end-to-end path of
//! the `pigeonring-server` network frontend.
//!
//! * `serve` builds the four domain engines ([`EngineSpec`] is
//!   deterministic per scale, so clients at the same scale hold the same
//!   datasets) and answers on a loopback-style TCP port until killed.
//! * `query` drives one domain's (or every domain's) standard query set
//!   through a running server and prints the `result_hash` fingerprint —
//!   comparable across processes and against `repro sweep`-style
//!   in-process runs.
//! * `loadgen` opens `--conns` concurrent connections, each keeping
//!   `--pipeline` requests in flight (wire-v2 pipelining, responses
//!   matched by id), and reports per-domain throughput plus p50/p95/p99
//!   latency into `results/BENCH_server.json`. With `--mix` it runs the
//!   *fairness experiment*: one solo phase per domain (that domain
//!   only) followed by a mixed round-robin phase, recording each
//!   domain's `mixed_over_solo_p50` — the number that shows whether a
//!   slow domain (graph GED) still inflates a fast domain's tail.
//! * `server-smoke` is the CI gate: in one process it starts a server on
//!   an OS-assigned loopback port, diffs every domain's client-observed
//!   `result_hash` against a direct in-process run on the *same*
//!   engines, then runs the mixed-load fairness loadgen for the
//!   artifact. Any hash mismatch is a hard failure.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Instant;

use pigeonring_server::{
    start, Client, Domain, DomainQuery, EngineSet, EngineSpec, Outcome, Response, ServerConfig,
};
use pigeonring_service::{percentile, ResultHasher, WorkerPool};

use crate::{f1, f3, Report, Scale};

/// Parsed flags shared by the server subcommands.
#[derive(Clone, Copy, Debug)]
pub struct ServerCliOpts {
    /// Dataset scale (`--quick` / `--paper`).
    pub scale: Scale,
    /// Shard count per domain index.
    pub shards: usize,
    /// Worker threads (defaults to `min(shards, cores)`).
    pub threads: Option<usize>,
    /// TCP port (`serve`/`query`/`loadgen`; `server-smoke` uses an
    /// OS-assigned port).
    pub port: u16,
    /// Admission-control depth `Q` of each per-domain lane.
    pub queue: usize,
    /// Micro-batch size `B` (max queued requests per pool dispatch).
    pub batch: usize,
    /// Concurrent loadgen connections.
    pub conns: usize,
    /// Loadgen requests per connection (per phase).
    pub requests: usize,
    /// Requests each loadgen connection keeps in flight (wire-v2
    /// pipelining; 1 = the v1-era one-at-a-time behavior).
    pub pipeline: usize,
    /// Run the solo-vs-mixed fairness experiment in `loadgen`
    /// (`server-smoke` always does).
    pub mix: bool,
    /// Restrict `query` to one domain (`None` = all four).
    pub domain: Option<Domain>,
}

impl ServerCliOpts {
    /// Parses and validates the server-subcommand flag set; unknown
    /// flags and malformed values are errors, not silent defaults.
    pub fn from_args(args: &[String]) -> Result<ServerCliOpts, String> {
        const BOOL_FLAGS: [&str; 3] = ["--quick", "--paper", "--mix"];
        const VALUE_FLAGS: [&str; 9] = [
            "--shards",
            "--threads",
            "--port",
            "--queue",
            "--batch",
            "--conns",
            "--requests",
            "--pipeline",
            "--domain",
        ];
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if VALUE_FLAGS.contains(&a) {
                i += 2;
            } else if a.starts_with("--") && !BOOL_FLAGS.contains(&a) {
                return Err(format!(
                    "unknown flag {a:?}; known: --quick, --paper, --mix, --shards K, \
                     --threads T, --port P, --queue Q, --batch B, --conns C, --requests N, \
                     --pipeline P, --domain D"
                ));
            } else {
                i += 1;
            }
        }
        let value_of = |flag: &str| -> Result<Option<usize>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .map(Some)
                    .ok_or_else(|| format!("{flag} requires a positive integer value")),
            }
        };
        let domain = match args.iter().position(|a| a == "--domain") {
            None => None,
            Some(i) => {
                let name = args
                    .get(i + 1)
                    .ok_or("--domain requires a value (hamming|editdist|setsim|graph|all)")?;
                if name == "all" {
                    None
                } else {
                    Some(Domain::parse_name(name).ok_or_else(|| {
                        format!(
                            "unknown domain {name:?}; expected hamming|editdist|setsim|graph|all"
                        )
                    })?)
                }
            }
        };
        let port = value_of("--port")?.unwrap_or(7878);
        if port > u16::MAX as usize {
            return Err(format!("--port must be at most 65535 (got {port})"));
        }
        Ok(ServerCliOpts {
            scale: Scale::from_args(args),
            shards: value_of("--shards")?.unwrap_or(2),
            threads: value_of("--threads")?,
            port: port as u16,
            queue: value_of("--queue")?.unwrap_or(64),
            batch: value_of("--batch")?.unwrap_or(16),
            conns: value_of("--conns")?.unwrap_or(4),
            requests: value_of("--requests")?.unwrap_or(64),
            pipeline: value_of("--pipeline")?.unwrap_or(4),
            mix: args.iter().any(|a| a == "--mix"),
            domain,
        })
    }

    /// The deterministic engine spec for this scale and shard count.
    pub fn spec(&self) -> EngineSpec {
        let mut spec = match self.scale {
            Scale::Quick => EngineSpec::quick(),
            Scale::Full => EngineSpec::full(),
            Scale::Paper => EngineSpec::paper(),
        };
        spec.shards = self.shards;
        spec
    }

    /// Worker threads: explicit `--threads`, else
    /// `min(shards, hardware cores)`, always ≥ 1.
    pub fn worker_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| self.shards.min(pigeonring_service::cores()))
            .max(1)
    }

    fn server_config(&self) -> ServerConfig {
        ServerConfig {
            lane_depth: self.queue,
            micro_batch: self.batch,
            ..ServerConfig::default()
        }
    }
}

/// Dispatches one of the server subcommands. `Err` means "print to
/// stderr and exit non-zero".
pub fn run(cmd: &str, args: &[String]) -> Result<(), String> {
    let opts = ServerCliOpts::from_args(args)?;
    match cmd {
        "serve" => serve(&opts),
        "query" => query(&opts),
        "loadgen" => loadgen(&opts),
        "server-smoke" => server_smoke(&opts),
        other => Err(format!("not a server subcommand: {other:?}")),
    }
}

/// `repro serve`: build engines, bind, answer until killed.
fn serve(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    eprintln!(
        "building engines (hamming {} / editdist {} / setsim {} / graph {} records, {} shards)...",
        spec.hamming_n, spec.edit_n, spec.set_n, spec.graph_n, spec.shards
    );
    let engines = Arc::new(EngineSet::build(spec));
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    let pool = WorkerPool::new(opts.worker_threads());
    let handle = start(listener, engines, pool, opts.server_config())
        .map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "pigeonring-server listening on {} (lane depth {}, micro-batch {}, {} workers)",
        handle.addr(),
        opts.queue,
        opts.batch,
        opts.worker_threads()
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

/// `repro query`: one domain's (or all domains') standard query set
/// through a running server; prints counts and the result hash.
fn query(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let domains: Vec<Domain> = match opts.domain {
        Some(d) => vec![d],
        None => Domain::ALL.to_vec(),
    };
    let mut rep = Report::new(
        "server_query",
        &["domain", "queries", "results", "busy", "result_hash"],
    );
    for domain in domains {
        let queries = spec.sample_queries(domain);
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (hash, results, busy) = run_query_set(&mut client, &queries)?;
        rep.row(&[
            domain.to_string(),
            queries.len().to_string(),
            results.to_string(),
            busy.to_string(),
            format!("{hash:016x}"),
        ]);
    }
    rep.emit();
    Ok(())
}

/// Sends every query on one connection (retrying Busy up to a bounded
/// number of times), returning the result hash, total result count, and
/// Busy-retry count. A server that stays Busy past the cap (saturated,
/// or shutting down — a closing queue also answers Busy) is an error,
/// not an infinite spin.
fn run_query_set(
    client: &mut Client,
    queries: &[DomainQuery],
) -> Result<(u64, usize, usize), String> {
    const MAX_BUSY_RETRIES: usize = 1_000;
    let mut hasher = ResultHasher::new();
    let mut results = 0usize;
    let mut busy = 0usize;
    for q in queries {
        let mut attempts = 0usize;
        loop {
            match client
                .search(q.clone())
                .map_err(|e| format!("query failed: {e}"))?
            {
                Outcome::Results(ids) => {
                    hasher.push(&ids);
                    results += ids.len();
                    break;
                }
                Outcome::Failed { code, message } => {
                    return Err(format!("query failed ({code:?}): {message}"));
                }
                Outcome::Busy => {
                    busy += 1;
                    attempts += 1;
                    if attempts >= MAX_BUSY_RETRIES {
                        return Err(format!(
                            "server still busy after {MAX_BUSY_RETRIES} retries; \
                             is it overloaded or shutting down?"
                        ));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }
    Ok((hasher.finish(), results, busy))
}

/// One loadgen measurement for one domain under one load shape.
struct LoadRow {
    domain: &'static str,
    /// `"solo"` (only this domain on the wire) or `"mixed"` (all four
    /// round-robin).
    mode: &'static str,
    requests: usize,
    busy: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    /// On mixed rows when the solo baseline was also measured: this
    /// domain's mixed-load p50 over its solo-load p50 — 1.0 means the
    /// other domains add nothing to its latency; the old global-FIFO
    /// server showed ≈ 3.5× for hamming/setsim.
    mixed_over_solo_p50: Option<f64>,
}

/// The load shape one phase drives.
#[derive(Clone, Copy)]
enum Phase {
    /// Every request targets the one domain (index into [`Domain::ALL`]).
    Solo(usize),
    /// Requests round-robin all four domains, staggered per connection
    /// so every micro-batch the server forms is mixed.
    Mixed,
}

/// `repro loadgen`: concurrent pipelined connections; reports
/// per-domain throughput and tail latency, writes
/// `results/BENCH_server.json`. With `--mix`, runs one solo phase per
/// domain first so the mixed rows carry `mixed_over_solo_p50`.
fn loadgen(opts: &ServerCliOpts) -> Result<(), String> {
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let query_sets = sample_all_queries(opts);
    let rows = if opts.mix {
        run_fairness_loadgen(opts, addr, &query_sets)?
    } else {
        run_phase(opts, addr, &query_sets, Phase::Mixed)?
    };
    emit_loadgen(&rows, opts)
}

/// The fairness experiment: one solo phase per domain, then the mixed
/// phase, with each mixed row annotated with its solo-p50 ratio.
fn run_fairness_loadgen(
    opts: &ServerCliOpts,
    addr: SocketAddr,
    query_sets: &Arc<Vec<Vec<DomainQuery>>>,
) -> Result<Vec<LoadRow>, String> {
    let mut rows = Vec::new();
    let mut solo_p50: Vec<(&'static str, f64)> = Vec::new();
    for (di, domain) in Domain::ALL.iter().enumerate() {
        let solo = run_phase(opts, addr, query_sets, Phase::Solo(di))?;
        let row = solo
            .into_iter()
            .find(|r| r.domain == domain.as_str() && r.requests > 0)
            .ok_or_else(|| format!("solo phase for {domain} measured nothing"))?;
        solo_p50.push((row.domain, row.p50_ms));
        rows.push(row);
    }
    let mixed = run_phase(opts, addr, query_sets, Phase::Mixed)?;
    for mut row in mixed {
        // Join baselines by domain, not by position: run_phase drops
        // domains the phase never measured, and a busy-only row (p50 0)
        // must not record a meaningless ratio.
        let solo = solo_p50
            .iter()
            .find(|(d, _)| *d == row.domain)
            .map(|&(_, p50)| p50);
        if let Some(solo) = solo.filter(|&p50| p50 > 0.0 && row.requests > 0) {
            row.mixed_over_solo_p50 = Some(row.p50_ms / solo);
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Every domain's standard query set for this scale, in `Domain::ALL`
/// order. Sampling regenerates each domain's dataset, so callers that
/// need the sets more than once (e.g. `server-smoke`) sample once and
/// share.
fn sample_all_queries(opts: &ServerCliOpts) -> Arc<Vec<Vec<DomainQuery>>> {
    let spec = opts.spec();
    Arc::new(
        Domain::ALL
            .iter()
            .map(|&d| spec.sample_queries(d))
            .collect(),
    )
}

/// Drives one load phase and aggregates per-domain latency samples.
/// Each connection keeps `opts.pipeline` requests in flight and
/// timestamps every request individually, matching responses by id
/// (out-of-order completion is expected from the v2 server).
fn run_phase(
    opts: &ServerCliOpts,
    addr: SocketAddr,
    query_sets: &Arc<Vec<Vec<DomainQuery>>>,
    phase: Phase,
) -> Result<Vec<LoadRow>, String> {
    let start = Instant::now();
    let workers: Vec<_> = (0..opts.conns)
        .map(|c| {
            let query_sets = Arc::clone(query_sets);
            let requests = opts.requests;
            let window = opts.pipeline.max(1);
            std::thread::spawn(move || -> Result<Vec<(usize, f64, bool)>, String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                // The connection's request sequence, fixed up front.
                let seq: Vec<(usize, DomainQuery)> = (0..requests)
                    .map(|i| {
                        let di = match phase {
                            Phase::Solo(di) => di,
                            // Stagger domains across connections so
                            // every micro-batch the server forms is
                            // mixed.
                            Phase::Mixed => (i + c) % query_sets.len(),
                        };
                        let q = &query_sets[di][(i / query_sets.len()) % query_sets[di].len()];
                        (di, q.clone())
                    })
                    .collect();
                let mut in_flight: std::collections::HashMap<u64, (usize, Instant)> =
                    std::collections::HashMap::with_capacity(window);
                let mut samples = Vec::with_capacity(requests);
                let mut next = 0usize;
                while samples.len() < seq.len() {
                    while in_flight.len() < window && next < seq.len() {
                        let (di, q) = &seq[next];
                        let id = client
                            .send_query(q.clone())
                            .map_err(|e| format!("loadgen send failed: {e}"))?;
                        in_flight.insert(id, (*di, Instant::now()));
                        next += 1;
                    }
                    let (id, outcome) = client
                        .recv_reply()
                        .map_err(|e| format!("loadgen request failed: {e}"))?;
                    let (di, t0) = in_flight
                        .remove(&id)
                        .ok_or("server answered an unknown request id")?;
                    if let Outcome::Failed { code, message } = &outcome {
                        return Err(format!("loadgen query failed ({code:?}): {message}"));
                    }
                    let ms = t0.elapsed().as_secs_f64() * 1e3;
                    samples.push((di, ms, matches!(outcome, Outcome::Busy)));
                }
                Ok(samples)
            })
        })
        .collect();
    let mut samples: Vec<(usize, f64, bool)> = Vec::new();
    for w in workers {
        samples.extend(w.join().map_err(|_| "loadgen thread panicked")??);
    }
    let wall_s = start.elapsed().as_secs_f64();
    let mode = match phase {
        Phase::Solo(_) => "solo",
        Phase::Mixed => "mixed",
    };

    Ok(Domain::ALL
        .iter()
        .enumerate()
        .map(|(di, &d)| {
            let mut lat: Vec<f64> = samples
                .iter()
                .filter(|(i, _, busy)| *i == di && !busy)
                .map(|(_, ms, _)| *ms)
                .collect();
            lat.sort_by(f64::total_cmp);
            let busy = samples.iter().filter(|(i, _, b)| *i == di && *b).count();
            LoadRow {
                domain: d.as_str(),
                mode,
                requests: lat.len(),
                busy,
                qps: if wall_s > 0.0 {
                    lat.len() as f64 / wall_s
                } else {
                    0.0
                },
                p50_ms: percentile(&lat, 50.0),
                p95_ms: percentile(&lat, 95.0),
                p99_ms: percentile(&lat, 99.0),
                mixed_over_solo_p50: None,
            }
        })
        .filter(|row| row.requests > 0 || row.busy > 0)
        .collect())
}

/// Prints the loadgen table and writes `results/BENCH_server.json`,
/// then prints the per-domain fairness ratios when both phases ran.
fn emit_loadgen(rows: &[LoadRow], opts: &ServerCliOpts) -> Result<(), String> {
    let mut rep = Report::new(
        "server_loadgen",
        &[
            "domain",
            "mode",
            "conns",
            "pipeline",
            "requests",
            "busy",
            "qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "mixed_over_solo_p50",
        ],
    );
    // BENCH_server.json schema: machine fingerprint + rows, mirroring
    // BENCH_service.json — loadgen numbers without the machine are not
    // comparable across runs.
    let mut json = String::from("{\n\"machine\": ");
    json.push_str(&pigeonring_service::MachineFingerprint::detect().to_json());
    json.push_str(",\n\"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let ratio = row
            .mixed_over_solo_p50
            .map_or("-".to_string(), |r| format!("{r:.2}"));
        rep.row(&[
            row.domain.to_string(),
            row.mode.to_string(),
            opts.conns.to_string(),
            opts.pipeline.to_string(),
            row.requests.to_string(),
            row.busy.to_string(),
            f1(row.qps),
            f3(row.p50_ms),
            f3(row.p95_ms),
            f3(row.p99_ms),
            ratio,
        ]);
        let ratio_json = row.mixed_over_solo_p50.map_or(String::new(), |r| {
            format!(", \"mixed_over_solo_p50\": {r:.3}")
        });
        json.push_str(&format!(
            "  {{\"domain\": \"{}\", \"mode\": \"{}\", \"conns\": {}, \"pipeline\": {}, \
             \"shards\": {}, \"lane_depth\": {}, \"micro_batch\": {}, \"requests\": {}, \
             \"busy\": {}, \"qps\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"p99_ms\": {:.3}{}}}{}\n",
            row.domain,
            row.mode,
            opts.conns,
            opts.pipeline,
            opts.shards,
            opts.queue,
            opts.batch,
            row.requests,
            row.busy,
            row.qps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            ratio_json,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("]\n}");
    rep.emit();
    std::fs::create_dir_all("results").map_err(|e| format!("cannot create results/: {e}"))?;
    std::fs::write("results/BENCH_server.json", json)
        .map_err(|e| format!("cannot write results/BENCH_server.json: {e}"))?;
    println!("wrote results/BENCH_server.json ({} rows)", rows.len());
    for row in rows {
        if let Some(r) = row.mixed_over_solo_p50 {
            println!(
                "fairness: {} mixed/solo p50 = {:.2}x ({:.3} ms vs {:.3} ms)",
                row.domain,
                r,
                row.p50_ms,
                row.p50_ms / r
            );
        }
    }
    Ok(())
}

/// `repro server-smoke`: the CI gate. One process, an OS-assigned
/// loopback port; every domain's client-observed result hash must equal
/// a direct in-process run on the same engines, then a small loadgen
/// writes the artifact.
fn server_smoke(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    eprintln!(
        "server-smoke: building engines at {:?} scale...",
        opts.scale
    );
    let engines = Arc::new(EngineSet::build(spec));
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind loopback: {e}"))?;
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(opts.worker_threads()),
        opts.server_config(),
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = handle.addr();
    println!("server-smoke: serving on {addr}");

    // In-process reference pool: separate from the server's so the two
    // paths share nothing but the engines.
    let reference_pool = WorkerPool::new(opts.worker_threads());
    let mut rep = Report::new(
        "server_smoke",
        &["domain", "queries", "server_hash", "inproc_hash", "match"],
    );
    let mut mismatches = Vec::new();
    // Sample every domain's query set once; the smoke loop and the
    // loadgen below share it (sampling regenerates whole datasets).
    let query_sets = sample_all_queries(opts);
    for (domain, queries) in Domain::ALL.into_iter().zip(query_sets.iter()) {
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (server_hash, _, _) = run_query_set(&mut client, queries)?;
        let mut hasher = ResultHasher::new();
        for resp in engines.run(&reference_pool, queries.clone()) {
            match resp {
                Response::Results { ids, .. } => hasher.push(&ids),
                other => return Err(format!("in-process run failed for {domain}: {other:?}")),
            }
        }
        let inproc_hash = hasher.finish();
        let ok = server_hash == inproc_hash;
        if !ok {
            mismatches.push(domain);
        }
        rep.row(&[
            domain.to_string(),
            queries.len().to_string(),
            format!("{server_hash:016x}"),
            format!("{inproc_hash:016x}"),
            ok.to_string(),
        ]);
    }
    rep.emit();

    // The fairness experiment is part of the smoke artifact: solo
    // baselines per domain, then mixed load, so BENCH_server.json
    // records each domain's mixed_over_solo_p50 isolation ratio.
    let rows = run_fairness_loadgen(opts, addr, &query_sets)?;
    emit_loadgen(&rows, opts)?;
    handle.shutdown();

    if mismatches.is_empty() {
        println!("server-smoke: PASS (all four domains hash-identical over loopback)");
        Ok(())
    } else {
        Err(format!(
            "server-smoke: FAIL — server results differ from in-process for {mismatches:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn opts_parse_defaults_and_values() {
        let o = ServerCliOpts::from_args(&args(&[])).expect("defaults parse");
        assert_eq!(o.port, 7878);
        assert_eq!(o.shards, 2);
        assert_eq!(o.pipeline, 4);
        assert!(!o.mix);
        assert!(o.domain.is_none());
        let o = ServerCliOpts::from_args(&args(&[
            "--quick",
            "--port",
            "9000",
            "--domain",
            "graph",
            "--conns",
            "7",
            "--pipeline",
            "16",
            "--mix",
        ]))
        .expect("flags parse");
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.port, 9000);
        assert_eq!(o.conns, 7);
        assert_eq!(o.pipeline, 16);
        assert!(o.mix);
        assert_eq!(o.domain, Some(Domain::Graph));
    }

    #[test]
    fn out_of_range_port_is_an_error_not_a_wrap() {
        let err = ServerCliOpts::from_args(&args(&["--port", "70000"])).unwrap_err();
        assert!(err.contains("65535"), "{err}");
        let err = ServerCliOpts::from_args(&args(&["--port", "65536"])).unwrap_err();
        assert!(err.contains("65535"), "{err}");
        assert!(ServerCliOpts::from_args(&args(&["--port", "65535"])).is_ok());
    }

    #[test]
    fn unknown_flags_and_domains_rejected() {
        assert!(ServerCliOpts::from_args(&args(&["--ports", "1"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--domain", "sets"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--domain", "all"])).is_ok());
        assert!(ServerCliOpts::from_args(&args(&["--conns", "0"])).is_err());
    }
}
