//! The `repro serve` / `repro query` / `repro loadgen` /
//! `repro server-smoke` subcommands: the measurable end-to-end path of
//! the `pigeonring-server` network frontend.
//!
//! * `serve` builds the four domain engines ([`EngineSpec`] is
//!   deterministic per scale, so clients at the same scale hold the same
//!   datasets) and answers on a loopback-style TCP port until killed.
//! * `query` drives one domain's (or every domain's) standard query set
//!   through a running server and prints the `result_hash` fingerprint —
//!   comparable across processes and against `repro sweep`-style
//!   in-process runs.
//! * `loadgen` opens `--conns` concurrent connections, round-robins
//!   requests across all four domains, and reports throughput plus
//!   p50/p95/p99 latency into `results/BENCH_server.json`.
//! * `server-smoke` is the CI gate: in one process it starts a server on
//!   an OS-assigned loopback port, diffs every domain's client-observed
//!   `result_hash` against a direct in-process run on the *same*
//!   engines, then runs a small loadgen for the artifact. Any mismatch
//!   is a hard failure.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::Instant;

use pigeonring_server::{
    start, Client, Domain, DomainQuery, EngineSet, EngineSpec, Outcome, Response, ServerConfig,
};
use pigeonring_service::{percentile, ResultHasher, WorkerPool};

use crate::{f1, f3, Report, Scale};

/// Parsed flags shared by the server subcommands.
#[derive(Clone, Copy, Debug)]
pub struct ServerCliOpts {
    /// Dataset scale (`--quick` / `--paper`).
    pub scale: Scale,
    /// Shard count per domain index.
    pub shards: usize,
    /// Worker threads (defaults to `min(shards, cores)`).
    pub threads: Option<usize>,
    /// TCP port (`serve`/`query`/`loadgen`; `server-smoke` uses an
    /// OS-assigned port).
    pub port: u16,
    /// Admission-control queue depth `Q`.
    pub queue: usize,
    /// Micro-batch size `B` (max queued requests per pool dispatch).
    pub batch: usize,
    /// Concurrent loadgen connections.
    pub conns: usize,
    /// Loadgen requests per connection.
    pub requests: usize,
    /// Restrict `query` to one domain (`None` = all four).
    pub domain: Option<Domain>,
}

impl ServerCliOpts {
    /// Parses and validates the server-subcommand flag set; unknown
    /// flags and malformed values are errors, not silent defaults.
    pub fn from_args(args: &[String]) -> Result<ServerCliOpts, String> {
        const BOOL_FLAGS: [&str; 2] = ["--quick", "--paper"];
        const VALUE_FLAGS: [&str; 8] = [
            "--shards",
            "--threads",
            "--port",
            "--queue",
            "--batch",
            "--conns",
            "--requests",
            "--domain",
        ];
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if VALUE_FLAGS.contains(&a) {
                i += 2;
            } else if a.starts_with("--") && !BOOL_FLAGS.contains(&a) {
                return Err(format!(
                    "unknown flag {a:?}; known: --quick, --paper, --shards K, --threads T, \
                     --port P, --queue Q, --batch B, --conns C, --requests N, --domain D"
                ));
            } else {
                i += 1;
            }
        }
        let value_of = |flag: &str| -> Result<Option<usize>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .map(Some)
                    .ok_or_else(|| format!("{flag} requires a positive integer value")),
            }
        };
        let domain = match args.iter().position(|a| a == "--domain") {
            None => None,
            Some(i) => {
                let name = args
                    .get(i + 1)
                    .ok_or("--domain requires a value (hamming|editdist|setsim|graph|all)")?;
                if name == "all" {
                    None
                } else {
                    Some(Domain::parse_name(name).ok_or_else(|| {
                        format!(
                            "unknown domain {name:?}; expected hamming|editdist|setsim|graph|all"
                        )
                    })?)
                }
            }
        };
        let port = value_of("--port")?.unwrap_or(7878);
        if port > u16::MAX as usize {
            return Err(format!("--port must be at most 65535 (got {port})"));
        }
        Ok(ServerCliOpts {
            scale: Scale::from_args(args),
            shards: value_of("--shards")?.unwrap_or(2),
            threads: value_of("--threads")?,
            port: port as u16,
            queue: value_of("--queue")?.unwrap_or(64),
            batch: value_of("--batch")?.unwrap_or(16),
            conns: value_of("--conns")?.unwrap_or(4),
            requests: value_of("--requests")?.unwrap_or(64),
            domain,
        })
    }

    /// The deterministic engine spec for this scale and shard count.
    pub fn spec(&self) -> EngineSpec {
        let mut spec = match self.scale {
            Scale::Quick => EngineSpec::quick(),
            Scale::Full => EngineSpec::full(),
            Scale::Paper => EngineSpec::paper(),
        };
        spec.shards = self.shards;
        spec
    }

    /// Worker threads: explicit `--threads`, else
    /// `min(shards, hardware cores)`, always ≥ 1.
    pub fn worker_threads(&self) -> usize {
        self.threads
            .unwrap_or_else(|| {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                self.shards.min(cores)
            })
            .max(1)
    }

    fn server_config(&self) -> ServerConfig {
        ServerConfig {
            queue_depth: self.queue,
            micro_batch: self.batch,
        }
    }
}

/// Dispatches one of the server subcommands. `Err` means "print to
/// stderr and exit non-zero".
pub fn run(cmd: &str, args: &[String]) -> Result<(), String> {
    let opts = ServerCliOpts::from_args(args)?;
    match cmd {
        "serve" => serve(&opts),
        "query" => query(&opts),
        "loadgen" => loadgen(&opts),
        "server-smoke" => server_smoke(&opts),
        other => Err(format!("not a server subcommand: {other:?}")),
    }
}

/// `repro serve`: build engines, bind, answer until killed.
fn serve(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    eprintln!(
        "building engines (hamming {} / editdist {} / setsim {} / graph {} records, {} shards)...",
        spec.hamming_n, spec.edit_n, spec.set_n, spec.graph_n, spec.shards
    );
    let engines = Arc::new(EngineSet::build(spec));
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    let pool = WorkerPool::new(opts.worker_threads());
    let handle = start(listener, engines, pool, opts.server_config())
        .map_err(|e| format!("cannot start server: {e}"))?;
    println!(
        "pigeonring-server listening on {} (queue depth {}, micro-batch {}, {} workers)",
        handle.addr(),
        opts.queue,
        opts.batch,
        opts.worker_threads()
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

/// `repro query`: one domain's (or all domains') standard query set
/// through a running server; prints counts and the result hash.
fn query(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let domains: Vec<Domain> = match opts.domain {
        Some(d) => vec![d],
        None => Domain::ALL.to_vec(),
    };
    let mut rep = Report::new(
        "server_query",
        &["domain", "queries", "results", "busy", "result_hash"],
    );
    for domain in domains {
        let queries = spec.sample_queries(domain);
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (hash, results, busy) = run_query_set(&mut client, &queries)?;
        rep.row(&[
            domain.to_string(),
            queries.len().to_string(),
            results.to_string(),
            busy.to_string(),
            format!("{hash:016x}"),
        ]);
    }
    rep.emit();
    Ok(())
}

/// Sends every query on one connection (retrying Busy up to a bounded
/// number of times), returning the result hash, total result count, and
/// Busy-retry count. A server that stays Busy past the cap (saturated,
/// or shutting down — a closing queue also answers Busy) is an error,
/// not an infinite spin.
fn run_query_set(
    client: &mut Client,
    queries: &[DomainQuery],
) -> Result<(u64, usize, usize), String> {
    const MAX_BUSY_RETRIES: usize = 1_000;
    let mut hasher = ResultHasher::new();
    let mut results = 0usize;
    let mut busy = 0usize;
    for q in queries {
        let mut attempts = 0usize;
        loop {
            match client
                .search(q.clone())
                .map_err(|e| format!("query failed: {e}"))?
            {
                Outcome::Results(ids) => {
                    hasher.push(&ids);
                    results += ids.len();
                    break;
                }
                Outcome::Busy => {
                    busy += 1;
                    attempts += 1;
                    if attempts >= MAX_BUSY_RETRIES {
                        return Err(format!(
                            "server still busy after {MAX_BUSY_RETRIES} retries; \
                             is it overloaded or shutting down?"
                        ));
                    }
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            }
        }
    }
    Ok((hasher.finish(), results, busy))
}

/// One loadgen measurement for one domain.
struct LoadRow {
    domain: &'static str,
    requests: usize,
    busy: usize,
    qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// `repro loadgen`: concurrent connections round-robining all four
/// domains; reports throughput and tail latency, writes
/// `results/BENCH_server.json`.
fn loadgen(opts: &ServerCliOpts) -> Result<(), String> {
    let addr: SocketAddr = ([127, 0, 0, 1], opts.port).into();
    let rows = run_loadgen(opts, addr, sample_all_queries(opts))?;
    emit_loadgen(&rows, opts)
}

/// Every domain's standard query set for this scale, in `Domain::ALL`
/// order. Sampling regenerates each domain's dataset, so callers that
/// need the sets more than once (e.g. `server-smoke`) sample once and
/// share.
fn sample_all_queries(opts: &ServerCliOpts) -> Arc<Vec<Vec<DomainQuery>>> {
    let spec = opts.spec();
    Arc::new(
        Domain::ALL
            .iter()
            .map(|&d| spec.sample_queries(d))
            .collect(),
    )
}

/// Drives the load and aggregates per-domain latency samples.
fn run_loadgen(
    opts: &ServerCliOpts,
    addr: SocketAddr,
    query_sets: Arc<Vec<Vec<DomainQuery>>>,
) -> Result<Vec<LoadRow>, String> {
    let start = Instant::now();
    let workers: Vec<_> = (0..opts.conns)
        .map(|c| {
            let query_sets = Arc::clone(&query_sets);
            let requests = opts.requests;
            std::thread::spawn(move || -> Result<Vec<(usize, f64, bool)>, String> {
                let mut client =
                    Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
                let mut samples = Vec::with_capacity(requests);
                for i in 0..requests {
                    // Stagger domains across connections so every
                    // micro-batch the server forms is mixed.
                    let di = (i + c) % query_sets.len();
                    let q = &query_sets[di][(i / query_sets.len()) % query_sets[di].len()];
                    let t = Instant::now();
                    let outcome = client
                        .search(q.clone())
                        .map_err(|e| format!("loadgen request failed: {e}"))?;
                    let ms = t.elapsed().as_secs_f64() * 1e3;
                    samples.push((di, ms, matches!(outcome, Outcome::Busy)));
                }
                Ok(samples)
            })
        })
        .collect();
    let mut samples: Vec<(usize, f64, bool)> = Vec::new();
    for w in workers {
        samples.extend(w.join().map_err(|_| "loadgen thread panicked")??);
    }
    let wall_s = start.elapsed().as_secs_f64();

    Ok(Domain::ALL
        .iter()
        .enumerate()
        .map(|(di, &d)| {
            let mut lat: Vec<f64> = samples
                .iter()
                .filter(|(i, _, busy)| *i == di && !busy)
                .map(|(_, ms, _)| *ms)
                .collect();
            lat.sort_by(f64::total_cmp);
            let busy = samples.iter().filter(|(i, _, b)| *i == di && *b).count();
            LoadRow {
                domain: d.as_str(),
                requests: lat.len(),
                busy,
                qps: if wall_s > 0.0 {
                    lat.len() as f64 / wall_s
                } else {
                    0.0
                },
                p50_ms: percentile(&lat, 50.0),
                p95_ms: percentile(&lat, 95.0),
                p99_ms: percentile(&lat, 99.0),
            }
        })
        .collect())
}

/// Prints the loadgen table and writes `results/BENCH_server.json`.
fn emit_loadgen(rows: &[LoadRow], opts: &ServerCliOpts) -> Result<(), String> {
    let mut rep = Report::new(
        "server_loadgen",
        &[
            "domain", "conns", "requests", "busy", "qps", "p50_ms", "p95_ms", "p99_ms",
        ],
    );
    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        rep.row(&[
            row.domain.to_string(),
            opts.conns.to_string(),
            row.requests.to_string(),
            row.busy.to_string(),
            f1(row.qps),
            f3(row.p50_ms),
            f3(row.p95_ms),
            f3(row.p99_ms),
        ]);
        json.push_str(&format!(
            "  {{\"domain\": \"{}\", \"conns\": {}, \"shards\": {}, \"queue_depth\": {}, \
             \"micro_batch\": {}, \"requests\": {}, \"busy\": {}, \"qps\": {:.3}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            row.domain,
            opts.conns,
            opts.shards,
            opts.queue,
            opts.batch,
            row.requests,
            row.busy,
            row.qps,
            row.p50_ms,
            row.p95_ms,
            row.p99_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push(']');
    rep.emit();
    std::fs::create_dir_all("results").map_err(|e| format!("cannot create results/: {e}"))?;
    std::fs::write("results/BENCH_server.json", json)
        .map_err(|e| format!("cannot write results/BENCH_server.json: {e}"))?;
    println!("wrote results/BENCH_server.json ({} rows)", rows.len());
    Ok(())
}

/// `repro server-smoke`: the CI gate. One process, an OS-assigned
/// loopback port; every domain's client-observed result hash must equal
/// a direct in-process run on the same engines, then a small loadgen
/// writes the artifact.
fn server_smoke(opts: &ServerCliOpts) -> Result<(), String> {
    let spec = opts.spec();
    eprintln!(
        "server-smoke: building engines at {:?} scale...",
        opts.scale
    );
    let engines = Arc::new(EngineSet::build(spec));
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind loopback: {e}"))?;
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(opts.worker_threads()),
        opts.server_config(),
    )
    .map_err(|e| format!("cannot start server: {e}"))?;
    let addr = handle.addr();
    println!("server-smoke: serving on {addr}");

    // In-process reference pool: separate from the server's so the two
    // paths share nothing but the engines.
    let reference_pool = WorkerPool::new(opts.worker_threads());
    let mut rep = Report::new(
        "server_smoke",
        &["domain", "queries", "server_hash", "inproc_hash", "match"],
    );
    let mut mismatches = Vec::new();
    // Sample every domain's query set once; the smoke loop and the
    // loadgen below share it (sampling regenerates whole datasets).
    let query_sets = sample_all_queries(opts);
    for (domain, queries) in Domain::ALL.into_iter().zip(query_sets.iter()) {
        let mut client =
            Client::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        let (server_hash, _, _) = run_query_set(&mut client, queries)?;
        let mut hasher = ResultHasher::new();
        for resp in engines.run(&reference_pool, queries.clone()) {
            match resp {
                Response::Results { ids } => hasher.push(&ids),
                other => return Err(format!("in-process run failed for {domain}: {other:?}")),
            }
        }
        let inproc_hash = hasher.finish();
        let ok = server_hash == inproc_hash;
        if !ok {
            mismatches.push(domain);
        }
        rep.row(&[
            domain.to_string(),
            queries.len().to_string(),
            format!("{server_hash:016x}"),
            format!("{inproc_hash:016x}"),
            ok.to_string(),
        ]);
    }
    rep.emit();

    let rows = run_loadgen(opts, addr, query_sets)?;
    emit_loadgen(&rows, opts)?;
    handle.shutdown();

    if mismatches.is_empty() {
        println!("server-smoke: PASS (all four domains hash-identical over loopback)");
        Ok(())
    } else {
        Err(format!(
            "server-smoke: FAIL — server results differ from in-process for {mismatches:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn opts_parse_defaults_and_values() {
        let o = ServerCliOpts::from_args(&args(&[])).expect("defaults parse");
        assert_eq!(o.port, 7878);
        assert_eq!(o.shards, 2);
        assert!(o.domain.is_none());
        let o = ServerCliOpts::from_args(&args(&[
            "--quick", "--port", "9000", "--domain", "graph", "--conns", "7",
        ]))
        .expect("flags parse");
        assert_eq!(o.scale, Scale::Quick);
        assert_eq!(o.port, 9000);
        assert_eq!(o.conns, 7);
        assert_eq!(o.domain, Some(Domain::Graph));
    }

    #[test]
    fn out_of_range_port_is_an_error_not_a_wrap() {
        let err = ServerCliOpts::from_args(&args(&["--port", "70000"])).unwrap_err();
        assert!(err.contains("65535"), "{err}");
        let err = ServerCliOpts::from_args(&args(&["--port", "65536"])).unwrap_err();
        assert!(err.contains("65535"), "{err}");
        assert!(ServerCliOpts::from_args(&args(&["--port", "65535"])).is_ok());
    }

    #[test]
    fn unknown_flags_and_domains_rejected() {
        assert!(ServerCliOpts::from_args(&args(&["--ports", "1"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--domain", "sets"])).is_err());
        assert!(ServerCliOpts::from_args(&args(&["--domain", "all"])).is_ok());
        assert!(ServerCliOpts::from_args(&args(&["--conns", "0"])).is_err());
    }
}
