//! Shared harness for the figure-reproduction binary and the Criterion
//! benches: reduced-scale dataset presets, timing helpers, and tabular /
//! CSV reporting.
//!
//! Scale note (DESIGN.md §4): dataset sizes are 10–100× smaller than the
//! paper's so `repro all` finishes in minutes on one machine. `Scale`
//! controls the reduction; `Scale::Quick` is used by the smoke tests.

use std::fmt::Write as _;
use std::time::Instant;

pub mod server_cli;

/// Dataset scale for the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (CI / tests).
    Quick,
    /// The default reproduction scale (minutes for `repro all`).
    Full,
    /// Paper-§8-scale dataset sizes (10× `Full`, i.e. the order of the
    /// paper's real datasets); meant for the sharded service layer
    /// (`repro sweep --paper`), where shard parallelism keeps the run
    /// tractable.
    Paper,
}

impl Scale {
    /// Parses `--quick` / `--paper` style flags (`--quick` wins if both
    /// are given).
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else {
            Scale::Full
        }
    }

    /// Scales a full-size count for this scale.
    pub fn n(&self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 10).max(50),
            Scale::Full => full,
            Scale::Paper => full.saturating_mul(10),
        }
    }

    /// Number of queries to run.
    pub fn queries(&self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 5).max(5),
            Scale::Full => full,
            Scale::Paper => full.saturating_mul(2),
        }
    }
}

/// Service-layer options shared by the `repro` experiments:
/// `--shards K --batch B [--threads T]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceOpts {
    /// Requested shard count (`None` when `--shards` was not given — the
    /// experiments then use their classic unsharded path).
    pub shards: Option<usize>,
    /// Queries per batch fanned out to the worker pool.
    pub batch: usize,
    /// Worker threads (defaults to the shard count).
    pub threads: Option<usize>,
}

impl ServiceOpts {
    /// Default batch size when `--batch` is absent.
    pub const DEFAULT_BATCH: usize = 16;

    /// Parses `--shards K`, `--batch B`, and `--threads T` value flags,
    /// reporting a missing or non-numeric value as an error so CLI
    /// callers can print it and exit cleanly.
    pub fn from_args(args: &[String]) -> Result<ServiceOpts, String> {
        let value_of = |flag: &str| -> Result<Option<usize>, String> {
            match args.iter().position(|a| a == flag) {
                None => Ok(None),
                Some(i) => args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .map(Some)
                    .ok_or_else(|| format!("{flag} requires a positive integer value")),
            }
        };
        Ok(ServiceOpts {
            shards: value_of("--shards")?,
            batch: value_of("--batch")?.unwrap_or(Self::DEFAULT_BATCH),
            threads: value_of("--threads")?,
        })
    }

    /// Validates that every `--flag` in `args` is one the harness knows
    /// (`--quick`, `--paper`, or a value flag), so a typo like `--shard 4`
    /// or `--threads=2` fails loudly instead of silently running the
    /// default configuration.
    pub fn validate_flags(args: &[String]) -> Result<(), String> {
        const BOOL_FLAGS: [&str; 2] = ["--quick", "--paper"];
        const VALUE_FLAGS: [&str; 3] = ["--shards", "--batch", "--threads"];
        let mut i = 0;
        while i < args.len() {
            let a = args[i].as_str();
            if VALUE_FLAGS.contains(&a) {
                i += 2; // flag + value (value checked by from_args)
            } else if a.starts_with("--") && !BOOL_FLAGS.contains(&a) {
                return Err(format!(
                    "unknown flag {a:?}; known flags: --quick, --paper, \
                     --shards K, --batch B, --threads T"
                ));
            } else {
                i += 1;
            }
        }
        Ok(())
    }

    /// Worker threads to use for `shards` shards: the explicit
    /// `--threads` value, else `min(shards, hardware parallelism)` —
    /// spawning more workers than cores only adds overhead (and this
    /// repo's CI containers are often single-core). Core detection is
    /// the same [`pigeonring_service::machine`] probe that the benchmark
    /// artifacts record, so what ran and what was recorded agree.
    pub fn threads_for(&self, shards: usize) -> usize {
        self.threads
            .unwrap_or_else(|| shards.min(pigeonring_service::cores()))
            .max(1)
    }
}

/// Measures average per-query wall time in milliseconds over a closure
/// invoked once per query id.
pub fn time_per_query<T>(query_ids: &[usize], mut run: impl FnMut(usize) -> T) -> (f64, Vec<T>) {
    let start = Instant::now();
    let outs: Vec<T> = query_ids.iter().map(|&qid| run(qid)).collect();
    let total = start.elapsed().as_secs_f64() * 1e3;
    (total / query_ids.len().max(1) as f64, outs)
}

/// Accumulates rows and renders both an aligned console table and a CSV
/// file under `results/`.
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report for one experiment (e.g. `"fig5_gist"`).
    pub fn new(name: &str, header: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: formats mixed cells.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv`. IO errors are
    /// reported to stderr but do not abort the run.
    pub fn emit(&self) {
        print!("{}", self.render());
        if let Err(e) = std::fs::create_dir_all("results") {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        let quote = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut csv = self.header.join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        let path = format!("results/{}.csv", self.name);
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("warning: cannot write {path}: {e}");
        }
    }
}

/// Formats a float with 3 significant decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal for table cells.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("t", &["a", "long_header"]);
        r.row(&["1".into(), "2".into()]);
        let s = r.render();
        assert!(s.contains("== t =="));
        assert!(s.contains("long_header"));
    }

    #[test]
    fn scale_reduces_counts() {
        assert_eq!(Scale::Quick.n(10_000), 1000);
        assert_eq!(Scale::Full.n(10_000), 10_000);
        assert_eq!(Scale::Paper.n(10_000), 100_000);
        assert!(Scale::Quick.queries(50) >= 5);
    }

    #[test]
    fn scale_flag_precedence() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(Scale::from_args(&args(&["fig7"])), Scale::Full);
        assert_eq!(Scale::from_args(&args(&["fig7", "--paper"])), Scale::Paper);
        assert_eq!(
            Scale::from_args(&args(&["fig7", "--paper", "--quick"])),
            Scale::Quick
        );
    }

    #[test]
    fn service_opts_parse() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        let o = ServiceOpts::from_args(&args(&["fig7"])).unwrap();
        assert_eq!(o.shards, None);
        assert_eq!(o.batch, ServiceOpts::DEFAULT_BATCH);
        // Default thread count is capped by both the shard count and the
        // machine's cores, and is always at least 1.
        assert!((1..=4).contains(&o.threads_for(4)));
        let o = ServiceOpts::from_args(&args(&["fig7", "--shards", "4", "--batch", "8"])).unwrap();
        assert_eq!(o.shards, Some(4));
        assert_eq!(o.batch, 8);
        let o =
            ServiceOpts::from_args(&args(&["sweep", "--threads", "2", "--shards", "8"])).unwrap();
        assert_eq!(o.threads_for(8), 2);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert!(ServiceOpts::validate_flags(&args(&["fig7", "--quick", "--shards", "2"])).is_ok());
        assert!(ServiceOpts::validate_flags(&args(&["fig7", "--shard", "2"])).is_err());
        assert!(ServiceOpts::validate_flags(&args(&["sweep", "--threads=2"])).is_err());
        assert!(ServiceOpts::validate_flags(&args(&["all", "--paper"])).is_ok());
    }

    #[test]
    fn service_opts_reject_bad_value() {
        let args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        let err = ServiceOpts::from_args(&args(&["fig7", "--shards", "zero"])).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        // Missing value (next arg is another flag) is also an error.
        assert!(ServiceOpts::from_args(&args(&["fig7", "--shards", "--quick"])).is_err());
    }

    #[test]
    fn time_per_query_runs_all() {
        let ids = vec![0, 1, 2, 3];
        let (ms, outs) = time_per_query(&ids, |q| q * 2);
        assert!(ms >= 0.0);
        assert_eq!(outs, vec![0, 2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["only-one".into()]);
    }
}
