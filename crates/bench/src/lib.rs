//! Shared harness for the figure-reproduction binary and the Criterion
//! benches: reduced-scale dataset presets, timing helpers, and tabular /
//! CSV reporting.
//!
//! Scale note (DESIGN.md §4): dataset sizes are 10–100× smaller than the
//! paper's so `repro all` finishes in minutes on one machine. `Scale`
//! controls the reduction; `Scale::Quick` is used by the smoke tests.

use std::fmt::Write as _;
use std::time::Instant;

/// Dataset scale for the harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long smoke runs (CI / tests).
    Quick,
    /// The default reproduction scale (minutes for `repro all`).
    Full,
}

impl Scale {
    /// Parses `--quick` style flags.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }

    /// Scales a full-size count down for quick runs.
    pub fn n(&self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 10).max(50),
            Scale::Full => full,
        }
    }

    /// Number of queries to run.
    pub fn queries(&self, full: usize) -> usize {
        match self {
            Scale::Quick => (full / 5).max(5),
            Scale::Full => full,
        }
    }
}

/// Measures average per-query wall time in milliseconds over a closure
/// invoked once per query id.
pub fn time_per_query<T>(query_ids: &[usize], mut run: impl FnMut(usize) -> T) -> (f64, Vec<T>) {
    let start = Instant::now();
    let outs: Vec<T> = query_ids.iter().map(|&qid| run(qid)).collect();
    let total = start.elapsed().as_secs_f64() * 1e3;
    (total / query_ids.len().max(1) as f64, outs)
}

/// Accumulates rows and renders both an aligned console table and a CSV
/// file under `results/`.
pub struct Report {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Starts a report for one experiment (e.g. `"fig5_gist"`).
    pub fn new(name: &str, header: &[&str]) -> Self {
        Report {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: formats mixed cells.
    pub fn rowf(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Renders the aligned console table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.name);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints the table and writes `results/<name>.csv`. IO errors are
    /// reported to stderr but do not abort the run.
    pub fn emit(&self) {
        print!("{}", self.render());
        if let Err(e) = std::fs::create_dir_all("results") {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        let quote = |c: &String| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut csv = self.header.join(",") + "\n";
        for row in &self.rows {
            csv.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            csv.push('\n');
        }
        let path = format!("results/{}.csv", self.name);
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("warning: cannot write {path}: {e}");
        }
    }
}

/// Formats a float with 3 significant decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 1 decimal for table cells.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("t", &["a", "long_header"]);
        r.row(&["1".into(), "2".into()]);
        let s = r.render();
        assert!(s.contains("== t =="));
        assert!(s.contains("long_header"));
    }

    #[test]
    fn scale_reduces_counts() {
        assert_eq!(Scale::Quick.n(10_000), 1000);
        assert_eq!(Scale::Full.n(10_000), 10_000);
        assert!(Scale::Quick.queries(50) >= 5);
    }

    #[test]
    fn time_per_query_runs_all() {
        let ids = vec![0, 1, 2, 3];
        let (ms, outs) = time_per_query(&ids, |q| q * 2);
        assert!(ms >= 0.0);
        assert_eq!(outs, vec![0, 2, 4, 6]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn row_arity_checked() {
        let mut r = Report::new("t", &["a", "b"]);
        r.row(&["only-one".into()]);
    }
}
