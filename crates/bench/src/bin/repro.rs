//! Regenerates every evaluation artifact of the paper (Figures 2 and
//! 5–12) plus two ablations, at reduced dataset scale (DESIGN.md §5),
//! and drives the sharded service layer.
//!
//! ```text
//! repro <fig2|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|ablate-skip|ablate-alloc|sweep|all>
//!       [--quick | --paper] [--shards K] [--batch B] [--threads T]
//! repro <serve|query|loadgen|stats|trace|server-smoke>
//!       [--quick | --paper] [--shards K] [--threads T] [--port P] [--queue Q]
//!       [--batch B] [--conns C] [--requests N] [--pipeline P] [--mix] [--domain D]
//!       [--raw] [--slow-query-ms MS] [--slow-query-ring N] [--metrics-dump PATH]
//!       [--metrics-interval-secs S] [--trace-sample N] [--trace-buffer M]
//!       [--watch SECS] [--chrome PATH]
//! ```
//!
//! Each experiment prints an aligned table and writes a CSV under
//! `results/`. Absolute numbers differ from the paper (synthetic data,
//! different machine); the *shape* — who wins, candidate monotonicity,
//! U-shaped total time in `l` — is the reproduction target and is
//! recorded in EXPERIMENTS.md.
//!
//! With `--shards K`, `fig7` routes through the `pigeonring-service`
//! [`ShardedIndex`] (batched, shard-parallel); its table gains a
//! `result_hash` column — equal hashes across `K` certify identical
//! result sets. `sweep` runs all four domain engines through the service
//! layer across shard counts and writes `results/BENCH_service.json`
//! (per-shard throughput, uploaded by CI).

use std::sync::Arc;
use std::time::Instant;

use pigeonring_bench::{f1, f3, time_per_query, Report, Scale, ServiceOpts};
use pigeonring_core::analysis::{DiscreteDist, FilterAnalysis};
use pigeonring_datagen::{sample_query_ids, GraphConfig, SetConfig, StringConfig, VectorConfig};
use pigeonring_editdist::{
    EditParams, GramDictionary, GramOrder, Pivotal, QGramCollection, RingEdit,
};
use pigeonring_graph::{Graph, GraphParams, Pars, RingGraph};
use pigeonring_hamming::{AllocationStrategy, BitVector, HammingParams, RingHamming};
use pigeonring_service::{ShardedIndex, Sweep};
use pigeonring_setsim::{
    AdaptSearch, Collection, PartAlloc, RingSetSim, SetParams, Threshold, TokenDictionary,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // The server subcommands own their flag set (ports, connection
    // counts, queue depth) and are parsed by the server CLI module.
    if let Some(cmd) = args.first().map(String::as_str) {
        if matches!(
            cmd,
            "serve" | "query" | "loadgen" | "stats" | "trace" | "server-smoke"
        ) {
            if let Err(e) = pigeonring_bench::server_cli::run(cmd, &args[1..]) {
                eprintln!("{e}");
                std::process::exit(1);
            }
            return;
        }
    }
    if let Err(e) = ServiceOpts::validate_flags(&args[args.len().min(1)..]) {
        eprintln!("{e}");
        std::process::exit(2);
    }
    let scale = Scale::from_args(&args);
    let opts = ServiceOpts::from_args(&args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    // Only fig7, sweep, and all route through the service layer; reject
    // service flags anywhere they would be silently ignored.
    let service_aware = matches!(cmd, "fig7" | "sweep" | "all");
    let batch_or_threads_given = args.iter().any(|a| a == "--batch" || a == "--threads");
    if (opts.shards.is_some() || batch_or_threads_given) && !service_aware {
        eprintln!("--shards/--batch/--threads only apply to fig7, sweep, and all (got {cmd:?})");
        std::process::exit(2);
    }
    // fig7 without --shards runs the classic unsharded path, which reads
    // no service options at all.
    if cmd == "fig7" && opts.shards.is_none() && batch_or_threads_given {
        eprintln!("fig7 ignores --batch/--threads unless --shards K selects the service path");
        std::process::exit(2);
    }
    match cmd {
        "fig2" => fig2(),
        "fig5" => fig5(scale),
        "fig6" => fig6(scale),
        "fig7" => fig7(scale, &opts),
        "fig8" => fig8(scale),
        "fig9" => fig9(scale),
        "fig10" => fig10(scale),
        "fig11" => fig11(scale),
        "fig12" => fig12(scale),
        "ablate-skip" => ablate_skip(scale),
        "ablate-alloc" => ablate_alloc(scale),
        "sweep" => sweep(scale, &opts),
        "all" => {
            fig2();
            fig5(scale);
            fig6(scale);
            // Always refresh the classic fig7 paper artifact; with
            // --shards also run the sharded service-layer variant.
            fig7_classic(scale);
            if opts.shards.is_some() {
                fig7(scale, &opts);
            }
            fig8(scale);
            fig9(scale);
            fig10(scale);
            fig11(scale);
            fig12(scale);
            ablate_skip(scale);
            ablate_alloc(scale);
            sweep(scale, &opts);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected fig2|fig5..fig12|ablate-skip|ablate-alloc|sweep|all \
                 [--quick|--paper] [--shards K] [--batch B] [--threads T], or a server subcommand \
                 serve|query|loadgen|stats|trace|server-smoke [--port P] [--queue Q] [--conns C] \
                 [--requests N] [--pipeline P] [--mix] [--domain D] [--raw] [--slow-query-ms MS] \
                 [--slow-query-ring N] [--metrics-dump PATH] [--metrics-interval-secs S] \
                 [--trace-sample N] [--trace-buffer M] [--watch SECS] [--chrome PATH]"
            );
            std::process::exit(2);
        }
    }
}

// ---------------------------------------------------------------- fig 2

/// Figure 2: analytical #candidates/#results vs chain length for Hamming
/// distance search, d = 256. The paper evaluates "a synthetic dataset
/// with uniform distribution"; we emit both readings — uniform random
/// *bits* (box ~ Binomial(d/m, ½)) and uniform *box values* (box ~
/// U[0, d/m]); the latter matches the paper's 10⁻²..10⁶ y-range.
fn fig2() {
    let mut rep = Report::new(
        "fig2_analysis",
        &[
            "box_dist",
            "setting",
            "l",
            "cand_over_res",
            "pr_cand",
            "pr_res",
        ],
    );
    for (tau, m) in [(96i64, 16usize), (64, 16), (48, 8), (32, 8)] {
        let w = 256 / m;
        let dists = [
            ("binomial", DiscreteDist::binomial(w, 0.5)),
            ("uniform", DiscreteDist::from_weights(&vec![1.0; w + 1])),
        ];
        for (name, dist) in dists {
            let fa = FilterAnalysis::new(dist, m, tau);
            let res = fa.result_prob();
            for l in 1..=7usize {
                rep.row(&[
                    name.into(),
                    format!("tau={tau},m={m}"),
                    l.to_string(),
                    format!("{:.4e}", fa.cand_over_res(l)),
                    format!("{:.4e}", fa.cand_prob(l)),
                    format!("{res:.4e}"),
                ]);
            }
        }
    }
    rep.emit();
}

// ------------------------------------------------------------ fig 5 / 9

struct HammingSetup {
    name: &'static str,
    data: Vec<BitVector>,
    queries: Vec<usize>,
    m: usize,
}

fn hamming_setup(scale: Scale) -> Vec<HammingSetup> {
    // Large enough that per-candidate verification (not the shared index
    // probe) carries the cost difference, as in the paper's regime.
    let gist = VectorConfig::gist_like(scale.n(100_000)).generate();
    let sift = VectorConfig::sift_like(scale.n(50_000)).generate();
    let gq = sample_query_ids(gist.len(), scale.queries(50), 1);
    let sq = sample_query_ids(sift.len(), scale.queries(50), 2);
    vec![
        HammingSetup {
            name: "gist",
            data: gist,
            queries: gq,
            m: 16,
        },
        HammingSetup {
            name: "sift",
            data: sift,
            queries: sq,
            m: 32,
        },
    ]
}

/// Figure 5: effect of chain length on Hamming distance search.
fn fig5(scale: Scale) {
    let mut rep = Report::new(
        "fig5_hamming_chain",
        &[
            "dataset", "tau", "l", "avg_cand", "avg_res", "cand_ms", "total_ms",
        ],
    );
    for setup in hamming_setup(scale) {
        let taus: [u32; 2] = if setup.name == "gist" {
            [48, 64]
        } else {
            [96, 128]
        };
        let mut eng =
            RingHamming::build(setup.data.clone(), setup.m, AllocationStrategy::CostModel);
        for tau in taus {
            for l in 1..=8usize {
                let (cand_ms, _cstats) = time_per_query(&setup.queries, |qid| {
                    let q = setup.data[qid].clone();
                    eng.candidates(&q, tau, l).1
                });
                let (total_ms, full) = time_per_query(&setup.queries, |qid| {
                    let q = setup.data[qid].clone();
                    eng.search(&q, tau, l).1
                });
                let nq = setup.queries.len() as f64;
                // Cand and res columns both come from the full-search
                // run (the candidates-only pass exists for cand_ms).
                let avg_cand = full.iter().map(|s| s.candidates as f64).sum::<f64>() / nq;
                let avg_res = full.iter().map(|s| s.results as f64).sum::<f64>() / nq;
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    l.to_string(),
                    f1(avg_cand),
                    f1(avg_res),
                    f3(cand_ms),
                    f3(total_ms),
                ]);
            }
        }
    }
    rep.emit();
}

/// Figure 9: Ring (best l) vs GPH (l = 1) over the threshold sweep.
fn fig9(scale: Scale) {
    let mut rep = Report::new(
        "fig9_hamming_vs_gph",
        &[
            "dataset", "tau", "engine", "avg_cand", "avg_res", "total_ms",
        ],
    );
    for setup in hamming_setup(scale) {
        let taus: Vec<u32> = if setup.name == "gist" {
            (1..=8).map(|k| k * 8).collect()
        } else {
            (1..=8).map(|k| k * 16).collect()
        };
        let mut eng =
            RingHamming::build(setup.data.clone(), setup.m, AllocationStrategy::CostModel);
        for tau in taus {
            for (engine, l) in [("GPH", 1usize), ("Ring", 5)] {
                let (total_ms, stats) = time_per_query(&setup.queries, |qid| {
                    let q = setup.data[qid].clone();
                    eng.search(&q, tau, l).1
                });
                let nq = setup.queries.len() as f64;
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    engine.into(),
                    f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                    f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                    f3(total_ms),
                ]);
            }
        }
    }
    rep.emit();
}

// ----------------------------------------------------------- fig 6 / 10

struct SetSetup {
    name: &'static str,
    collection: Collection,
    queries: Vec<usize>,
}

fn set_setup(scale: Scale) -> Vec<SetSetup> {
    let enron = Collection::new(SetConfig::enron_like(scale.n(5_000)).generate());
    let dblp = Collection::new(SetConfig::dblp_like(scale.n(20_000)).generate());
    let eq = sample_query_ids(enron.len(), scale.queries(50), 3);
    let dq = sample_query_ids(dblp.len(), scale.queries(50), 4);
    vec![
        SetSetup {
            name: "enron",
            collection: enron,
            queries: eq,
        },
        SetSetup {
            name: "dblp",
            collection: dblp,
            queries: dq,
        },
    ]
}

/// Figure 6: effect of chain length on set similarity search.
fn fig6(scale: Scale) {
    let mut rep = Report::new(
        "fig6_setsim_chain",
        &[
            "dataset", "tau", "l", "avg_cand", "avg_res", "cand_ms", "total_ms",
        ],
    );
    for setup in set_setup(scale) {
        for tau in [0.7f64, 0.8] {
            let mut eng = RingSetSim::build(setup.collection.clone(), Threshold::jaccard(tau), 5);
            for l in 1..=3usize {
                let (cand_ms, _cstats) = time_per_query(&setup.queries, |qid| {
                    let q = setup.collection.record(qid).to_vec();
                    eng.candidates(&q, l).1
                });
                let (total_ms, stats) = time_per_query(&setup.queries, |qid| {
                    let q = setup.collection.record(qid).to_vec();
                    eng.search(&q, l).1
                });
                let nq = setup.queries.len() as f64;
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    l.to_string(),
                    f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                    f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                    f3(cand_ms),
                    f3(total_ms),
                ]);
            }
        }
    }
    rep.emit();
}

/// Figure 10: Ring vs pkwise vs AdaptSearch vs PartAlloc over τ.
fn fig10(scale: Scale) {
    let mut rep = Report::new(
        "fig10_setsim_vs_baselines",
        &[
            "dataset",
            "tau",
            "engine",
            "avg_cand",
            "avg_res",
            "filter_work",
            "total_ms",
        ],
    );
    for setup in set_setup(scale) {
        for tau in [0.7f64, 0.75, 0.8, 0.85, 0.9, 0.95] {
            let t = Threshold::jaccard(tau);
            let nq = setup.queries.len() as f64;
            // Ring (l = 2) and pkwise (l = 1) share an engine.
            let mut ring = RingSetSim::build(setup.collection.clone(), t, 5);
            for (engine, l) in [("pkwise", 1usize), ("Ring", 2)] {
                let (ms, stats) = time_per_query(&setup.queries, |qid| {
                    let q = setup.collection.record(qid).to_vec();
                    ring.search(&q, l).1
                });
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    engine.into(),
                    f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                    f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                    f1(stats
                        .iter()
                        .map(|s| (s.sig_probes + s.boxes_checked) as f64)
                        .sum::<f64>()
                        / nq),
                    f3(ms),
                ]);
            }
            let mut adapt = AdaptSearch::build(setup.collection.clone(), t);
            let (ms, stats) = time_per_query(&setup.queries, |qid| {
                let q = setup.collection.record(qid).to_vec();
                adapt.search(&q).1
            });
            rep.row(&[
                setup.name.into(),
                tau.to_string(),
                "AdaptSearch".into(),
                f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.postings_scanned as f64).sum::<f64>() / nq),
                f3(ms),
            ]);
            let mut part = PartAlloc::build(setup.collection.clone(), t);
            let (ms, stats) = time_per_query(&setup.queries, |qid| {
                let q = setup.collection.record(qid).to_vec();
                part.search(&q).1
            });
            rep.row(&[
                setup.name.into(),
                tau.to_string(),
                "PartAlloc".into(),
                f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.segments_hashed as f64).sum::<f64>() / nq),
                f3(ms),
            ]);
        }
    }
    rep.emit();
}

// ----------------------------------------------------------- fig 7 / 11

struct StringSetup {
    name: &'static str,
    strings: Vec<Vec<u8>>,
    queries: Vec<usize>,
}

fn string_setup(scale: Scale) -> Vec<StringSetup> {
    let imdb = StringConfig::imdb_like(scale.n(20_000)).generate();
    let pubmed = StringConfig::pubmed_like(scale.n(5_000)).generate();
    let iq = sample_query_ids(imdb.len(), scale.queries(50), 5);
    let pq = sample_query_ids(pubmed.len(), scale.queries(30), 6);
    vec![
        StringSetup {
            name: "imdb",
            strings: imdb,
            queries: iq,
        },
        StringSetup {
            name: "pubmed",
            strings: pubmed,
            queries: pq,
        },
    ]
}

/// The paper's per-(dataset, τ) q-gram lengths (§8.1).
fn kappa_for(name: &str, tau: usize) -> usize {
    match (name, tau) {
        ("imdb", 1) => 3,
        ("imdb", _) => 2,
        ("pubmed", 4) => 8,
        ("pubmed", 6) | ("pubmed", 8) => 6,
        ("pubmed", _) => 4,
        _ => 2,
    }
}

/// Figure 7: effect of chain length on string edit distance search.
/// With `--shards K` the sharded service-layer variant runs instead.
fn fig7(scale: Scale, opts: &ServiceOpts) {
    match opts.shards {
        Some(k) => fig7_sharded(scale, opts, k),
        None => fig7_classic(scale),
    }
}

/// Classic single-threaded fig7: per-query timing of the unsharded
/// engine.
fn fig7_classic(scale: Scale) {
    let mut rep = Report::new(
        "fig7_editdist_chain",
        &[
            "dataset", "tau", "l", "avg_cand", "avg_res", "cand_ms", "total_ms",
        ],
    );
    for setup in string_setup(scale) {
        let taus: [usize; 2] = if setup.name == "imdb" {
            [2, 4]
        } else {
            [6, 12]
        };
        for tau in taus {
            let kappa = kappa_for(setup.name, tau);
            let coll = QGramCollection::build(setup.strings.clone(), kappa, GramOrder::Frequency);
            let mut eng = RingEdit::build(coll, tau);
            for l in 1..=4usize.min(tau + 1) {
                let (cand_ms, _cstats) = time_per_query(&setup.queries, |qid| {
                    eng.candidates(&setup.strings[qid].clone(), l).1
                });
                let (total_ms, stats) = time_per_query(&setup.queries, |qid| {
                    eng.search(&setup.strings[qid].clone(), l).1
                });
                let nq = setup.queries.len() as f64;
                // Both the cand and res columns come from the same (full
                // search) run, so the table rows are internally
                // consistent; the candidates-only pass is kept purely
                // for the `cand_ms` timing.
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    l.to_string(),
                    f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                    f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                    f3(cand_ms),
                    f3(total_ms),
                ]);
            }
        }
    }
    rep.emit();
}

/// Sharded fig7 through the service layer: same datasets, same `τ`/`l`
/// grid, but queries run as batches over a `K`-shard worker pool. The
/// `result_hash` column fingerprints every query's result ids — equal
/// hashes across different `--shards K` runs certify identical result
/// sets (the service-layer acceptance check).
///
/// The index is built dictionary-first (one corpus-wide gram dictionary,
/// shard-local postings), so each query is planned **once per `τ`** —
/// the plan is shared across all `K` shards *and* the whole `l` sweep
/// via [`Sweep::run_with_plans`].
fn fig7_sharded(scale: Scale, opts: &ServiceOpts, shards: usize) {
    let threads = opts.threads_for(shards);
    let mut rep = Report::new(
        &format!("fig7_editdist_chain_shards{shards}"),
        &[
            "dataset",
            "tau",
            "l",
            "shards",
            "batch",
            "avg_cand",
            "avg_res",
            "result_hash",
            "ms_per_query",
            "plan_us_per_q",
            "qps",
        ],
    );
    // The Sweep accumulator is used here only for its batched
    // timing/result-hash logic; its rows are reported through `rep`, not
    // through BENCH_service.json (which only the `sweep` subcommand
    // writes).
    let mut sweep = Sweep::new();
    for setup in string_setup(scale) {
        let taus: [usize; 2] = if setup.name == "imdb" {
            [2, 4]
        } else {
            [6, 12]
        };
        let queries: Vec<Vec<u8>> = setup
            .queries
            .iter()
            .map(|&qid| setup.strings[qid].clone())
            .collect();
        for tau in taus {
            let kappa = kappa_for(setup.name, tau);
            let index = ShardedIndex::build_global(
                setup.strings.clone(),
                shards,
                |corpus| Arc::new(GramDictionary::build(corpus, kappa, GramOrder::Frequency)),
                |dict, shard| {
                    RingEdit::build(
                        QGramCollection::with_dictionary(shard, Arc::clone(dict)),
                        tau,
                    )
                },
            );
            // One plan set serves every l below (plans are l-independent).
            let plan_start = Instant::now();
            let plans = index
                .plan_batch(&queries)
                .expect("dictionary-first build shares plans");
            let plan_ms = plan_start.elapsed().as_secs_f64() * 1e3;
            for l in 1..=4usize.min(tau + 1) {
                let (row, stats) = sweep.run_with_plans(
                    "editdist",
                    setup.name,
                    &index,
                    &queries,
                    &plans,
                    plan_ms,
                    &EditParams { l },
                    opts.batch,
                    threads,
                );
                let nq = queries.len() as f64;
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    l.to_string(),
                    shards.to_string(),
                    opts.batch.to_string(),
                    f1(stats.candidates as f64 / nq),
                    f1(stats.results as f64 / nq),
                    format!("{:016x}", row.result_hash),
                    f3(row.total_ms / nq),
                    f3(row.plan_us_per_query),
                    f1(row.qps),
                ]);
            }
        }
    }
    rep.emit();
}

/// Figure 11: Ring vs Pivotal (with the Cand-1/Cand-2 split) over τ.
fn fig11(scale: Scale) {
    let mut rep = Report::new(
        "fig11_editdist_vs_pivotal",
        &[
            "dataset",
            "tau",
            "engine",
            "cand1",
            "cand2_or_cand",
            "avg_res",
            "total_ms",
        ],
    );
    for setup in string_setup(scale) {
        let taus: Vec<usize> = if setup.name == "imdb" {
            vec![1, 2, 3, 4]
        } else {
            vec![4, 6, 8, 10, 12]
        };
        for tau in taus {
            let kappa = kappa_for(setup.name, tau);
            let nq = setup.queries.len() as f64;
            let coll = QGramCollection::build(setup.strings.clone(), kappa, GramOrder::Frequency);
            let mut piv = Pivotal::build(coll, tau);
            let (ms, stats) = time_per_query(&setup.queries, |qid| {
                piv.search(&setup.strings[qid].clone()).1
            });
            rep.row(&[
                setup.name.into(),
                tau.to_string(),
                "Pivotal".into(),
                f1(stats.iter().map(|s| s.cand1 as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.cand2 as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                f3(ms),
            ]);
            let coll = QGramCollection::build(setup.strings.clone(), kappa, GramOrder::Frequency);
            let mut ring = RingEdit::build(coll, tau);
            let l = 3.min(tau + 1);
            let (ms, stats) = time_per_query(&setup.queries, |qid| {
                ring.search(&setup.strings[qid].clone(), l).1
            });
            rep.row(&[
                setup.name.into(),
                tau.to_string(),
                "Ring".into(),
                "-".into(),
                f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                f3(ms),
            ]);
        }
    }
    rep.emit();
}

// ----------------------------------------------------------- fig 8 / 12

struct GraphSetup {
    name: &'static str,
    graphs: Vec<Graph>,
    queries: Vec<usize>,
}

fn graph_setup(scale: Scale) -> Vec<GraphSetup> {
    let aids = GraphConfig::aids_like(scale.n(2_000)).generate();
    let protein = GraphConfig::protein_like(scale.n(1_000)).generate();
    let aq = sample_query_ids(aids.len(), scale.queries(30), 7);
    let pq = sample_query_ids(protein.len(), scale.queries(20), 8);
    vec![
        GraphSetup {
            name: "aids",
            graphs: aids,
            queries: aq,
        },
        GraphSetup {
            name: "protein",
            graphs: protein,
            queries: pq,
        },
    ]
}

/// Figure 8: effect of chain length on graph edit distance search.
fn fig8(scale: Scale) {
    let mut rep = Report::new(
        "fig8_graph_chain",
        &[
            "dataset", "tau", "l", "avg_cand", "avg_res", "cand_ms", "total_ms",
        ],
    );
    for setup in graph_setup(scale) {
        for tau in [4usize, 5] {
            let eng = RingGraph::build(setup.graphs.clone(), tau);
            for l in 1..=5usize {
                let (cand_ms, _cstats) = time_per_query(&setup.queries, |qid| {
                    eng.candidates(&setup.graphs[qid], l).1
                });
                let (total_ms, stats) =
                    time_per_query(&setup.queries, |qid| eng.search(&setup.graphs[qid], l).1);
                let nq = setup.queries.len() as f64;
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    l.to_string(),
                    f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                    f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                    f3(cand_ms),
                    f3(total_ms),
                ]);
            }
        }
    }
    rep.emit();
}

/// Figure 12: Ring vs Pars over τ.
fn fig12(scale: Scale) {
    let mut rep = Report::new(
        "fig12_graph_vs_pars",
        &[
            "dataset", "tau", "engine", "avg_cand", "avg_res", "total_ms",
        ],
    );
    for setup in graph_setup(scale) {
        for tau in 1usize..=5 {
            let nq = setup.queries.len() as f64;
            let pars = Pars::build(setup.graphs.clone(), tau);
            let (ms, stats) =
                time_per_query(&setup.queries, |qid| pars.search(&setup.graphs[qid]).1);
            rep.row(&[
                setup.name.into(),
                tau.to_string(),
                "Pars".into(),
                f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                f3(ms),
            ]);
            let ring = RingGraph::build(setup.graphs.clone(), tau);
            let l = tau.max(1); // paper: best l ∈ [τ−2, τ]
            let (ms, stats) =
                time_per_query(&setup.queries, |qid| ring.search(&setup.graphs[qid], l).1);
            rep.row(&[
                setup.name.into(),
                tau.to_string(),
                "Ring".into(),
                f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                f1(stats.iter().map(|s| s.results as f64).sum::<f64>() / nq),
                f3(ms),
            ]);
        }
    }
    rep.emit();
}

// ------------------------------------------------------------ ablations

/// Ablation: Corollary-2 start skipping on/off (DESIGN.md §6).
fn ablate_skip(scale: Scale) {
    let mut rep = Report::new(
        "ablate_corollary2_skip",
        &["dataset", "tau", "l", "skip", "boxes_checked", "total_ms"],
    );
    for setup in hamming_setup(scale) {
        let tau = if setup.name == "gist" { 64 } else { 128 };
        for skip in [true, false] {
            let mut eng =
                RingHamming::build(setup.data.clone(), setup.m, AllocationStrategy::CostModel);
            eng.set_corollary2_skip(skip);
            for l in [4usize, 8] {
                let (ms, stats) = time_per_query(&setup.queries, |qid| {
                    let q = setup.data[qid].clone();
                    eng.search(&q, tau, l).1
                });
                let nq = setup.queries.len() as f64;
                rep.row(&[
                    setup.name.into(),
                    tau.to_string(),
                    l.to_string(),
                    skip.to_string(),
                    f1(stats.iter().map(|s| s.boxes_checked as f64).sum::<f64>() / nq),
                    f3(ms),
                ]);
            }
        }
    }
    rep.emit();
}

// -------------------------------------------------------- service sweep

/// Service-layer throughput sweep over all four domain engines.
///
/// For each domain a representative dataset/threshold is run through
/// [`ShardedIndex`] across shard counts (the `--shards K` value, or the
/// core-aware `{1, 2, 4, 8, …}` ladder from
/// [`pigeonring_service::default_shard_counts`] when unset), batching
/// `--batch B` queries per fan-out. Emits `results/service_sweep.csv`
/// (with speedup vs the domain's first shard count) and
/// `results/BENCH_service.json` (per-shard throughput plus the machine
/// fingerprint, the artifact CI uploads). Combined with `--paper` this
/// is the paper-§8-scale "all" mode the ROADMAP Scale item asks for.
fn sweep(scale: Scale, opts: &ServiceOpts) {
    let shard_counts: Vec<usize> = match opts.shards {
        Some(k) => vec![k],
        None => pigeonring_service::default_shard_counts(),
    };
    let mut sw = Sweep::new();
    let mut rep = Report::new(
        "service_sweep",
        &[
            "domain",
            "dataset",
            "shards",
            "threads",
            "batch",
            "queries",
            "total_ms",
            "qps",
            "per_shard_qps",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "plan_us_per_q",
            "dict_build_ms",
            "speedup_vs_first",
            "result_hash",
        ],
    );
    let record = |rep: &mut Report, row: &pigeonring_service::SweepRow, base_qps: f64| {
        rep.row(&[
            row.domain.clone(),
            row.dataset.clone(),
            row.shards.to_string(),
            row.threads.to_string(),
            row.batch.to_string(),
            row.queries.to_string(),
            f3(row.total_ms),
            f1(row.qps),
            f1(row.per_shard_qps),
            f3(row.p50_ms),
            f3(row.p95_ms),
            f3(row.p99_ms),
            // The plan-once acceptance metric: flat in the shard count
            // for the dictionary-first (editdist/setsim) builds.
            f3(row.plan_us_per_query),
            f3(row.dict_build_ms),
            // base_qps can be the 0.0 "too fast to measure" sentinel
            // (see Sweep::run); don't let inf/NaN into the CSV.
            if base_qps > 0.0 {
                format!("{:.2}", row.qps / base_qps)
            } else {
                "-".into()
            },
            format!("{:016x}", row.result_hash),
        ]);
    };

    // Hamming / gist (fig9's Ring configuration).
    {
        let data = VectorConfig::gist_like(scale.n(100_000)).generate();
        let qids = sample_query_ids(data.len(), scale.queries(50), 1);
        let queries: Vec<BitVector> = qids.iter().map(|&i| data[i].clone()).collect();
        let params = HammingParams { tau: 48, l: 5 };
        let mut base_qps = None;
        for &k in &shard_counts {
            // No dictionary for hamming: the legacy build avoids the
            // plan-once machinery's per-query `Arc<()>` overhead.
            let index = ShardedIndex::build(data.clone(), k, |shard| {
                RingHamming::build(shard, 16, AllocationStrategy::CostModel)
            });
            let (row, _) = sw.run(
                "hamming",
                "gist",
                &index,
                &queries,
                &params,
                opts.batch,
                opts.threads_for(k),
            );
            let base = *base_qps.get_or_insert(row.qps);
            record(&mut rep, row, base);
        }
    }

    // Set similarity / dblp (fig10's Ring configuration).
    {
        let data = SetConfig::dblp_like(scale.n(20_000)).generate();
        let qids = sample_query_ids(data.len(), scale.queries(50), 4);
        let queries: Vec<Vec<u32>> = qids.iter().map(|&i| data[i].clone()).collect();
        let params = SetParams { l: 2 };
        let mut base_qps = None;
        for &k in &shard_counts {
            let index = ShardedIndex::build_global(
                data.clone(),
                k,
                |corpus| Arc::new(TokenDictionary::build(corpus)),
                |dict, shard| {
                    RingSetSim::build(
                        Collection::with_dictionary(shard, Arc::clone(dict)),
                        Threshold::jaccard(0.8),
                        5,
                    )
                },
            );
            let (row, _) = sw.run(
                "setsim",
                "dblp",
                &index,
                &queries,
                &params,
                opts.batch,
                opts.threads_for(k),
            );
            let base = *base_qps.get_or_insert(row.qps);
            record(&mut rep, row, base);
        }
    }

    // Edit distance / imdb (fig11's Ring configuration).
    {
        let data = StringConfig::imdb_like(scale.n(20_000)).generate();
        let qids = sample_query_ids(data.len(), scale.queries(50), 5);
        let queries: Vec<Vec<u8>> = qids.iter().map(|&i| data[i].clone()).collect();
        let tau = 2usize;
        let kappa = kappa_for("imdb", tau);
        let params = EditParams { l: 3 };
        let mut base_qps = None;
        for &k in &shard_counts {
            let index = ShardedIndex::build_global(
                data.clone(),
                k,
                |corpus| Arc::new(GramDictionary::build(corpus, kappa, GramOrder::Frequency)),
                |dict, shard| {
                    RingEdit::build(
                        QGramCollection::with_dictionary(shard, Arc::clone(dict)),
                        tau,
                    )
                },
            );
            let (row, _) = sw.run(
                "editdist",
                "imdb",
                &index,
                &queries,
                &params,
                opts.batch,
                opts.threads_for(k),
            );
            let base = *base_qps.get_or_insert(row.qps);
            record(&mut rep, row, base);
        }
    }

    // Graph edit distance / aids (fig12's Ring configuration).
    {
        let data = GraphConfig::aids_like(scale.n(2_000)).generate();
        let qids = sample_query_ids(data.len(), scale.queries(30), 7);
        let queries: Vec<Graph> = qids.iter().map(|&i| data[i].clone()).collect();
        let tau = 4usize;
        let params = GraphParams { l: tau };
        let mut base_qps = None;
        for &k in &shard_counts {
            // No dictionary for graph either (see the hamming note).
            let index = ShardedIndex::build(data.clone(), k, |shard| RingGraph::build(shard, tau));
            let (row, _) = sw.run(
                "graph",
                "aids",
                &index,
                &queries,
                &params,
                opts.batch,
                opts.threads_for(k),
            );
            let base = *base_qps.get_or_insert(row.qps);
            record(&mut rep, row, base);
        }
    }

    rep.emit();
    if let Err(e) = std::fs::create_dir_all("results") {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    if let Err(e) = sw.write_json("results/BENCH_service.json") {
        eprintln!("warning: cannot write results/BENCH_service.json: {e}");
    } else {
        println!("wrote results/BENCH_service.json ({} rows)", sw.rows.len());
    }
}

/// Ablation: cost-model vs even threshold allocation (DESIGN.md §6).
fn ablate_alloc(scale: Scale) {
    let mut rep = Report::new(
        "ablate_allocation",
        &["dataset", "tau", "alloc", "avg_cand", "total_ms"],
    );
    for setup in hamming_setup(scale) {
        let tau = if setup.name == "gist" { 48 } else { 96 };
        for (name, strat) in [
            ("cost-model", AllocationStrategy::CostModel),
            ("even", AllocationStrategy::Even),
        ] {
            let mut eng = RingHamming::build(setup.data.clone(), setup.m, strat);
            let (ms, stats) = time_per_query(&setup.queries, |qid| {
                let q = setup.data[qid].clone();
                eng.search(&q, tau, 5).1
            });
            let nq = setup.queries.len() as f64;
            rep.row(&[
                setup.name.into(),
                tau.to_string(),
                name.into(),
                f1(stats.iter().map(|s| s.candidates as f64).sum::<f64>() / nq),
                f3(ms),
            ]);
        }
    }
    rep.emit();
}
