//! Per-file source model shared by the checkers: token stream, line
//! digest, and the `#[cfg(test)]` / `#[test]` region mask.

use crate::lexer::{lex, LineMap, Tok, Token};

/// One lexed source file, ready for checking.
pub struct SourceFile {
    /// Display path (workspace-relative when driven by the CLI).
    pub path: String,
    /// Non-comment tokens, in order. Comments live in [`SourceFile::lines`].
    pub code: Vec<Token>,
    /// Per-line code/comment digest (pragma and SAFETY lookups).
    pub lines: LineMap,
    /// `test[l]` — line `l` is inside a `#[cfg(test)]` or `#[test]`
    /// item (including the attribute line itself).
    test: Vec<bool>,
}

impl SourceFile {
    /// Lexes `src` into the model.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let tokens = lex(src);
        let num_lines = src.lines().count().max(1);
        let lines = LineMap::build(&tokens, num_lines);
        let code: Vec<Token> = tokens
            .into_iter()
            .filter(|t| !matches!(t.tok, Tok::Comment(_)))
            .collect();
        let test = test_mask(&code, num_lines);
        SourceFile {
            path: path.to_string(),
            code,
            lines,
            test,
        }
    }

    /// True when `line` (1-based) is inside test-gated code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test.get(line as usize).copied().unwrap_or(false)
    }

    /// The token's ident text, if it is an ident.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.code.get(i).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => Some(s),
            _ => None,
        }
    }

    /// True when token `i` is the punctuation `c`.
    pub fn punct(&self, i: usize, c: char) -> bool {
        matches!(self.code.get(i).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c)
    }
}

/// Marks every line belonging to an item introduced by a test attribute
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`) — attribute line
/// through the item's closing brace (or terminating semicolon).
fn test_mask(code: &[Token], num_lines: usize) -> Vec<bool> {
    let mut mask = vec![false; num_lines + 2];
    let mut i = 0usize;
    while i < code.len() {
        if !(matches!(code[i].tok, Tok::Punct('#'))
            && matches!(code.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))))
        {
            i += 1;
            continue;
        }
        // Attribute extent: match the square brackets.
        let attr_start = i;
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut is_test = false;
        while j < code.len() && depth > 0 {
            match &code[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(s) if s == "test" => is_test = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test {
            i = j;
            continue;
        }
        // Skip any further attributes between the test attribute and
        // the item header.
        while matches!(code.get(j).map(|t| &t.tok), Some(Tok::Punct('#')))
            && matches!(code.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('[')))
        {
            let mut d = 1i32;
            let mut k = j + 2;
            while k < code.len() && d > 0 {
                match &code[k].tok {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        // Item body: first `{` (brace-matched) or a `;` before any `{`.
        let mut end_line = code.get(j).map(|t| t.line).unwrap_or(code[attr_start].line);
        let mut k = j;
        let mut found = false;
        while k < code.len() {
            match &code[k].tok {
                Tok::Punct(';') => {
                    end_line = code[k].line;
                    k += 1;
                    found = true;
                    break;
                }
                Tok::Punct('{') => {
                    let mut d = 1i32;
                    k += 1;
                    while k < code.len() && d > 0 {
                        match &code[k].tok {
                            Tok::Punct('{') => d += 1,
                            Tok::Punct('}') => d -= 1,
                            _ => {}
                        }
                        end_line = code[k].line;
                        k += 1;
                    }
                    found = true;
                    break;
                }
                _ => {
                    end_line = code[k].line;
                    k += 1;
                }
            }
        }
        let start_line = code[attr_start].line as usize;
        let end_line = end_line as usize;
        // An attribute at EOF can leave end < start; a `a..=b` range
        // loop tolerated that, a slice index would panic.
        let end_line = end_line.min(num_lines + 1);
        if start_line <= end_line {
            for flag in &mut mask[start_line..=end_line] {
                *flag = true;
            }
        }
        i = if found { k } else { j };
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "fn live() { a.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { b.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(7));
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nfn helper() { y.unwrap(); }\nfn live() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn feature_string_test_is_not_test() {
        let src = "#[cfg(feature = \"test\")]\nfn not_test() {}\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(!f.is_test_line(2));
    }
}
