//! `pigeonring-lint` — in-repo static analysis for the invariants the
//! type system can't see.
//!
//! Five rules over the workspace source (see the README "Static
//! analysis" section for the policy rationale and pragma syntax):
//!
//! 1. **`wire-tags`** — `TAG_*` constants in
//!    `crates/server/src/wire.rs` are unique, requests `< 0x80` /
//!    responses `>= 0x80`, every tag has both an encode and a decode
//!    arm, and the README wire tables match the code exactly.
//! 2. **`metric-names`** — registration sites resolve to names in the
//!    `layer(.segment)+` grammar, no duplicates, no drift from the
//!    README Observability catalog.
//! 3. **`panic-policy`** — `unwrap`/`expect`/`panic!`/slice-indexing
//!    denied in non-test `crates/server/src` + `crates/service/src`
//!    without `// lint: allow(panic) — <reason>`.
//! 4. **`safety-comment`** — every `unsafe` block/fn/impl immediately
//!    preceded by `// SAFETY:` (or a doc `# Safety` section).
//! 5. **`atomic-ordering`** — `Ordering::` uses in telemetry, service,
//!    and server from the allowlist (`Relaxed` counters/sampling,
//!    `Acquire`/`Release`/`AcqRel` handoff); `SeqCst` needs
//!    `// lint: allow(seqcst) — <reason>`.
//!
//! Dependency-free by construction (the workspace vendors only test
//! stand-ins): the foundation is the hand-rolled token scanner in
//! [`lexer`], not `syn`.

pub mod checks {
    //! The five rule implementations.
    pub mod atomics;
    pub mod metrics;
    pub mod panics;
    pub mod unsafety;
    pub mod wire;
}
pub mod findings;
pub mod lexer;
pub mod report;
pub mod source;
pub mod workspace;

pub use findings::{Finding, Rule};
pub use source::SourceFile;
