//! CLI: `cargo run -p pigeonring-lint -- [--fix-report] [PATHS…]`
//!
//! Findings print one per line as `file:line: [rule-id] message` —
//! machine-readable for CI and editors — and the exit code is the
//! gate: `0` clean, `1` findings, `2` usage/IO error. `PATHS`
//! (workspace-relative prefixes) restrict the per-file rules;
//! cross-file rules (wire/README sync, metric duplicates + catalog)
//! run only on a full, unfiltered scan.

use std::path::PathBuf;
use std::process::ExitCode;

use pigeonring_lint::{report, workspace};

fn main() -> ExitCode {
    let mut fix_report = false;
    let mut filters: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--fix-report" => fix_report = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: cargo run -p pigeonring-lint -- [--fix-report] [PATHS…]\n\
                     \n\
                     Runs the five repo-invariant rules (wire-tags, metric-names,\n\
                     panic-policy, safety-comment, atomic-ordering) over the\n\
                     workspace. PATHS restrict per-file rules to matching\n\
                     workspace-relative prefixes. --fix-report prints the\n\
                     code-derived wire-tag table and metric catalog as markdown."
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}; see --help");
                return ExitCode::from(2);
            }
            path => filters.push(PathBuf::from(path)),
        }
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot read current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = workspace::find_root(&cwd) else {
        eprintln!("no workspace Cargo.toml found above {}", cwd.display());
        return ExitCode::from(2);
    };

    let run = match workspace::run(&root, &filters) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if fix_report {
        print!("{}", report::render(&run.wire_tags, &run.metric_sites));
        return ExitCode::SUCCESS;
    }

    for f in &run.findings {
        println!("{f}");
    }
    if run.findings.is_empty() {
        eprintln!(
            "lint clean: {} files, {} wire tags, {} metric registrations",
            run.files_scanned,
            run.wire_tags.len(),
            run.metric_sites.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} finding(s) across {} files",
            run.findings.len(),
            run.files_scanned
        );
        ExitCode::FAILURE
    }
}
