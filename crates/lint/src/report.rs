//! `--fix-report` — renders the code-derived wire-tag and metric
//! inventories as markdown, the source of truth the README tables are
//! regenerated from when rule 1 or 2 reports drift.

use crate::checks::metrics::MetricSite;
use crate::checks::wire::{Direction, WireTag};

/// Renders both inventories as a markdown document.
pub fn render(tags: &[WireTag], sites: &[MetricSite]) -> String {
    let mut out = String::new();
    out.push_str("# Lint fix-report (generated from the code)\n");

    out.push_str("\n## Wire tags\n\n| Tag | Constant | Direction |\n|---|---|---|\n");
    let mut tags: Vec<&WireTag> = tags.iter().collect();
    tags.sort_by_key(|t| t.value);
    for t in tags {
        let dir = match t.direction {
            Direction::Request => "request",
            Direction::Response => "response",
            Direction::Unused => "UNUSED",
        };
        out.push_str(&format!("| `0x{:02x}` | `{}` | {dir} |\n", t.value, t.name));
    }

    out.push_str("\n## Metric catalog\n\n| Metric | Kind | Registered at |\n|---|---|---|\n");
    let mut sites: Vec<&MetricSite> = sites.iter().collect();
    sites.sort_by(|a, b| a.name.cmp(&b.name));
    for s in sites {
        out.push_str(&format!(
            "| `{}` | {} | {}:{} |\n",
            s.name, s.kind, s.file, s.line
        ));
    }
    out
}
