//! Workspace driver: file discovery, per-rule scoping, and the
//! full-repo run the CLI and the self-check test share.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::checks::{atomics, metrics, panics, unsafety, wire};
use crate::findings::Finding;
use crate::source::SourceFile;

/// Everything one full run produces: the findings plus the inventories
/// `--fix-report` renders.
pub struct LintRun {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// The wire tags as defined by the code.
    pub wire_tags: Vec<wire::WireTag>,
    /// Every metric registration site.
    pub metric_sites: Vec<metrics::MetricSite>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Runs all five rules over the workspace rooted at `root`. `filters`
/// (workspace-relative path prefixes) restrict which files the
/// per-file rules scan; cross-file rules (wire/README, metric
/// duplicates and catalog) only run unfiltered, since a partial view
/// would report spurious drift.
pub fn run(root: &Path, filters: &[PathBuf]) -> io::Result<LintRun> {
    let mut findings = Vec::new();
    let mut metric_sites = Vec::new();
    let mut wire_tags = Vec::new();
    let mut files_scanned = 0usize;

    let mut files = Vec::new();
    for dir in source_dirs(root) {
        walk(&dir, &mut files)?;
    }
    files.sort();

    let readme_path = root.join("README.md");
    let readme = fs::read_to_string(&readme_path).unwrap_or_default();

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if !filters.is_empty()
            && !filters
                .iter()
                .any(|f| Path::new(&rel).starts_with(f) || path.starts_with(f))
        {
            continue;
        }
        let src = fs::read_to_string(path)?;
        let file = SourceFile::parse(&rel, &src);
        files_scanned += 1;

        if rel.starts_with("crates/server/src") || rel.starts_with("crates/service/src") {
            findings.extend(panics::check(&file));
        }
        if rel.starts_with("crates/telemetry/src")
            || rel.starts_with("crates/server/src")
            || rel.starts_with("crates/service/src")
        {
            findings.extend(atomics::check(&file));
        }
        // Unsafe audit: everywhere.
        findings.extend(unsafety::check(&file));
        // Metric registry: every instrumented layer; the telemetry
        // crate (the mechanism itself) and this linter are exempt.
        if !rel.starts_with("crates/telemetry") && !rel.starts_with("crates/lint") {
            let (f, sites) = metrics::collect(&file);
            findings.extend(f);
            metric_sites.extend(sites);
        }
        if rel == "crates/server/src/wire.rs" {
            let readme_arg = if filters.is_empty() && !readme.is_empty() {
                Some(("README.md", readme.as_str()))
            } else {
                None
            };
            let (f, tags) = wire::check(&file, readme_arg);
            findings.extend(f);
            wire_tags = tags;
        }
    }

    if filters.is_empty() {
        findings.extend(metrics::check_duplicates(&metric_sites));
        findings.extend(metrics::check_readme(&metric_sites, &readme, "README.md"));
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(LintRun {
        findings,
        wire_tags,
        metric_sites,
        files_scanned,
    })
}

/// The directories the linter audits: every first-party crate's `src`
/// plus the facade crate's. Vendored stand-ins are third-party code
/// and exempt; `tests/` trees hold fixtures and test binaries the
/// panic policy deliberately does not govern.
fn source_dirs(root: &Path) -> Vec<PathBuf> {
    let mut dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut crates: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path().join("src"))
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        dirs.extend(crates);
    }
    dirs.retain(|d| d.is_dir());
    dirs
}

/// Recursively collects `.rs` files under `dir`.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}
