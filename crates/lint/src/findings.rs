//! Finding type shared by every checker, and the pragma grammar.

use std::fmt;

/// Stable rule identifiers — these are the machine-readable contract
/// (`file:line: [rule] message`) CI and editors key on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Rule 1 — wire-protocol invariants over `crates/server/src/wire.rs`
    /// and the README wire tables.
    Wire,
    /// Rule 2 — metric-name grammar, duplicates, and README catalog sync.
    Metrics,
    /// Rule 3 — panic policy: `unwrap`/`expect`/`panic!`/slice-indexing
    /// denied on non-test server/service code without a pragma.
    Panic,
    /// Rule 4 — every `unsafe` block/fn/impl is preceded by `// SAFETY:`.
    Unsafe,
    /// Rule 5 — atomics orderings from the per-pattern allowlist;
    /// `SeqCst` needs a pragma.
    Atomics,
}

impl Rule {
    /// The rule id as printed in findings (`wire-tags`, `metric-names`,
    /// `panic-policy`, `safety-comment`, `atomic-ordering`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::Wire => "wire-tags",
            Rule::Metrics => "metric-names",
            Rule::Panic => "panic-policy",
            Rule::Unsafe => "safety-comment",
            Rule::Atomics => "atomic-ordering",
        }
    }
}

/// One violation: where, which rule, and what went wrong.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Path as scanned (workspace-relative when driven by the CLI).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.id(),
            self.message
        )
    }
}

/// Parsed `// lint: …` pragmas attached to a source line.
///
/// Grammar (inside any comment):
///
/// * `lint: allow(panic) — <reason>` — justifies one panic-policy site.
/// * `lint: allow(seqcst) — <reason>` — justifies one `SeqCst` use.
/// * `lint: metric(name, name, …)` — declares the metric name(s) a
///   registration site produces when the name is built dynamically.
///
/// The em-dash may also be written `--` or `:`. A reason is mandatory
/// for `allow` pragmas — an empty justification is itself a finding.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// `allow(panic)` present, with whether a non-empty reason followed.
    pub allow_panic: Option<bool>,
    /// `allow(seqcst)` present, with whether a non-empty reason followed.
    pub allow_seqcst: Option<bool>,
    /// Declared metric names from `metric(…)` pragmas, in order.
    pub metrics: Vec<String>,
}

/// Parses every pragma out of a blob of comment text (possibly several
/// comments joined with newlines).
pub fn parse_pragmas(comments: &str) -> Pragmas {
    let mut p = Pragmas::default();
    for (pos, _) in comments.match_indices("lint:") {
        let rest = comments[pos + "lint:".len()..].trim_start();
        if let Some(args) = rest.strip_prefix("allow(") {
            let Some(close) = args.find(')') else {
                continue;
            };
            let what = args[..close].trim();
            let reason_ok = has_reason(&args[close + 1..]);
            match what {
                "panic" => p.allow_panic = Some(reason_ok),
                "seqcst" => p.allow_seqcst = Some(reason_ok),
                _ => {}
            }
        } else if let Some(args) = rest.strip_prefix("metric(") {
            let Some(close) = args.find(')') else {
                continue;
            };
            for name in args[..close].split(',') {
                let name = name.trim();
                if !name.is_empty() {
                    p.metrics.push(name.to_string());
                }
            }
        }
    }
    p
}

/// True when the text after `allow(…)` carries a separator (`—`, `--`,
/// or `:`) followed by at least one word of justification.
fn has_reason(after: &str) -> bool {
    let after = after.trim_start();
    let body = after
        .strip_prefix('—')
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix(':'))
        .or_else(|| after.strip_prefix('-'));
    matches!(body, Some(b) if !b.trim().is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_panic_requires_reason() {
        assert_eq!(
            parse_pragmas("// lint: allow(panic) — guarded by take()").allow_panic,
            Some(true)
        );
        assert_eq!(
            parse_pragmas("// lint: allow(panic)").allow_panic,
            Some(false)
        );
        assert_eq!(
            parse_pragmas("// lint: allow(panic) — ").allow_panic,
            Some(false)
        );
        assert_eq!(parse_pragmas("// nothing here").allow_panic, None);
    }

    #[test]
    fn metric_pragma_lists() {
        let p = parse_pragmas(
            "// lint: metric(server.lane.{domain}.admitted, server.lane.{domain}.busy)",
        );
        assert_eq!(
            p.metrics,
            vec![
                "server.lane.{domain}.admitted".to_string(),
                "server.lane.{domain}.busy".to_string()
            ]
        );
    }

    #[test]
    fn seqcst_pragma() {
        assert_eq!(
            parse_pragmas("// lint: allow(seqcst) -- total order documented").allow_seqcst,
            Some(true)
        );
    }
}
