//! A minimal Rust token scanner — the foundation every checker shares.
//!
//! This is deliberately **not** a parser: the five lint rules only need
//! to see identifiers, punctuation, string-literal *values*, and
//! comments, each tagged with the 1-based source line it starts on. The
//! scanner's one hard job is classification — an `unwrap` inside a
//! string or a `SeqCst` inside a comment must never reach a checker as
//! code — so it tracks every literal form that can hide bytes from a
//! naive substring search: line and (nested) block comments, string
//! literals with escapes, raw strings with `#` fences, byte and C
//! variants, char literals, and lifetimes.

/// What a token is. Numeric literals are folded into [`Tok::Ident`]
/// (the wire checker parses `0x81` out of the ident text itself);
/// every punctuation byte is emitted individually.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier, keyword, or numeric literal.
    Ident(String),
    /// String literal — the *content* between the quotes, escapes left
    /// un-decoded (`\n` stays two bytes). Raw/byte/C strings included.
    Str(String),
    /// One punctuation character.
    Punct(char),
    /// A comment, including its `//` / `/*` introducer. Doc comments
    /// are comments too — checkers that care look at the text.
    Comment(String),
}

/// One token plus the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Token {
    /// Token kind and payload.
    pub tok: Tok,
    /// 1-based source line of the token's first byte.
    pub line: u32,
}

/// Scans `src` into a token stream. Unterminated literals consume to
/// end of input rather than erroring: the linter must degrade, not
/// abort, on the code it audits.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.push(Token {
                    tok: Tok::Comment(b[start..i].iter().collect()),
                    line,
                });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                out.push(Token {
                    tok: Tok::Comment(b[start..i].iter().collect()),
                    line: start_line,
                });
            }
            '"' => {
                let start_line = line;
                let s = scan_string(&b, &mut i, &mut line);
                out.push(Token {
                    tok: Tok::Str(s),
                    line: start_line,
                });
            }
            '\'' => scan_char_or_lifetime(&b, &mut i, &mut line, &mut out),
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // A raw/byte string prefix glues the ident to the
                // opening quote: r"…", r#"…"#, b"…", br#"…"#, c"…".
                let raw_ok = matches!(ident.as_str(), "r" | "b" | "br" | "rb" | "c" | "cr");
                if raw_ok && matches!(b.get(i), Some('"') | Some('#')) {
                    let start_line = line;
                    if let Some(s) = scan_raw_or_prefixed(&b, &mut i, &mut line) {
                        out.push(Token {
                            tok: Tok::Str(s),
                            line: start_line,
                        });
                        continue;
                    }
                }
                // b'x' byte-char literal: consume it so the `'` is not
                // misread as a lifetime introducer.
                if ident == "b" && b.get(i) == Some(&'\'') {
                    scan_char_or_lifetime(&b, &mut i, &mut line, &mut out);
                    continue;
                }
                out.push(Token {
                    tok: Tok::Ident(ident),
                    line,
                });
            }
            p => {
                out.push(Token {
                    tok: Tok::Punct(p),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Consumes a `"…"` string starting at the opening quote; returns the
/// content (escapes preserved). Leaves `i` past the closing quote.
fn scan_string(b: &[char], i: &mut usize, line: &mut u32) -> String {
    let mut s = String::new();
    *i += 1; // opening quote
    while *i < b.len() {
        match b[*i] {
            '\\' => {
                s.push(b[*i]);
                if let Some(&e) = b.get(*i + 1) {
                    if e == '\n' {
                        *line += 1;
                    }
                    s.push(e);
                }
                *i += 2;
            }
            '"' => {
                *i += 1;
                return s;
            }
            ch => {
                if ch == '\n' {
                    *line += 1;
                }
                s.push(ch);
                *i += 1;
            }
        }
    }
    s
}

/// Consumes a string that follows a raw/byte prefix: `i` points at `"`
/// (plain byte/C string) or `#` (raw fence). Returns `None` if the
/// shape is not actually a string (e.g. `r#raw_ident`).
fn scan_raw_or_prefixed(b: &[char], i: &mut usize, line: &mut u32) -> Option<String> {
    if b.get(*i) == Some(&'"') {
        return Some(scan_string(b, i, line));
    }
    // Count the `#` fence; a raw identifier (`r#match`) has ident
    // chars after a single `#` instead of a quote.
    let mut hashes = 0usize;
    while b.get(*i + hashes) == Some(&'#') {
        hashes += 1;
    }
    if b.get(*i + hashes) != Some(&'"') {
        return None;
    }
    *i += hashes + 1;
    let mut s = String::new();
    'outer: while *i < b.len() {
        if b[*i] == '"' {
            // Close only on `"` followed by the full fence.
            let mut ok = true;
            for k in 0..hashes {
                if b.get(*i + 1 + k) != Some(&'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                *i += 1 + hashes;
                break 'outer;
            }
        }
        if b[*i] == '\n' {
            *line += 1;
        }
        s.push(b[*i]);
        *i += 1;
    }
    Some(s)
}

/// Disambiguates `'a'` / `'\n'` (char literal — consumed silently)
/// from `'static` (lifetime — emitted as punct + ident so attribute
/// scanning stays aligned).
fn scan_char_or_lifetime(b: &[char], i: &mut usize, line: &mut u32, out: &mut Vec<Token>) {
    let open = *i;
    *i += 1; // the quote
    if b.get(*i) == Some(&'\\') {
        // Escaped char literal: skip escape payload to the closing quote.
        *i += 2;
        while *i < b.len() && b[*i] != '\'' {
            *i += 1;
        }
        *i += 1;
        return;
    }
    // `'x'` is a char literal; `'xyz` with no near close quote is a
    // lifetime (or loop label).
    if b.get(*i).is_some() && b.get(*i + 1) == Some(&'\'') {
        *i += 2;
        return;
    }
    out.push(Token {
        tok: Tok::Punct('\''),
        line: *line,
    });
    let start = *i;
    while *i < b.len() && (b[*i].is_alphanumeric() || b[*i] == '_') {
        *i += 1;
    }
    if *i > start {
        out.push(Token {
            tok: Tok::Ident(b[start..*i].iter().collect()),
            line: *line,
        });
    }
    let _ = open;
}

/// Per-line digest of a token stream: which lines hold code, and the
/// concatenated comment text per line — what the pragma and `SAFETY:`
/// checks key on.
#[derive(Debug, Default)]
pub struct LineMap {
    /// `code[l]` — line `l` (1-based; index 0 unused) has at least one
    /// non-comment token.
    pub code: Vec<bool>,
    /// `comments[l]` — all comment text that *starts* on line `l`,
    /// joined with `\n`.
    pub comments: Vec<String>,
}

impl LineMap {
    /// Builds the digest for a token stream over a source of
    /// `num_lines` lines.
    pub fn build(tokens: &[Token], num_lines: usize) -> LineMap {
        let n = num_lines + 2;
        let mut map = LineMap {
            code: vec![false; n],
            comments: vec![String::new(); n],
        };
        for t in tokens {
            let l = t.line as usize;
            if l >= n {
                continue;
            }
            match &t.tok {
                Tok::Comment(text) => {
                    if !map.comments[l].is_empty() {
                        map.comments[l].push('\n');
                    }
                    map.comments[l].push_str(text);
                }
                _ => map.code[l] = true,
            }
        }
        map
    }

    /// The comment text "attached" to `line`: comments on the line
    /// itself plus any run of comment-only lines immediately above it
    /// (attribute-only lines in between are skipped by callers that
    /// need that — see the unsafe checker).
    pub fn attached_comments(&self, line: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut l = line;
        // Walk up over comment-only lines above the target.
        loop {
            if l == 0 || l >= self.code.len() {
                break;
            }
            if l < line {
                let comment_only = !self.code[l] && !self.comments[l].is_empty();
                if !comment_only {
                    break;
                }
            }
            if !self.comments[l].is_empty() {
                parts.push(&self.comments[l]);
            }
            if l == 0 {
                break;
            }
            l -= 1;
        }
        parts.reverse();
        parts.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
let x = "unwrap() inside a string";
// unwrap() inside a comment
/* block unwrap() */
let r = r#"raw unwrap()"#;
let b = b"byte unwrap()";
real.unwrap();
"##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "unwrap").count(), 1);
    }

    #[test]
    fn raw_fence_and_nested_block() {
        let src =
            r####"let s = r##"has "# inside"##; /* outer /* inner */ still comment */ after"####;
        let toks = lex(src);
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s.contains("has"))));
        assert!(toks
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(s) if s == "after")));
    }

    #[test]
    fn lifetimes_and_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; let bc = b'y'; }";
        let ids = idents(src);
        assert!(ids.contains(&"a".to_string()));
        // Char literal contents never surface as idents.
        assert!(!ids.contains(&"x ".to_string()));
    }

    #[test]
    fn line_numbers_track_newlines_in_literals() {
        let src = "let a = \"two\nlines\";\nmarker";
        let toks = lex(src);
        let marker = toks
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(s) if s == "marker"))
            .unwrap();
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn attached_comments_walk_up() {
        let src = "// SAFETY: top\n// more\nunsafe { x }\n";
        let toks = lex(src);
        let map = LineMap::build(&toks, 4);
        let attached = map.attached_comments(3);
        assert!(attached.contains("SAFETY: top"));
        assert!(attached.contains("more"));
    }
}
