//! Rule 5 — atomics audit.
//!
//! Every atomic `Ordering::` use in the instrumented crates must come
//! from the per-pattern allowlist: `Relaxed` for counters/sampling,
//! `Acquire`/`Release`/`AcqRel` for handoff. `SeqCst` is flagged
//! unless the line carries `// lint: allow(seqcst) — <reason>` — a
//! total order is almost never what a counter or a stop flag needs,
//! and it is the ordering TSan/Miri can least help us validate by
//! accident. `core::cmp::Ordering::{Less, Equal, Greater}` share the
//! path name; the checker distinguishes by variant, so comparator code
//! is never flagged.

use crate::findings::{parse_pragmas, Finding, Rule};
use crate::source::SourceFile;

/// Runs the atomics-ordering rule over one file (non-test code only —
/// tests may use `SeqCst` for brute-force simplicity).
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..file.code.len() {
        if file.ident(i) != Some("Ordering") || !file.punct(i + 1, ':') || !file.punct(i + 2, ':') {
            continue;
        }
        let Some(variant) = file.ident(i + 3) else {
            continue;
        };
        let line = file.code[i].line;
        if file.is_test_line(line) {
            continue;
        }
        match variant {
            // The allowlist: counters/sampling and handoff pairs.
            "Relaxed" | "Acquire" | "Release" | "AcqRel" => {}
            "SeqCst" => {
                match parse_pragmas(&file.lines.attached_comments(line as usize)).allow_seqcst {
                    Some(true) => {}
                    Some(false) => out.push(Finding {
                        file: file.path.clone(),
                        line,
                        rule: Rule::Atomics,
                        message: "`SeqCst` pragma is missing its justification: write \
                                  `// lint: allow(seqcst) — <reason>`"
                            .to_string(),
                    }),
                    None => out.push(Finding {
                        file: file.path.clone(),
                        line,
                        rule: Rule::Atomics,
                        message: "`Ordering::SeqCst` outside the allowlist (Relaxed for \
                                  counters/sampling, Acquire/Release for handoff); use a \
                                  weaker ordering or justify with \
                                  `// lint: allow(seqcst) — <reason>`"
                            .to_string(),
                    }),
                }
            }
            // `cmp::Ordering::{Less, Equal, Greater}` and anything
            // else sharing the name: not an atomic ordering.
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn allowlist_passes_seqcst_flagged() {
        let src = "fn f() {\n\
                   n.fetch_add(1, Ordering::Relaxed);\n\
                   stop.store(true, Ordering::Release);\n\
                   if stop.load(Ordering::Acquire) {}\n\
                   n.fetch_or(1, Ordering::AcqRel);\n\
                   n.load(Ordering::SeqCst);\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn pragma_justifies_seqcst() {
        let src = "// lint: allow(seqcst) — cross-thread init fence, documented in the module\n\
                   flag.store(true, Ordering::SeqCst);\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn cmp_ordering_is_not_atomic() {
        let src = "fn f(a: u32, b: u32) -> Ordering {\n\
                   match a.cmp(&b) { Ordering::Less => Ordering::Less, \
                   Ordering::Equal => Ordering::Equal, o => o }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_code_may_use_seqcst() {
        let src = "#[cfg(test)]\nmod tests {\n#[test]\nfn t() { n.load(Ordering::SeqCst); }\n}\n";
        assert!(run(src).is_empty());
    }
}
