//! Rule 4 — unsafe audit.
//!
//! Every `unsafe` keyword introducing a block, fn, impl, or trait must
//! be immediately preceded by a comment carrying the exact
//! precondition it relies on: a `// SAFETY:` line (attributes like
//! `#[target_feature]` may sit between the comment and the keyword),
//! or a doc-comment `# Safety` section for `unsafe fn`. "Immediately"
//! is literal — a blank line between the comment and the item breaks
//! the attachment, matching clippy's `undocumented_unsafe_blocks`.

use crate::findings::{Finding, Rule};
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Runs the unsafe-audit rule over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..file.code.len() {
        if file.ident(i) != Some("unsafe") {
            continue;
        }
        let line = file.code[i].line;
        // Start of the item the keyword belongs to: walk back over any
        // attached `#[…]` attributes so `// SAFETY:` above
        // `#[target_feature(...)]` still counts.
        let start = item_start(file, i);
        let start_line = file.code[start].line as usize;
        if has_safety_comment(file, line as usize, start_line) {
            continue;
        }
        let kind = match file.ident(i + 1) {
            Some("fn") => "unsafe fn",
            Some("impl") => "unsafe impl",
            Some("trait") => "unsafe trait",
            Some("extern") => "unsafe extern",
            _ => "unsafe block",
        };
        out.push(Finding {
            file: file.path.clone(),
            line,
            rule: Rule::Unsafe,
            message: format!(
                "{kind} without an immediately preceding `// SAFETY:` comment \
                 stating the precondition it relies on"
            ),
        });
    }
    out
}

/// Walks back from the `unsafe` token over complete `#[…]` attribute
/// groups (and visibility/extern qualifiers) to the first token of the
/// item, so comment lookup starts above the attributes.
fn item_start(file: &SourceFile, unsafe_idx: usize) -> usize {
    let mut i = unsafe_idx;
    loop {
        // `pub unsafe fn`, `pub(crate) unsafe fn`.
        if i >= 1 {
            if file.ident(i - 1) == Some("pub") {
                i -= 1;
                continue;
            }
            if file.punct(i - 1, ')') {
                // possibly `pub(crate)` — walk to `(`, require `pub` before.
                let mut j = i - 1;
                let mut depth = 0i32;
                while j > 0 {
                    match &file.code[j].tok {
                        Tok::Punct(')') => depth += 1,
                        Tok::Punct('(') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                if j >= 1 && file.ident(j - 1) == Some("pub") {
                    i = j - 1;
                    continue;
                }
            }
            // Attribute directly above: `… #[attr] unsafe`.
            if file.punct(i - 1, ']') {
                let mut j = i - 1;
                let mut depth = 0i32;
                while j > 0 {
                    match &file.code[j].tok {
                        Tok::Punct(']') => depth += 1,
                        Tok::Punct('[') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j -= 1;
                }
                if j >= 1 && file.punct(j - 1, '#') {
                    i = j - 1;
                    continue;
                }
            }
        }
        return i;
    }
}

/// True when a SAFETY comment is attached: trailing on the keyword
/// line, or in the contiguous run of comment-only lines immediately
/// above the item start (doc-comment `# Safety` sections count for
/// `unsafe fn`).
fn has_safety_comment(file: &SourceFile, unsafe_line: usize, start_line: usize) -> bool {
    let is_safety = |text: &str| text.contains("SAFETY:") || text.contains("# Safety");
    let comment_at = |l: usize| file.lines.comments.get(l).map(String::as_str).unwrap_or("");
    if is_safety(comment_at(unsafe_line)) || is_safety(comment_at(start_line)) {
        return true;
    }
    let mut l = start_line.saturating_sub(1);
    while l >= 1 {
        let has_code = file.lines.code.get(l).copied().unwrap_or(false);
        let comment = comment_at(l);
        if has_code || comment.is_empty() {
            return false;
        }
        if is_safety(comment) {
            return true;
        }
        l -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn bare_unsafe_block_flagged() {
        let f = run("fn f() { let x = unsafe { g() }; }\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("unsafe block"));
    }

    #[test]
    fn safety_comment_above_passes() {
        let src = "fn f() {\n// SAFETY: avx2 checked by caller\nlet x = unsafe { g() };\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn safety_above_attributes_passes() {
        let src = "// SAFETY: caller verified avx2\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn kernel() {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn doc_safety_section_passes_for_unsafe_fn() {
        let src = "/// Fast path.\n///\n/// # Safety\n/// Caller must check avx2.\n\
                   pub unsafe fn kernel() {}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn blank_line_breaks_attachment() {
        let src = "// SAFETY: stale comment\n\nunsafe fn kernel() {}\n";
        assert_eq!(run(src).len(), 1);
    }

    #[test]
    fn unsafe_in_string_or_comment_ignored() {
        let src = "fn f() { let s = \"unsafe { }\"; } // unsafe in prose\n";
        assert!(run(src).is_empty());
    }
}
