//! Rule 3 — panic policy.
//!
//! `unwrap()`, `expect()`, `panic!` and slice-indexing are denied in
//! non-test server/service code: a malformed frame or a poisoned lock
//! must surface as a typed error, never abort a connection thread. A
//! site that is genuinely infallible carries
//! `// lint: allow(panic) — <reason>` on (or immediately above) its
//! line, and the reason is mandatory.

use crate::findings::{parse_pragmas, Finding, Rule};
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Keywords that can directly precede `[` without the bracket being an
/// index expression (`let [a, b] = …`, `&mut [T]`, `return [x]`, …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "as", "return", "match", "if", "else", "move", "dyn", "for",
    "while", "loop", "break", "continue", "yield", "await", "const", "static", "impl", "where",
    "box", "union", "unsafe", "pub", "crate", "super", "fn", "type", "use", "mod", "enum",
    "struct", "trait",
];

/// Runs the panic-policy rule over one file.
pub fn check(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    for i in 0..file.code.len() {
        let line = file.code[i].line;
        if file.is_test_line(line) {
            continue;
        }
        let what: Option<&str> = match file.ident(i) {
            Some("unwrap") if file.punct(i.wrapping_sub(1), '.') && file.punct(i + 1, '(') => {
                Some("`.unwrap()`")
            }
            Some("expect") if file.punct(i.wrapping_sub(1), '.') && file.punct(i + 1, '(') => {
                Some("`.expect()`")
            }
            Some("panic") if file.punct(i + 1, '!') => Some("`panic!`"),
            _ => {
                if file.punct(i, '[') && i > 0 && is_index_prefix(file, i - 1) {
                    Some("slice indexing")
                } else {
                    None
                }
            }
        };
        let Some(what) = what else { continue };
        match parse_pragmas(&file.lines.attached_comments(line as usize)).allow_panic {
            Some(true) => {}
            Some(false) => out.push(Finding {
                file: file.path.clone(),
                line,
                rule: Rule::Panic,
                message: format!(
                    "{what} pragma is missing its justification: write \
                     `// lint: allow(panic) — <reason>`"
                ),
            }),
            None => out.push(Finding {
                file: file.path.clone(),
                line,
                rule: Rule::Panic,
                message: format!(
                    "{what} in non-test server/service code; return a typed error \
                     or justify with `// lint: allow(panic) — <reason>`"
                ),
            }),
        }
    }
    out
}

/// True when the token before a `[` makes it an index expression:
/// an expression-ending ident, `]`, or `)`.
// Three independent exclusions read clearer unfused.
#[allow(clippy::nonminimal_bool)]
fn is_index_prefix(file: &SourceFile, prev: usize) -> bool {
    match file.code.get(prev).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => {
            !NON_INDEX_KEYWORDS.contains(&s.as_str())
                // A numeric literal before `[` (`2[…]`) cannot occur;
                // idents that are numbers come from array types after
                // `;` which is excluded anyway.
                && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
                // `&'a [u8]` — a lifetime before `[` is a type, not an
                // index expression.
                && !(prev > 0 && file.punct(prev - 1, '\''))
        }
        Some(Tok::Punct(']')) | Some(Tok::Punct(')')) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        check(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn flags_bare_unwrap_expect_panic_index() {
        let src = "fn f(v: &[u8]) -> u8 {\n\
                   let a = x.unwrap();\n\
                   let b = y.expect(\"nope\");\n\
                   if bad { panic!(\"boom\"); }\n\
                   v[0]\n\
                   }\n";
        let f = run(src);
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn pragma_with_reason_passes() {
        let src = "fn f() {\n\
                   // lint: allow(panic) — length checked two lines up\n\
                   let a = x.unwrap();\n\
                   let b = y.expect(\"e\"); // lint: allow(panic) — same-line pragma\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_finding() {
        let src = "// lint: allow(panic)\nlet a = x.unwrap();\n";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("justification"));
    }

    #[test]
    fn tests_and_strings_are_exempt() {
        let src = "fn live() { let s = \"x.unwrap()\"; }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { x.unwrap(); v[0]; panic!(); }\n\
                   }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn non_index_brackets_pass() {
        let src = "fn f(x: &'a [u8]) {\n\
                   let [a, b] = pair;\n\
                   let v = vec![1, 2];\n\
                   let t: [u8; 4] = [0; 4];\n\
                   let s: &mut [u8] = buf;\n\
                   }\n";
        assert!(run(src).is_empty());
    }
}
