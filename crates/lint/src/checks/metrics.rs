//! Rule 2 — metric-name registry.
//!
//! Every `counter`/`gauge`/`histogram` registration site must resolve
//! to a name (or `{placeholder}` template) matching the documented
//! grammar `layer(.segment)+`, with no duplicate registrations across
//! sites and no drift from the README Observability catalog.
//!
//! Name resolution is lexical: a string literal, or a `format!`
//! literal whose `{var}` placeholders become template placeholders
//! (`format!("service.{domain}.queries")` ⇒
//! `service.{domain}.queries`). A site whose name cannot be resolved
//! lexically — or whose placeholders expand to a closed set the README
//! enumerates (`{kind}` ⇒ `admitted`/`busy`) — declares what it
//! registers with `// lint: metric(name, name, …)`.

use crate::findings::{parse_pragmas, Finding, Rule};
use crate::lexer::Tok;
use crate::source::SourceFile;

/// One resolved metric registration: what a site says it creates.
#[derive(Clone, Debug)]
pub struct MetricSite {
    /// File the registration lives in.
    pub file: String,
    /// 1-based line of the registration call.
    pub line: u32,
    /// `counter`, `gauge`, or `histogram`.
    pub kind: String,
    /// The declared name/template, e.g. `server.lane.{domain}.depth`.
    pub name: String,
}

/// Collects the registration sites in one file, flagging sites whose
/// name cannot be resolved and names that break the grammar.
pub fn collect(file: &SourceFile) -> (Vec<Finding>, Vec<MetricSite>) {
    let mut findings = Vec::new();
    let mut sites = Vec::new();
    for i in 0..file.code.len() {
        let Some(kind) = file.ident(i) else { continue };
        if !matches!(kind, "counter" | "gauge" | "histogram")
            || !file.punct(i.wrapping_sub(1), '.')
            || !file.punct(i + 1, '(')
        {
            continue;
        }
        let line = file.code[i].line;
        if file.is_test_line(line) {
            continue;
        }
        let kind = kind.to_string();
        let pragmas = parse_pragmas(&file.lines.attached_comments(line as usize));
        let names: Vec<String> = if !pragmas.metrics.is_empty() {
            pragmas.metrics
        } else {
            match resolve_name(file, i + 2) {
                Some(name) => vec![name],
                None => {
                    findings.push(Finding {
                        file: file.path.clone(),
                        line,
                        rule: Rule::Metrics,
                        message: format!(
                            "{kind} registration whose name is not a literal or format! \
                             literal; declare it with `// lint: metric(<name>, …)`"
                        ),
                    });
                    continue;
                }
            }
        };
        for name in names {
            if let Err(why) = grammar_ok(&name) {
                findings.push(Finding {
                    file: file.path.clone(),
                    line,
                    rule: Rule::Metrics,
                    message: format!(
                        "metric name `{name}` breaks the `layer(.segment)+` grammar: {why}"
                    ),
                });
            }
            sites.push(MetricSite {
                file: file.path.clone(),
                line,
                kind: kind.clone(),
                name,
            });
        }
    }
    (findings, sites)
}

/// Resolves the first argument of a registration call starting at
/// token index `i` (just past the `(`): a string literal or a
/// `format!` string literal. `&` borrows are skipped.
fn resolve_name(file: &SourceFile, mut i: usize) -> Option<String> {
    while file.punct(i, '&') {
        i += 1;
    }
    match file.code.get(i).map(|t| &t.tok) {
        Some(Tok::Str(s)) => Some(s.clone()),
        Some(Tok::Ident(id)) if id == "format" => {
            if file.punct(i + 1, '!') && file.punct(i + 2, '(') {
                match file.code.get(i + 3).map(|t| &t.tok) {
                    Some(Tok::Str(s)) => Some(s.clone()),
                    _ => None,
                }
            } else {
                None
            }
        }
        _ => None,
    }
}

/// `layer(.segment)+` — ≥ 2 dot-separated segments; the first is a
/// plain `[a-z0-9_]+` layer, later segments may be `{placeholder}`.
fn grammar_ok(name: &str) -> Result<(), &'static str> {
    let segs: Vec<&str> = name.split('.').collect();
    if segs.len() < 2 {
        return Err("need at least `layer.metric`");
    }
    for (idx, seg) in segs.iter().enumerate() {
        let plain = !seg.is_empty()
            && seg
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_');
        let placeholder = seg.len() > 2
            && seg.starts_with('{')
            && seg.ends_with('}')
            && seg[1..seg.len() - 1]
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == '_');
        if idx == 0 && !plain {
            return Err("the layer segment must be plain [a-z0-9_]+");
        }
        if !plain && !placeholder {
            return Err("segments are [a-z0-9_]+ or {placeholder}");
        }
    }
    Ok(())
}

/// Cross-site checks: duplicate registrations (same name from two
/// different sites).
pub fn check_duplicates(sites: &[MetricSite]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut seen: std::collections::HashMap<&str, (&str, u32)> = std::collections::HashMap::new();
    for s in sites {
        match seen.get(s.name.as_str()) {
            Some((file, line)) if (*file, *line) != (s.file.as_str(), s.line) => {
                findings.push(Finding {
                    file: s.file.clone(),
                    line: s.line,
                    rule: Rule::Metrics,
                    message: format!(
                        "metric `{}` already registered at {file}:{line}; two sites must \
                         not claim one name",
                        s.name
                    ),
                });
            }
            Some(_) => {}
            None => {
                seen.insert(&s.name, (&s.file, s.line));
            }
        }
    }
    findings
}

/// README sync: the Observability catalog must list exactly the names
/// the code registers.
pub fn check_readme(sites: &[MetricSite], readme: &str, readme_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let catalog = readme_catalog(readme);
    let code: std::collections::BTreeSet<&str> = sites.iter().map(|s| s.name.as_str()).collect();
    let doc: std::collections::BTreeSet<&str> = catalog.iter().map(|(n, _)| n.as_str()).collect();
    for s in sites {
        if !doc.contains(s.name.as_str()) && code.contains(s.name.as_str()) {
            // report each missing name once, at its first site
            if sites
                .iter()
                .find(|t| t.name == s.name)
                .is_some_and(|t| (t.file.as_str(), t.line) == (s.file.as_str(), s.line))
            {
                findings.push(Finding {
                    file: s.file.clone(),
                    line: s.line,
                    rule: Rule::Metrics,
                    message: format!(
                        "metric `{}` is registered but missing from the README \
                         Observability catalog",
                        s.name
                    ),
                });
            }
        }
    }
    for (name, line) in &catalog {
        if !code.contains(name.as_str()) {
            findings.push(Finding {
                file: readme_path.to_string(),
                line: *line,
                rule: Rule::Metrics,
                message: format!(
                    "README Observability catalog lists `{name}` but no registration \
                     site declares it"
                ),
            });
        }
    }
    findings
}

/// Extracts `(name, line)` pairs from the README Observability table.
/// Backtick spans in the first column are names; a span starting with
/// `.` is a suffix of the previous name with its last segment(s)
/// replaced (`index.{domain}.plan_us` / `.search_us`).
pub fn readme_catalog(readme: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    let mut prev: Option<String> = None;
    for (idx, line) in readme.lines().enumerate() {
        let lineno = idx as u32 + 1;
        if line.starts_with("## ") {
            in_section = line.trim() == "## Observability";
            continue;
        }
        if !in_section || !line.starts_with('|') || line.contains("---") {
            continue;
        }
        let Some(first_cell) = line.trim_start_matches('|').split('|').next() else {
            continue;
        };
        if first_cell.trim() == "Metric" {
            continue;
        }
        for (k, span) in first_cell.split('`').enumerate() {
            if k % 2 == 0 || span.is_empty() {
                continue;
            }
            let name = if let Some(suffix) = span.strip_prefix('.') {
                let Some(base) = &prev else { continue };
                let keep = base
                    .split('.')
                    .count()
                    .saturating_sub(suffix.split('.').count());
                let mut segs: Vec<&str> = base.split('.').take(keep.max(1)).collect();
                segs.extend(suffix.split('.'));
                segs.join(".")
            } else {
                span.to_string()
            };
            prev = Some(name.clone());
            out.push((name, lineno));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_src(src: &str) -> (Vec<Finding>, Vec<MetricSite>) {
        collect(&SourceFile::parse("t.rs", src))
    }

    #[test]
    fn literal_and_format_resolve() {
        let (f, s) = collect_src(
            "fn f(r: &R) {\n\
             let a = r.counter(\"server.errors\");\n\
             let b = r.histogram(&format!(\"service.{domain}.queries\"));\n\
             }\n",
        );
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1].name, "service.{domain}.queries");
    }

    #[test]
    fn unresolvable_needs_pragma() {
        let (f, s) = collect_src("fn f(r: &R, n: &str) { r.counter(n); }\n");
        assert_eq!(f.len(), 1);
        assert!(s.is_empty());
        let (f2, s2) = collect_src(
            "fn f(r: &R, n: &str) {\n\
             // lint: metric(pool.jobs)\n\
             r.counter(n);\n\
             }\n",
        );
        assert!(f2.is_empty());
        assert_eq!(s2[0].name, "pool.jobs");
    }

    #[test]
    fn grammar_violations_flagged() {
        let (f, _) = collect_src("fn f(r: &R) { r.counter(\"BadName\"); }\n");
        assert_eq!(f.len(), 1);
        let (f, _) = collect_src("fn f(r: &R) { r.counter(\"nodots\"); }\n");
        assert_eq!(f.len(), 1);
        let (f, _) = collect_src("fn f(r: &R) { r.gauge(\"ok.{domain}.depth\"); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn duplicates_across_sites() {
        let (_, mut s1) = collect_src("fn f(r: &R) { r.counter(\"pool.jobs\"); }\n");
        let (_, s2) = collect_src("fn g(r: &R) {\nlet x = 1;\nr.counter(\"pool.jobs\");\n}\n");
        s1.extend(s2);
        assert_eq!(check_duplicates(&s1).len(), 1);
    }

    #[test]
    fn readme_suffix_expansion() {
        let readme = "## Observability\n\n| Metric | Kind |\n|---|---|\n\
                      | `index.{domain}.plan_us` / `.search_us` | histogram |\n\
                      | `pool.jobs`, `pool.queued` | counter / gauge |\n\n## Next\n";
        let names: Vec<String> = readme_catalog(readme).into_iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            vec![
                "index.{domain}.plan_us",
                "index.{domain}.search_us",
                "pool.jobs",
                "pool.queued"
            ]
        );
    }
}
