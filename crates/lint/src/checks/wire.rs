//! Rule 1 — wire-protocol invariants.
//!
//! Over `crates/server/src/wire.rs`: every `TAG_*` constant is unique,
//! request tags are `< 0x80` and response tags `>= 0x80` (classified
//! by which codec functions use them), every tag appears in **both**
//! the encode and the decode arm of its direction, and the README wire
//! tables list exactly the tags the code defines.

use crate::findings::{Finding, Rule};
use crate::lexer::Tok;
use crate::source::SourceFile;

/// Direction of a tag, derived from codec-function usage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Used by `encode_request` / `decode_request`.
    Request,
    /// Used by `encode_response` / `decode_response`.
    Response,
    /// Used by neither (already a finding).
    Unused,
}

/// One `TAG_*` constant as the code defines it.
#[derive(Clone, Debug)]
pub struct WireTag {
    /// Constant name (`TAG_HELLO`).
    pub name: String,
    /// Constant value.
    pub value: u8,
    /// 1-based definition line.
    pub line: u32,
    /// Request or response, by codec usage.
    pub direction: Direction,
}

/// Runs the wire rule. `readme` is `(path, text)` when the README
/// cross-check should run (skipped for fixture snippets).
pub fn check(file: &SourceFile, readme: Option<(&str, &str)>) -> (Vec<Finding>, Vec<WireTag>) {
    let mut findings = Vec::new();

    // 1. Collect `const TAG_*: u8 = <value>;` definitions.
    let mut tags: Vec<WireTag> = Vec::new();
    for i in 0..file.code.len() {
        if file.ident(i) != Some("const") {
            continue;
        }
        let Some(name) = file.ident(i + 1) else {
            continue;
        };
        if !name.starts_with("TAG_") || !file.punct(i + 2, ':') {
            continue;
        }
        let line = file.code[i].line;
        // const TAG_X: u8 = 0xNN; — scan to the `=`, take the literal.
        let value = (i..(i + 8).min(file.code.len()))
            .find(|&j| file.punct(j, '='))
            .and_then(|j| file.ident(j + 1))
            .and_then(parse_int);
        let Some(value) = value else {
            findings.push(Finding {
                file: file.path.clone(),
                line,
                rule: Rule::Wire,
                message: format!("`{name}` value is not a u8 literal the linter can read"),
            });
            continue;
        };
        tags.push(WireTag {
            name: name.to_string(),
            value,
            line,
            direction: Direction::Unused,
        });
    }

    // 2. Duplicate names / values.
    for a in 0..tags.len() {
        for b in 0..a {
            if tags[a].value == tags[b].value {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tags[a].line,
                    rule: Rule::Wire,
                    message: format!(
                        "`{}` reuses tag value 0x{:02x} already taken by `{}`",
                        tags[a].name, tags[a].value, tags[b].name
                    ),
                });
            }
            if tags[a].name == tags[b].name {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tags[a].line,
                    rule: Rule::Wire,
                    message: format!("duplicate definition of `{}`", tags[a].name),
                });
            }
        }
    }

    // 3. Usage in the four codec functions.
    let enc_req = fn_tag_uses(file, "encode_request");
    let dec_req = fn_tag_uses(file, "decode_request");
    let enc_resp = fn_tag_uses(file, "encode_response");
    let dec_resp = fn_tag_uses(file, "decode_response");
    for tag in &mut tags {
        let in_req = enc_req.contains(&tag.name) || dec_req.contains(&tag.name);
        let in_resp = enc_resp.contains(&tag.name) || dec_resp.contains(&tag.name);
        tag.direction = match (in_req, in_resp) {
            (true, true) => {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tag.line,
                    rule: Rule::Wire,
                    message: format!(
                        "`{}` is used by both the request and the response codec",
                        tag.name
                    ),
                });
                Direction::Unused
            }
            (true, false) => Direction::Request,
            (false, true) => Direction::Response,
            (false, false) => {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tag.line,
                    rule: Rule::Wire,
                    message: format!(
                        "`{}` is defined but used by no encode/decode function",
                        tag.name
                    ),
                });
                Direction::Unused
            }
        };
        // Value range per direction.
        match tag.direction {
            Direction::Request if tag.value >= 0x80 => findings.push(Finding {
                file: file.path.clone(),
                line: tag.line,
                rule: Rule::Wire,
                message: format!(
                    "request tag `{}` = 0x{:02x} must be < 0x80",
                    tag.name, tag.value
                ),
            }),
            Direction::Response if tag.value < 0x80 => findings.push(Finding {
                file: file.path.clone(),
                line: tag.line,
                rule: Rule::Wire,
                message: format!(
                    "response tag `{}` = 0x{:02x} must be >= 0x80",
                    tag.name, tag.value
                ),
            }),
            _ => {}
        }
        // Present in both the encode and the decode arm of its direction.
        let missing = match tag.direction {
            Direction::Request => [
                (!enc_req.contains(&tag.name), "encode_request"),
                (!dec_req.contains(&tag.name), "decode_request"),
            ],
            Direction::Response => [
                (!enc_resp.contains(&tag.name), "encode_response"),
                (!dec_resp.contains(&tag.name), "decode_response"),
            ],
            Direction::Unused => continue,
        };
        for (is_missing, func) in missing {
            if is_missing {
                findings.push(Finding {
                    file: file.path.clone(),
                    line: tag.line,
                    rule: Rule::Wire,
                    message: format!("`{}` never appears in `{func}`", tag.name),
                });
            }
        }
    }

    // 4. README wire-table sync.
    if let Some((readme_path, readme)) = readme {
        findings.extend(check_readme(&tags, readme, readme_path));
    }

    (findings, tags)
}

/// Compares the README wire-table tag values against the code's.
fn check_readme(tags: &[WireTag], readme: &str, readme_path: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut doc: Vec<(u8, u32)> = Vec::new();
    for (idx, line) in readme.lines().enumerate() {
        if !line.starts_with('|') {
            continue;
        }
        let Some(cell) = line.trim_start_matches('|').split('|').next() else {
            continue;
        };
        let cell = cell.trim();
        let Some(hex) = cell.strip_prefix("`0x").and_then(|c| c.strip_suffix('`')) else {
            continue;
        };
        if let Ok(v) = u8::from_str_radix(hex, 16) {
            doc.push((v, idx as u32 + 1));
        }
    }
    for tag in tags {
        if tag.direction == Direction::Unused {
            continue;
        }
        if !doc.iter().any(|(v, _)| *v == tag.value) {
            findings.push(Finding {
                file: readme_path.to_string(),
                line: 1,
                rule: Rule::Wire,
                message: format!(
                    "README wire tables are missing tag 0x{:02x} (`{}`)",
                    tag.value, tag.name
                ),
            });
        }
    }
    for (v, line) in &doc {
        if !tags.iter().any(|t| t.value == *v) {
            findings.push(Finding {
                file: readme_path.to_string(),
                line: *line,
                rule: Rule::Wire,
                message: format!("README wire table lists tag 0x{v:02x} the code does not define"),
            });
        }
    }
    findings
}

/// The set of `TAG_*` idents appearing inside the body of `fn name`.
fn fn_tag_uses(file: &SourceFile, name: &str) -> std::collections::BTreeSet<String> {
    let mut uses = std::collections::BTreeSet::new();
    let mut i = 0usize;
    while i < file.code.len() {
        if file.ident(i) == Some("fn") && file.ident(i + 1) == Some(name) {
            // Find the body: first `{`, then brace-match.
            let mut j = i + 2;
            while j < file.code.len() && !file.punct(j, '{') {
                j += 1;
            }
            let mut depth = 0i32;
            while j < file.code.len() {
                match &file.code[j].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Tok::Ident(s) if s.starts_with("TAG_") => {
                        uses.insert(s.clone());
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j;
        }
        i += 1;
    }
    uses
}

/// Parses `0xNN` / decimal ident text into a u8.
fn parse_int(s: &str) -> Option<u8> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u8::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
const TAG_A: u8 = 0x01;\n\
const TAG_B: u8 = 0x81;\n\
fn encode_request() { use_tag(TAG_A); }\n\
fn decode_request() { match t { TAG_A => {} } }\n\
fn encode_response() { use_tag(TAG_B); }\n\
fn decode_response() { match t { TAG_B => {} } }\n";

    #[test]
    fn clean_snippet_passes() {
        let (f, tags) = check(&SourceFile::parse("wire.rs", GOOD), None);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(tags.len(), 2);
        assert_eq!(tags[0].direction, Direction::Request);
        assert_eq!(tags[1].direction, Direction::Response);
    }

    #[test]
    fn duplicate_value_flagged() {
        let src = GOOD.replace("0x81", "0x01");
        let (f, _) = check(&SourceFile::parse("wire.rs", &src), None);
        assert!(
            f.iter().any(|x| x.message.contains("reuses tag value")),
            "{f:?}"
        );
    }

    #[test]
    fn response_below_0x80_flagged() {
        let src = GOOD.replace("0x81", "0x02");
        let (f, _) = check(&SourceFile::parse("wire.rs", &src), None);
        assert!(f.iter().any(|x| x.message.contains("must be >= 0x80")));
    }

    #[test]
    fn missing_decode_arm_flagged() {
        let src = GOOD.replace("match t { TAG_A => {} }", "{}");
        let (f, _) = check(&SourceFile::parse("wire.rs", &src), None);
        assert!(
            f.iter().any(|x| x.message.contains("decode_request")),
            "{f:?}"
        );
    }

    #[test]
    fn readme_drift_both_directions() {
        let readme = "| `0x01` | A |\n| `0x82` | stale |\n";
        let (f, _) = check(
            &SourceFile::parse("wire.rs", GOOD),
            Some(("README.md", readme)),
        );
        assert!(f.iter().any(|x| x.message.contains("missing tag 0x81")));
        assert!(f
            .iter()
            .any(|x| x.message.contains("0x82 the code does not define")));
    }
}
