const TAG_PING: u8 = 0x01;
const TAG_ECHO: u8 = 0x01;
const TAG_PONG: u8 = 0x02;
const TAG_LOST: u8 = 0x03;

fn encode_request(out: &mut Vec<u8>) {
    out.push(TAG_PING);
    out.push(TAG_ECHO);
}

fn decode_request(tag: u8) {
    match tag {
        TAG_ECHO => {}
        _ => {}
    }
}

fn encode_response(out: &mut Vec<u8>) {
    out.push(TAG_PONG);
}

fn decode_response(tag: u8) {
    match tag {
        TAG_PONG => {}
        _ => {}
    }
}
