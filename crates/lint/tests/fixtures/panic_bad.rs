fn handle(frames: &[u8], lock: &std::sync::Mutex<u32>) -> u8 {
    let first = frames[0];
    let guard = lock.lock().unwrap();
    let tag = frames.last().expect("non-empty frame");
    if *tag != first {
        panic!("tag mismatch");
    }
    *guard as u8
}
