fn register(registry: &MetricsRegistry, suffix: &str) {
    let _ = registry.counter("queries");
    let _ = registry.gauge(&dynamic_name(suffix));
    let _ = registry.histogram("Server.Latency");
}
