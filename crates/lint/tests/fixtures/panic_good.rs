fn handle(frames: &[u8], lock: &std::sync::Mutex<u32>) -> Option<u8> {
    let first = *frames.first()?;
    let guard = lock.lock().unwrap_or_else(|e| e.into_inner());
    // lint: allow(panic) — first()? above proves frames is non-empty
    let tag = frames[frames.len() - 1];
    if tag != first {
        return None;
    }
    let _ = *guard;
    Some(first)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Vec<u8> = vec![1];
        assert_eq!(v[0], v.last().copied().unwrap());
    }
}
