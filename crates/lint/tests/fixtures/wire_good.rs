const TAG_PING: u8 = 0x01;
const TAG_PONG: u8 = 0x81;

fn encode_request(out: &mut Vec<u8>) {
    out.push(TAG_PING);
}

fn decode_request(tag: u8) {
    match tag {
        TAG_PING => {}
        _ => {}
    }
}

fn encode_response(out: &mut Vec<u8>) {
    out.push(TAG_PONG);
}

fn decode_response(tag: u8) {
    match tag {
        TAG_PONG => {}
        _ => {}
    }
}
