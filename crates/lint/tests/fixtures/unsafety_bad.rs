fn sum(ptr: *const u64, n: usize) -> u64 {
    let mut acc = 0;
    for i in 0..n {
        unsafe {
            acc += *ptr.add(i);
        }
    }
    acc
}

unsafe fn load(ptr: *const u64) -> u64 {
    unsafe { *ptr }
}
