use std::sync::atomic::{AtomicBool, Ordering};

fn stop(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
