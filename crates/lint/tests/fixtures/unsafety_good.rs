fn sum(words: &[u64]) -> u64 {
    let mut acc = 0;
    for i in 0..words.len() {
        // SAFETY: i < words.len(), so the pointer stays inside the
        // slice allocation.
        unsafe {
            acc += *words.as_ptr().add(i);
        }
    }
    acc
}

// SAFETY: callers must pass a pointer that is valid for reads of one
// u64.
unsafe fn load(ptr: *const u64) -> u64 {
    // SAFETY: validity is the caller's contract, stated above.
    unsafe { *ptr }
}
