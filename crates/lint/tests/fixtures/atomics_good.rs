use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn stop(flag: &AtomicBool, epoch: &AtomicU64) {
    flag.store(true, Ordering::Release);
    epoch.fetch_add(1, Ordering::Relaxed);
    // lint: allow(seqcst) — this fence orders the flag against the
    // epoch for an (imaginary) remote observer; justified, so allowed.
    epoch.store(0, Ordering::SeqCst);
    let _ = flag.load(Ordering::Acquire);
    let _ = std::cmp::Ordering::Less;
}
