fn register(registry: &MetricsRegistry, suffix: &str) {
    let _ = registry.counter("server.queries");
    let _ = registry.gauge(&format!("server.{suffix}.depth"));
    // lint: metric(server.latency_us)
    let _ = registry.histogram(&dynamic_name());
}
