//! Per-rule fixture tests: every rule flags its bad fixture and passes
//! its clean (or correctly pragma'd) twin, and the live workspace
//! itself stays lint-clean — the linter gates the repo that ships it.

use pigeonring_lint::checks::{atomics, metrics, panics, unsafety, wire};
use pigeonring_lint::{Rule, SourceFile};

fn fixture(name: &str) -> SourceFile {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    SourceFile::parse(name, &text)
}

fn fixture_text(name: &str) -> String {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn panic_policy_flags_bad_fixture() {
    let findings = panics::check(&fixture("panic_bad.rs"));
    // frames[0], .unwrap(), .expect(), panic! — four distinct sites.
    assert_eq!(findings.len(), 4, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Panic));
}

#[test]
fn panic_policy_passes_good_fixture() {
    let findings = panics::check(&fixture("panic_good.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn safety_comment_flags_bad_fixture() {
    let findings = unsafety::check(&fixture("unsafety_bad.rs"));
    // The bare unsafe block and the bare unsafe fn; the fn's inner
    // block inherits no comment either — three sites total.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Unsafe));
}

#[test]
fn safety_comment_passes_good_fixture() {
    let findings = unsafety::check(&fixture("unsafety_good.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn atomic_ordering_flags_bad_fixture() {
    let findings = atomics::check(&fixture("atomics_bad.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::Atomics);
    assert!(findings[0].message.contains("SeqCst"));
}

#[test]
fn atomic_ordering_passes_good_fixture() {
    let findings = atomics::check(&fixture("atomics_good.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn metric_names_flags_bad_fixture() {
    let (findings, _) = metrics::collect(&fixture("metrics_bad.rs"));
    // "queries" misses the layer, dynamic_name() is not lexically
    // resolvable, and "Server.Latency" breaks the grammar.
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == Rule::Metrics));
}

#[test]
fn metric_names_passes_good_fixture() {
    let (findings, sites) = metrics::collect(&fixture("metrics_good.rs"));
    assert!(findings.is_empty(), "{findings:?}");
    let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "server.queries",
            "server.{suffix}.depth",
            "server.latency_us"
        ]
    );
}

#[test]
fn wire_tags_flags_bad_fixture() {
    let (findings, _) = wire::check(&fixture("wire_bad.rs"), None);
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(
        messages.iter().any(|m| m.contains("reuses tag value")),
        "{messages:?}"
    );
    assert!(
        messages.iter().any(|m| m.contains("must be >= 0x80")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("never appears in `decode_request`")),
        "{messages:?}"
    );
    assert!(
        messages
            .iter()
            .any(|m| m.contains("used by no encode/decode function")),
        "{messages:?}"
    );
}

#[test]
fn wire_tags_passes_good_fixture_and_readme() {
    let readme = fixture_text("wire_readme_good.md");
    let (findings, tags) = wire::check(
        &fixture("wire_good.rs"),
        Some(("wire_readme_good.md", &readme)),
    );
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(tags.len(), 2);
}

#[test]
fn wire_tags_flags_readme_drift() {
    let readme = fixture_text("wire_readme_bad.md");
    let (findings, _) = wire::check(
        &fixture("wire_good.rs"),
        Some(("wire_readme_bad.md", &readme)),
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("missing tag 0x81")),
        "{findings:?}"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("0x02 the code does not define")),
        "{findings:?}"
    );
}

/// The repo that ships the linter must itself be clean: a full
/// unfiltered scan (cross-file rules included) over the live workspace.
#[test]
fn live_workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf();
    let run = pigeonring_lint::workspace::run(&root, &[]).expect("workspace scan");
    assert!(
        run.findings.is_empty(),
        "live workspace has lint findings:\n{}",
        run.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(run.files_scanned > 50, "scan looks truncated");
    assert!(!run.wire_tags.is_empty() && !run.metric_sites.is_empty());
}
