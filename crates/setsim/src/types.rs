//! Token-set records, similarity thresholds, and exact verification.
//!
//! Records are stored as sorted arrays of *token ranks*: when a
//! [`Collection`] is built, tokens are re-numbered by the global order
//! used throughout the prefix-filter literature (increasing document
//! frequency, ties by token id), so that natural `u32` order **is** the
//! global order and prefixes are simply array prefixes.
//!
//! Jaccard thresholds are exact rationals (`num/den`), so every
//! `τ`-dependent bound — required overlap, length filter — is computed in
//! integer arithmetic with no floating-point boundary errors:
//!
//! * `J(x, q) ≥ τ  ⟺  (den + num)·|x ∩ q| ≥ num·(|x| + |q|)`
//! * required overlap `o(x, q) = ⌈num·(|x|+|q|) / (den+num)⌉`
//! * length filter `num·|q| ≤ den·|x|` and `num·|x| ≤ den·|q|`

/// A similarity threshold: overlap `|x ∩ q| ≥ o` or Jaccard
/// `J(x, q) ≥ num/den`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Threshold {
    /// Overlap similarity `O(x, y) = |x ∩ y| ≥ o`.
    Overlap(u32),
    /// Jaccard similarity `J(x, y) = |x∩y|/|x∪y| ≥ num/den` (exact
    /// rational, `0 < num ≤ den`).
    Jaccard {
        /// Numerator.
        num: u32,
        /// Denominator.
        den: u32,
    },
}

impl Threshold {
    /// A Jaccard threshold from a float such as `0.7` (rounded to 3
    /// decimal places and stored exactly).
    ///
    /// # Panics
    /// Panics unless `0 < tau ≤ 1`.
    pub fn jaccard(tau: f64) -> Self {
        assert!(
            tau > 0.0 && tau <= 1.0,
            "Jaccard threshold must be in (0, 1]"
        );
        let num = (tau * 1000.0).round() as u32;
        Threshold::Jaccard { num, den: 1000 }
    }

    /// The minimum overlap any valid partner of a set of size `s` must
    /// reach: `⌈τ·s⌉` for Jaccard (attained when the partner has minimal
    /// size `τ·s`), `o` for overlap.
    pub fn min_overlap_single(&self, s: usize) -> u32 {
        match *self {
            Threshold::Overlap(o) => o,
            Threshold::Jaccard { num, den } => {
                ((num as u64 * s as u64).div_ceil(den as u64)) as u32
            }
        }
    }

    /// The exact required overlap for a specific pair of sizes:
    /// `⌈num(sx+sq)/(den+num)⌉` for Jaccard, `o` for overlap.
    pub fn min_overlap_pair(&self, sx: usize, sq: usize) -> u32 {
        match *self {
            Threshold::Overlap(o) => o,
            Threshold::Jaccard { num, den } => {
                ((num as u64 * (sx + sq) as u64).div_ceil((den + num) as u64)) as u32
            }
        }
    }

    /// Whether a record of size `sx` can possibly match a query of size
    /// `sq` (the length filter \[8\]).
    pub fn size_compatible(&self, sx: usize, sq: usize) -> bool {
        match *self {
            Threshold::Overlap(o) => sx as u64 >= o as u64 && sq as u64 >= o as u64,
            Threshold::Jaccard { num, den } => {
                num as u64 * sq as u64 <= den as u64 * sx as u64
                    && num as u64 * sx as u64 <= den as u64 * sq as u64
            }
        }
    }

    /// Whether an exact overlap `o` between sizes `sx`, `sq` satisfies
    /// the threshold.
    pub fn satisfied(&self, o: u32, sx: usize, sq: usize) -> bool {
        match *self {
            Threshold::Overlap(t) => o >= t,
            Threshold::Jaccard { num, den } => {
                (den + num) as u64 * o as u64 >= num as u64 * (sx + sq) as u64
            }
        }
    }
}

/// The token ranking table: raw token id → dense rank in global
/// frequency order (rarest token = rank 0; ties by token id).
///
/// Built once over a corpus with [`TokenDictionary::build`]; shard-local
/// collections then attach to it with [`Collection::with_dictionary`],
/// so every shard agrees on the rank space — and a raw query can be
/// ranked once ([`TokenDictionary::rank_query`]) and searched against
/// every shard.
#[derive(Debug)]
pub struct TokenDictionary {
    /// Raw token id → rank.
    rank: pigeonring_core::fxhash::FxHashMap<u32, u32>,
    universe: usize,
}

impl TokenDictionary {
    /// Builds the dictionary over raw token sets. Frequency counts each
    /// token once per record (duplicates within a record are ignored),
    /// matching [`Collection::new`]'s record dedup, so a dictionary
    /// built from a corpus ranks exactly as the legacy single-collection
    /// path does.
    pub fn build(raw: &[Vec<u32>]) -> Self {
        use pigeonring_core::fxhash::FxHashMap;
        let mut freq: FxHashMap<u32, u32> = FxHashMap::default();
        let mut seen: Vec<u32> = Vec::new();
        for r in raw {
            seen.clear();
            seen.extend_from_slice(r);
            seen.sort_unstable();
            seen.dedup();
            for &t in &seen {
                *freq.entry(t).or_insert(0) += 1;
            }
        }
        let mut tokens: Vec<(u32, u32)> = freq.iter().map(|(&t, &f)| (f, t)).collect();
        tokens.sort_unstable();
        let rank: FxHashMap<u32, u32> = tokens
            .iter()
            .enumerate()
            .map(|(i, &(_, t))| (t, i as u32))
            .collect();
        TokenDictionary {
            rank,
            universe: tokens.len(),
        }
    }

    /// Number of distinct tokens.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The rank of raw token `t`, if the corpus contains it.
    pub fn rank_of(&self, t: u32) -> Option<u32> {
        self.rank.get(&t).copied()
    }

    /// Translates a *raw*-token query into this dictionary's rank space:
    /// known tokens map to their rank; unseen tokens map to fresh
    /// distinct ids `≥ universe` (they can never match a record token,
    /// so both the query size and every record overlap — and hence any
    /// set-similarity value — are preserved exactly). Returns a sorted,
    /// deduplicated rank array suitable for the search engines.
    pub fn rank_query(&self, raw: &[u32]) -> Vec<u32> {
        self.rank_query_with(&mut Vec::new(), raw)
    }

    /// [`TokenDictionary::rank_query`] against a caller-owned dedup
    /// buffer (reused across queries by the planning path, so only the
    /// final rank array allocates).
    pub fn rank_query_with(&self, buf: &mut Vec<u32>, raw: &[u32]) -> Vec<u32> {
        buf.clear();
        buf.extend_from_slice(raw);
        buf.sort_unstable();
        buf.dedup();
        let mut next_unseen = self.universe as u32;
        let mut out: Vec<u32> = buf
            .iter()
            .map(|t| match self.rank.get(t) {
                Some(&r) => r,
                None => {
                    let id = next_unseen;
                    next_unseen += 1;
                    id
                }
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// A collection of token-set records, re-numbered into the global
/// frequency order of a (possibly shared) [`TokenDictionary`] (rarest
/// token = rank 0).
#[derive(Clone, Debug)]
pub struct Collection {
    records: Vec<Vec<u32>>,
    dict: std::sync::Arc<TokenDictionary>,
}

impl Collection {
    /// Builds a collection from raw token sets (arbitrary `u32` token
    /// ids; duplicates within a record are removed) with a private
    /// dictionary ranked from these records alone (the legacy
    /// single-collection path; sharded builds share one corpus-wide
    /// dictionary via [`Collection::with_dictionary`]).
    pub fn new(raw: Vec<Vec<u32>>) -> Self {
        let dict = std::sync::Arc::new(TokenDictionary::build(&raw));
        Collection::with_dictionary(raw, dict)
    }

    /// Builds a collection over a shared dictionary: every record token
    /// is mapped through `dict`'s corpus-wide rank space, so collections
    /// of different shards of one corpus agree on ranks (and on the
    /// class assignments derived from them).
    ///
    /// # Panics
    /// Panics if any record contains a token absent from `dict`: the
    /// dictionary must be built over a superset of these records (the
    /// whole corpus), or matching records could silently be missed.
    pub fn with_dictionary(raw: Vec<Vec<u32>>, dict: std::sync::Arc<TokenDictionary>) -> Self {
        let records: Vec<Vec<u32>> = raw
            .into_iter()
            .map(|mut r| {
                r.sort_unstable();
                r.dedup();
                for t in r.iter_mut() {
                    *t = dict.rank_of(*t).expect(
                        "record token missing from the dictionary — build the \
                         TokenDictionary over the full corpus",
                    );
                }
                r.sort_unstable();
                r
            })
            .collect();
        Collection { records, dict }
    }

    /// The shared token dictionary.
    pub fn dictionary(&self) -> &std::sync::Arc<TokenDictionary> {
        &self.dict
    }

    /// Translates a *raw*-token query into this collection's rank space;
    /// see [`TokenDictionary::rank_query`].
    pub fn rank_query(&self, raw: &[u32]) -> Vec<u32> {
        self.dict.rank_query(raw)
    }

    /// The records (sorted rank arrays).
    pub fn records(&self) -> &[Vec<u32>] {
        &self.records
    }

    /// Record `id`.
    pub fn record(&self, id: usize) -> &[u32] {
        &self.records[id]
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct tokens in the dictionary's corpus (the whole
    /// corpus for shared dictionaries, not just this collection's
    /// records).
    pub fn universe(&self) -> usize {
        self.dict.universe()
    }
}

/// Exact overlap of two sorted rank arrays.
pub fn overlap(x: &[u32], y: &[u32]) -> u32 {
    let (mut i, mut j, mut o) = (0usize, 0usize, 0u32);
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
            }
        }
    }
    o
}

/// "Fast verification" \[60\]: merge intersection that abandons as soon
/// as the remaining elements cannot reach `required`. Returns the exact
/// overlap if it is `≥ required`, else `None`.
pub fn overlap_at_least(x: &[u32], y: &[u32], required: u32) -> Option<u32> {
    let (mut i, mut j, mut o) = (0usize, 0usize, 0u32);
    while i < x.len() && j < y.len() {
        // Upper bound on the final overlap from here.
        let rest = (x.len() - i).min(y.len() - j) as u32;
        if o + rest < required {
            return None;
        }
        match x[i].cmp(&y[j]) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => {
                o += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (o >= required).then_some(o)
}

/// Linear-scan reference engine: verifies every record.
pub struct LinearScanSets<'a> {
    collection: &'a Collection,
}

impl<'a> LinearScanSets<'a> {
    /// Wraps a collection.
    pub fn new(collection: &'a Collection) -> Self {
        LinearScanSets { collection }
    }

    /// All ids satisfying the threshold against `q` (a sorted rank
    /// array), ascending.
    pub fn search(&self, q: &[u32], threshold: Threshold) -> Vec<u32> {
        self.collection
            .records()
            .iter()
            .enumerate()
            .filter(|(_, x)| {
                threshold.size_compatible(x.len(), q.len())
                    && threshold.satisfied(overlap(x, q), x.len(), q.len())
            })
            .map(|(id, _)| id as u32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_rational_bounds_are_exact() {
        let t = Threshold::jaccard(0.5);
        // J(x,y) ≥ 0.5 with |x| = |y| = 4 requires o ≥ ⌈500·8/1500⌉ = 3.
        assert_eq!(t.min_overlap_pair(4, 4), 3);
        assert!(t.satisfied(3, 4, 4)); // J = 3/5 ≥ 0.5
        assert!(!t.satisfied(2, 4, 4)); // J = 2/6 < 0.5

        // Boundary: J exactly τ must satisfy (≥, not >): o=2, sizes 3,3:
        // J = 2/4 = 0.5.
        assert!(t.satisfied(2, 3, 3));
    }

    #[test]
    fn jaccard_to_overlap_conversion_matches_paper() {
        // §8.1: J(x,y) ≥ τ ⟺ |x∩y| ≥ (|x|+|y|)·τ/(1+τ).
        let t = Threshold::jaccard(0.8);
        for (sx, sq) in [(10usize, 10usize), (9, 11), (20, 17)] {
            let o = t.min_overlap_pair(sx, sq);
            // o is the smallest integer with (1+τ)o ≥ τ(sx+sq).
            assert!(1800 * o as u64 >= 800 * (sx + sq) as u64);
            assert!(1800 * (o as u64 - 1) < 800 * (sx + sq) as u64);
        }
    }

    #[test]
    fn length_filter_is_symmetric_and_correct() {
        let t = Threshold::jaccard(0.7);
        assert!(t.size_compatible(7, 10));
        assert!(!t.size_compatible(6, 10)); // 6 < 0.7·10
        assert!(t.size_compatible(14, 10)); // 14 ≤ 10/0.7 ≈ 14.28
        assert!(!t.size_compatible(15, 10));
    }

    #[test]
    fn overlap_merge_is_correct() {
        assert_eq!(overlap(&[1, 3, 5, 7], &[2, 3, 5, 8]), 2);
        assert_eq!(overlap(&[], &[1]), 0);
        assert_eq!(overlap(&[4], &[4]), 1);
    }

    #[test]
    fn overlap_at_least_abandons_correctly() {
        let x = [1u32, 2, 3, 10, 11];
        let y = [4u32, 5, 6, 10, 11];
        assert_eq!(overlap_at_least(&x, &y, 2), Some(2));
        assert_eq!(overlap_at_least(&x, &y, 3), None);
    }

    #[test]
    fn collection_reranks_by_frequency() {
        // Token 9 appears three times, token 5 twice, token 1 once:
        // ranks must be 1→0 (rarest), 5→1, 9→2.
        let c = Collection::new(vec![vec![9, 5], vec![9, 5, 1], vec![9]]);
        assert_eq!(c.universe(), 3);
        assert_eq!(c.record(0), &[1, 2]);
        assert_eq!(c.record(1), &[0, 1, 2]);
        assert_eq!(c.record(2), &[2]);
    }

    #[test]
    fn collection_dedups_record_tokens() {
        let c = Collection::new(vec![vec![3, 3, 7, 7, 7]]);
        assert_eq!(c.record(0).len(), 2);
    }

    #[test]
    fn shared_dictionary_gives_one_rank_space_across_shards() {
        // A corpus split into two "shards" over one dictionary: a raw
        // query ranks identically against both, and record ranks agree
        // with the corpus-wide frequency order.
        let corpus = vec![vec![9u32, 5], vec![9, 5, 1], vec![9], vec![5, 1]];
        let dict = std::sync::Arc::new(TokenDictionary::build(&corpus));
        let left = Collection::with_dictionary(corpus[..2].to_vec(), std::sync::Arc::clone(&dict));
        let right = Collection::with_dictionary(corpus[2..].to_vec(), std::sync::Arc::clone(&dict));
        assert_eq!(left.universe(), right.universe());
        assert_eq!(left.rank_query(&[5, 1, 42]), right.rank_query(&[5, 1, 42]));
        // Corpus frequencies: 9 → 3, 5 → 3, 1 → 2; ranks 1→0, 5→1, 9→2.
        assert_eq!(dict.rank_of(1), Some(0));
        assert_eq!(dict.rank_of(5), Some(1));
        assert_eq!(dict.rank_of(9), Some(2));
        assert_eq!(right.record(1), &[0, 1]); // {5, 1} → ranks {1, 0}
    }

    #[test]
    fn dictionary_ranking_matches_legacy_collection_ranking() {
        // TokenDictionary::build over a corpus must rank exactly as
        // Collection::new does (frequency counted once per record,
        // ties by token id) — the K = 1 global-vs-legacy equivalence.
        let corpus = vec![vec![7u32, 7, 3], vec![3, 11], vec![11, 7, 5], vec![5]];
        let legacy = Collection::new(corpus.clone());
        let global = Collection::with_dictionary(
            corpus.clone(),
            std::sync::Arc::new(TokenDictionary::build(&corpus)),
        );
        assert_eq!(legacy.records(), global.records());
        assert_eq!(legacy.universe(), global.universe());
        assert_eq!(legacy.rank_query(&[3, 99]), global.rank_query(&[3, 99]));
    }

    #[test]
    #[should_panic(expected = "record token missing from the dictionary")]
    fn foreign_record_tokens_fail_loudly() {
        let dict = std::sync::Arc::new(TokenDictionary::build(&[vec![1u32, 2]]));
        let _ = Collection::with_dictionary(vec![vec![3u32]], dict);
    }

    #[test]
    fn linear_scan_overlap_threshold() {
        let c = Collection::new(vec![vec![1, 2, 3, 4], vec![1, 2, 9, 10], vec![7, 8, 9, 10]]);
        let q = c.record(0).to_vec();
        let scan = LinearScanSets::new(&c);
        assert_eq!(scan.search(&q, Threshold::Overlap(4)), vec![0]);
        assert_eq!(scan.search(&q, Threshold::Overlap(2)), vec![0, 1]);
        assert_eq!(scan.search(&q, Threshold::Overlap(1)), vec![0, 1]);
    }
}
