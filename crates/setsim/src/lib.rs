//! # pigeonring-setsim
//!
//! Set similarity search (Problem 3 of the paper): given a collection of
//! token sets and a query set `q`, find all `x` with `sim(x, q) ≥ τ` for
//! overlap or Jaccard similarity. This is the paper's `≥`-direction
//! τ-selection problem (§6.2).
//!
//! Engines:
//!
//! * [`Pkwise`] — the pkwise baseline \[103\]: the token universe is split
//!   into `m − 1` classes; every record indexes the k-combinations
//!   (k-wise signatures) of its class-`k` prefix tokens, and a candidate
//!   must share a signature with the query in some class.
//! * [`RingSetSim`] — pkwise plus the §6.2 pigeonring second step: from a
//!   matched class `k`, extend the chain over the class-overlap boxes
//!   `b_i = |x_i ∩ q_i|` and keep the object only if the chain is
//!   prefix-viable under the `≥`-direction Theorem 7 quotas
//!   (`‖c^{l'}‖₁ ≥ 1 − l' + Σ t_j`). Chains that would touch the suffix
//!   box `b₀` verify directly (the paper's implementation remark).
//! * [`AdaptSearch`] — prefix-filter baseline configured as in the paper's
//!   experiments (§8.1): the AllPairs/PPJoin search version (inverted
//!   prefix lists + length and position filters).
//! * [`PartAlloc`] — partition-filter baseline \[30\] adapted to search:
//!   per-size-group universe partitioning with exact segment matching.
//!
//! All engines answer through the same verifier ("fast verification"
//! \[60\]: merge intersection with early termination) and agree with
//! linear scan on every input — this is asserted by the test suite.

pub mod adapt;
pub mod join;
pub mod partalloc;
pub mod pkwise;
pub mod ring;
pub mod service;
pub mod types;

pub use adapt::AdaptSearch;
pub use join::self_join;
pub use partalloc::PartAlloc;
pub use pkwise::{ClassMap, PkwiseIndex};
pub use ring::{Pkwise, RingSetSim, SetPlan, SetScratch, SetStats};
pub use service::SetParams;
pub use types::{Collection, LinearScanSets, Threshold, TokenDictionary};

#[cfg(test)]
mod paper_examples;
