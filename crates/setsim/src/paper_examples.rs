//! Number-for-number reproduction of Example 10 / Figure 3 (§6.2).

use crate::pkwise::{compute_prefix, ClassMap};
use crate::ring::RingSetSim;
use crate::types::{overlap, Collection, Threshold};
use pigeonring_core::viability::{check_prefix_viable, Direction, ThresholdScheme};

/// Tokens A..P as ranks 0..15 with the paper's classes
/// (A−B: 1, C−D: 2, E−F: 3, G−P: 4) and `m = 5`.
fn figure3_classes() -> ClassMap {
    let cls: Vec<u8> = (0..16u32)
        .map(|r| match r {
            0 | 1 => 1,
            2 | 3 => 2,
            4 | 5 => 3,
            _ => 4,
        })
        .collect();
    ClassMap::explicit(5, cls)
}

fn letters(s: &str) -> Vec<u32> {
    s.bytes().map(|b| (b - b'A') as u32).collect()
}

#[test]
fn example_10_boxes_thresholds_and_filtering() {
    // x = A C D E G H I J K L M N, q = B C D F G H I L M N O P,
    // τ = 9 (overlap), m = 5. f(x, q) = 8 < 9: a pkwise false positive
    // that the pigeonring filter removes at l = 2.
    let classes = figure3_classes();
    let x = letters("ACDEGHIJKLMN");
    let q = letters("BCDFGHILMNOP");
    assert_eq!(overlap(&x, &q), 8);

    let xp = compute_prefix(&x, &classes, 9).unwrap();
    let qp = compute_prefix(&q, &classes, 9).unwrap();
    assert_eq!((xp.len, qp.len), (9, 9), "both prefix lengths are 9");

    // Thresholds: T = (4, 1, 2, 2, 4), summing to τ + m − 1 = 13.
    let mut t = vec![0i64; 5];
    t[0] = q.len() as i64 - qp.len as i64 + 1;
    for (k, tk) in t.iter_mut().enumerate().skip(1) {
        let cnt = qp.count(k) as i64;
        *tk = if cnt >= k as i64 { k as i64 } else { cnt + 1 };
    }
    assert_eq!(t, vec![4, 1, 2, 2, 4]);
    let scheme = ThresholdScheme::integer_reduced(t);
    scheme.assert_sums_to(9, Direction::Ge);

    // Boxes: b1..b4 are class overlaps within prefixes; b2 = 2 is the
    // only viable box (b_i ≥ t_i).
    let boxes: Vec<i64> = (0..5)
        .map(|i| {
            if i == 0 {
                // Suffix box: x's suffix (L, M, N) against q — but the
                // worked example only needs b1..b4; b0 = |{L,M,N} ∩ q| = 3.
                3
            } else {
                overlap(&xp.grouped[i - 1], &qp.grouped[i - 1]) as i64
            }
        })
        .collect();
    assert_eq!(&boxes[1..], &[0, 2, 0, 3]);
    let viable: Vec<usize> = (1..5)
        .filter(|&i| scheme.chain_viable(boxes[i], i, 1, Direction::Ge))
        .collect();
    assert_eq!(viable, vec![2], "b2 is the only viable box");

    // l = 2 from start 2: b2 + b3 = 2 < t2 + t3 − l + 1 = 3 ⇒ filtered.
    assert!(!scheme.chain_viable(boxes[2] + boxes[3], 2, 2, Direction::Ge));
    assert_eq!(
        check_prefix_viable(&boxes, &scheme, Direction::Ge, 2, 2),
        Err(2)
    );
}

#[test]
fn example_10_end_to_end() {
    // Index x (and some distractors) and query with q at overlap τ = 9:
    // pkwise (l = 1) must surface x as a candidate; Ring at l = 2 must
    // filter it; neither may report it as a result.
    let x = letters("ACDEGHIJKLMN");
    let q = letters("BCDFGHILMNOP");
    let exact = letters("BCDFGHILMNOP"); // a true result (q itself)

    // The collection's frequency re-ranking is identity here because all
    // tokens are distinct across the alphabet with equal frequencies —
    // except tokens appearing twice. Use raw ranks via explicit records.
    let c = Collection::new(vec![x.clone(), exact.clone()]);
    // After re-ranking ties are broken by token id, and every token keeps
    // relative alphabetical order, so the explicit class map still
    // matches token ranks 0..15 only if the rank permutation preserves
    // classes. Verify the assumption instead of assuming it:
    let mut ring = RingSetSim::with_class_map(
        Collection::new(vec![x.clone(), exact.clone()]),
        Threshold::Overlap(9),
        ClassMap::explicit(5, {
            // Recompute classes in rank space: rank tokens of the
            // collection by (freq, id) exactly as Collection does.
            let mut freq = std::collections::BTreeMap::new();
            for r in [&x, &exact] {
                for &tkn in r {
                    *freq.entry(tkn).or_insert(0u32) += 1;
                }
            }
            let mut toks: Vec<(u32, u32)> = freq.iter().map(|(&tkn, &f)| (f, tkn)).collect();
            toks.sort_unstable();
            toks.iter()
                .map(|&(_, tkn)| match tkn {
                    0 | 1 => 1u8,
                    2 | 3 => 2,
                    4 | 5 => 3,
                    _ => 4,
                })
                .collect()
        }),
    );
    let _ = c;
    let q_ranked = {
        // Queries must be expressed in rank space; re-rank q the same way.
        let mut freq = std::collections::BTreeMap::new();
        for r in [&x, &exact] {
            for &tkn in r {
                *freq.entry(tkn).or_insert(0u32) += 1;
            }
        }
        let mut toks: Vec<(u32, u32)> = freq.iter().map(|(&tkn, &f)| (f, tkn)).collect();
        toks.sort_unstable();
        let rank: std::collections::BTreeMap<u32, u32> = toks
            .iter()
            .enumerate()
            .map(|(i, &(_, tkn))| (tkn, i as u32))
            .collect();
        let mut r: Vec<u32> = q.iter().map(|tkn| rank[tkn]).collect();
        r.sort_unstable();
        r
    };

    let (res_l1, stats_l1) = ring.search(&q_ranked, 1);
    assert_eq!(res_l1, vec![1], "only the exact record is a true result");
    let (res_l2, stats_l2) = ring.search(&q_ranked, 2);
    assert_eq!(res_l2, vec![1]);
    assert!(
        stats_l2.candidates <= stats_l1.candidates,
        "pigeonring may only shrink the candidate set"
    );
}
