//! [`SearchEngine`] adapter: plugs [`RingSetSim`] into the
//! `pigeonring-service` sharded query layer.
//!
//! Queries through this adapter are **raw token sets** (arbitrary `u32`
//! token ids, as fed to [`crate::Collection::new`]), not rank arrays:
//! every shard re-ranks its own records by local frequency, so a single
//! rank-space query cannot be valid across shards. The adapter
//! translates the raw query into each shard's rank space with
//! [`crate::Collection::rank_query`], which preserves set sizes and
//! overlaps exactly — so the merged result set is identical for every
//! shard count.

use crate::ring::{RingSetSim, SetScratch, SetStats};
use pigeonring_service::{MergeStats, SearchEngine};

/// Per-batch parameters for set-similarity search through the service
/// layer (the similarity threshold is fixed at index-build time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetParams {
    /// Chain length `l` (clamped to `[1..m]` by the engine).
    pub l: usize,
}

impl MergeStats for SetStats {
    fn merge(&mut self, other: &Self) {
        SetStats::merge(self, other);
    }
}

impl SearchEngine for RingSetSim {
    /// A **raw** token set (not a rank array; see the module docs).
    type Query = Vec<u32>;
    type Params = SetParams;
    type Stats = SetStats;
    type Scratch = SetScratch;

    fn num_records(&self) -> usize {
        self.collection().len()
    }

    fn search_into(
        &self,
        scratch: &mut SetScratch,
        query: &Vec<u32>,
        params: &SetParams,
        out: &mut Vec<u32>,
    ) -> SetStats {
        let ranked = self.collection().rank_query(query);
        let (ids, stats) = self.search_with(scratch, &ranked, params.l);
        out.extend(ids);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkwise::ClassMap;
    use crate::types::{Collection, Threshold};

    #[test]
    fn unseen_tokens_are_safe_under_explicit_class_maps() {
        // Regression: rank_query maps tokens unseen by the collection to
        // ranks ≥ universe; ClassMap::class_of must fall back to hashing
        // for those instead of indexing past an explicit table.
        let raw = vec![vec![1u32, 2, 3], vec![2, 3, 4], vec![1, 3, 4]];
        let c = Collection::new(raw);
        let universe = c.universe();
        let classes = ClassMap::explicit(3, vec![1; universe]);
        let eng = RingSetSim::with_class_map(c, Threshold::jaccard(0.5), classes);
        let mut scratch = SetScratch::default();
        let mut out = Vec::new();
        // Token 99 never occurs in the collection.
        let stats = eng.search_into(
            &mut scratch,
            &vec![1, 2, 3, 99],
            &SetParams { l: 2 },
            &mut out,
        );
        assert_eq!(
            out,
            vec![0],
            "only record 0 reaches J ≥ 0.5 against {{1,2,3,99}}"
        );
        assert_eq!(stats.results, 1);
    }
}
