//! [`SearchEngine`] adapter: plugs [`RingSetSim`] into the
//! `pigeonring-service` sharded query layer.
//!
//! Queries through this adapter are **raw token sets** (arbitrary `u32`
//! token ids, as fed to [`crate::Collection::new`]), not rank arrays.
//! The plan ([`SetPlan`]) ranks the raw query through the collection's
//! [`TokenDictionary`](crate::types::TokenDictionary) and enumerates its
//! k-wise signatures once. With the legacy per-shard build each shard
//! ranks independently, so plans are shard-local (the default
//! `search_into` path re-plans per shard — translation preserves set
//! sizes and overlaps exactly, so results are identical either way).
//! With a dictionary-first build (`ShardedIndex::build_global` over one
//! corpus-wide dictionary) all shards share one rank space, so the
//! service layer ranks and enumerates each query exactly once and every
//! shard probes with the same pre-enumerated signatures.

use crate::ring::{RingSetSim, SetPlan, SetScratch, SetStats};
use pigeonring_service::{MergeStats, SearchEngine};

/// Per-batch parameters for set-similarity search through the service
/// layer (the similarity threshold is fixed at index-build time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetParams {
    /// Chain length `l` (clamped to `[1..m]` by the engine).
    pub l: usize,
}

impl MergeStats for SetStats {
    fn merge(&mut self, other: &Self) {
        SetStats::merge(self, other);
    }

    fn visit(&self, emit: &mut dyn FnMut(&'static str, u64)) {
        emit("candidates", self.candidates as u64);
        emit("results", self.results as u64);
        emit("sig_probes", self.sig_probes as u64);
        emit("viable_boxes", self.viable_boxes as u64);
        emit("boxes_checked", self.boxes_checked as u64);
        emit("skipped_by_corollary2", self.skipped_by_corollary2 as u64);
    }
}

impl SearchEngine for RingSetSim {
    /// A **raw** token set (not a rank array; see the module docs).
    type Query = Vec<u32>;
    type Params = SetParams;
    type Stats = SetStats;
    type Scratch = SetScratch;
    type Plan = SetPlan;

    fn num_records(&self) -> usize {
        self.collection().len()
    }

    fn plan(&self, scratch: &mut SetScratch, query: &Vec<u32>) -> SetPlan {
        self.plan_raw_query(scratch, query)
    }

    fn search_planned(
        &self,
        scratch: &mut SetScratch,
        plan: &SetPlan,
        _query: &Vec<u32>,
        params: &SetParams,
        out: &mut Vec<u32>,
    ) -> SetStats {
        let (ids, stats) = self.search_with_plan(scratch, plan, params.l);
        out.extend(ids);
        stats
    }

    fn plan_stats(&self, plan: &SetPlan) -> SetStats {
        SetStats {
            sig_probes: plan.sig_probes(),
            ..SetStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pkwise::ClassMap;
    use crate::types::{Collection, Threshold};

    #[test]
    fn unseen_tokens_are_safe_under_explicit_class_maps() {
        // Regression: rank_query maps tokens unseen by the collection to
        // ranks ≥ universe; ClassMap::class_of must fall back to hashing
        // for those instead of indexing past an explicit table.
        let raw = vec![vec![1u32, 2, 3], vec![2, 3, 4], vec![1, 3, 4]];
        let c = Collection::new(raw);
        let universe = c.universe();
        let classes = ClassMap::explicit(3, vec![1; universe]);
        let eng = RingSetSim::with_class_map(c, Threshold::jaccard(0.5), classes);
        let mut scratch = SetScratch::default();
        let mut out = Vec::new();
        // Token 99 never occurs in the collection.
        let stats = eng.search_into(
            &mut scratch,
            &vec![1, 2, 3, 99],
            &SetParams { l: 2 },
            &mut out,
        );
        assert_eq!(
            out,
            vec![0],
            "only record 0 reaches J ≥ 0.5 against {{1,2,3,99}}"
        );
        assert_eq!(stats.results, 1);
    }

    #[test]
    fn planned_search_matches_plan_and_search() {
        let raw = vec![
            vec![1u32, 2, 3, 4, 5],
            vec![2, 3, 4, 5, 6],
            vec![10, 11, 12, 13, 14],
            vec![1, 2, 3, 4, 6],
        ];
        let c = Collection::new(raw.clone());
        let eng = RingSetSim::build(c, Threshold::jaccard(0.6), 5);
        let mut scratch = SetScratch::default();
        for q in &raw {
            let plan = eng.plan(&mut scratch, q);
            for l in 1..=3usize {
                let mut direct = Vec::new();
                let direct_stats = eng.search_into(&mut scratch, q, &SetParams { l }, &mut direct);
                let mut planned = Vec::new();
                let mut planned_stats =
                    eng.search_planned(&mut scratch, &plan, q, &SetParams { l }, &mut planned);
                planned_stats.merge(&eng.plan_stats(&plan));
                assert_eq!(planned, direct, "l={l}");
                assert_eq!(planned_stats, direct_stats, "l={l}");
            }
        }
    }
}
