//! PartAlloc baseline \[30\] adapted from join to search (§8.1).
//!
//! The partition filter views set mismatch as Hamming distance:
//! `H(x, q) = |x| + |q| − 2|x ∩ q| ≤ h(|x|, |q|)` for any result pair.
//! For each record-size group `s`, the token universe is hashed into
//! `m_s = h_max(s) + 1` parts, where `h_max(s)` is the largest `h(s, s_q)`
//! over all length-compatible query sizes. Every mismatching token makes
//! at most one part's *segments* (the records' token subsets falling in
//! that part) unequal, so a result pair has at most `h(x, q)` unequal
//! parts — the filtering condition is the counting pigeonhole:
//! **at least `m_s − h(x, q)` parts with exactly equal segments** (using
//! the pair-exact `h`, which is at most `h_max`). The index stores one
//! segment hash per (record, part); the query recomputes its own segment
//! hashes *per size group*, probes for exact matches, and counts matches
//! per record.
//!
//! This reproduces PartAlloc's experimental profile from the paper: very
//! selective (random pairs match only a handful of sparse parts, far
//! below the required count) but with heavy per-query filtering work
//! (every size group requires a fresh partitioning of the query), which
//! is why it loses on total time despite the small candidate count
//! (§8.3).

use crate::types::{overlap_at_least, Collection, Threshold};
use pigeonring_core::fxhash::{FxHashMap, FxHasher};
use std::hash::Hasher;

/// One record-size group with its own universe partitioning.
struct Group {
    size: usize,
    parts: usize,
    /// `maps[i]`: segment-hash → record ids for part `i`.
    maps: Vec<FxHashMap<u64, Vec<u32>>>,
}

/// Per-query counters for [`PartAlloc`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartAllocStats {
    /// Unique records passed to verification.
    pub candidates: usize,
    /// Records satisfying the threshold.
    pub results: usize,
    /// Segment hashes computed for the query (filtering work).
    pub segments_hashed: usize,
}

impl PartAllocStats {
    /// Folds `other` into `self`, saturating on overflow (shard
    /// aggregation in the service layer).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.results = self.results.saturating_add(other.results);
        self.segments_hashed = self.segments_hashed.saturating_add(other.segments_hashed);
    }
}

/// Partition-filter search engine.
pub struct PartAlloc {
    collection: Collection,
    threshold: Threshold,
    groups: Vec<Group>,
    max_size: usize,
    epoch: u32,
    seen: Vec<u32>,
    matches: Vec<u32>,
}

#[inline]
fn part_of(token: u32, parts: usize) -> usize {
    let h = (token as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
    (h % parts as u64) as usize
}

fn segment_hashes(r: &[u32], parts: usize) -> Vec<u64> {
    let mut hashers: Vec<FxHasher> = vec![FxHasher::default(); parts];
    for &t in r {
        hashers[part_of(t, parts)].write_u32(t);
    }
    hashers.into_iter().map(|h| h.finish()).collect()
}

impl PartAlloc {
    /// Builds the per-size-group segment indexes.
    pub fn build(collection: Collection, threshold: Threshold) -> Self {
        let max_size = collection
            .records()
            .iter()
            .map(|r| r.len())
            .max()
            .unwrap_or(0);
        let mut by_size: FxHashMap<usize, Vec<u32>> = FxHashMap::default();
        for (id, r) in collection.records().iter().enumerate() {
            by_size.entry(r.len()).or_default().push(id as u32);
        }
        let mut groups = Vec::with_capacity(by_size.len());
        for (size, ids) in by_size {
            if size == 0 {
                continue;
            }
            let parts = Self::max_mismatch(size, max_size, threshold) + 1;
            let mut maps: Vec<FxHashMap<u64, Vec<u32>>> =
                (0..parts).map(|_| FxHashMap::default()).collect();
            for &id in &ids {
                let hashes = segment_hashes(collection.record(id as usize), parts);
                for (i, h) in hashes.into_iter().enumerate() {
                    maps[i].entry(h).or_default().push(id);
                }
            }
            groups.push(Group { size, parts, maps });
        }
        groups.sort_by_key(|g| g.size);
        let n = collection.len();
        PartAlloc {
            collection,
            threshold,
            groups,
            max_size,
            epoch: 0,
            seen: vec![0; n],
            matches: vec![0; n],
        }
    }

    /// The largest possible symmetric-difference size `h(s, s_q)` over all
    /// query sizes compatible with record size `s` (capped at the largest
    /// record size — queries are drawn from the collection).
    fn max_mismatch(s: usize, max_size: usize, threshold: Threshold) -> usize {
        let mut h_max = 0usize;
        for sq in 1..=max_size {
            if !threshold.size_compatible(s, sq) {
                continue;
            }
            let o = threshold.min_overlap_pair(s, sq) as usize;
            let h = (s + sq).saturating_sub(2 * o);
            h_max = h_max.max(h);
        }
        h_max
    }

    /// The collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// Searches for all records with `sim(x, q) ≥ τ`. Returns ascending
    /// ids and statistics.
    pub fn search(&mut self, q: &[u32]) -> (Vec<u32>, PartAllocStats) {
        let mut stats = PartAllocStats::default();
        if self.epoch == u32::MAX {
            self.seen.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;
        let _ = self.max_size;

        let mut cands: Vec<u32> = Vec::new();
        for g in &self.groups {
            if !self.threshold.size_compatible(g.size, q.len()) {
                continue;
            }
            // Counting pigeonhole: a result in this group has at most
            // h(g.size, |q|) unequal parts, so at least `need` equal ones.
            let h_pair = (g.size + q.len())
                .saturating_sub(2 * self.threshold.min_overlap_pair(g.size, q.len()) as usize);
            let need = g.parts.saturating_sub(h_pair).max(1) as u32;
            // Re-partition the query under this group's scheme: the heavy
            // per-query cost characteristic of partition filters.
            let hashes = segment_hashes(q, g.parts);
            stats.segments_hashed += hashes.len();
            for (i, h) in hashes.into_iter().enumerate() {
                if let Some(ids) = g.maps[i].get(&h) {
                    for &id in ids {
                        let idu = id as usize;
                        if self.seen[idu] != epoch {
                            self.seen[idu] = epoch;
                            self.matches[idu] = 0;
                        }
                        self.matches[idu] += 1;
                        if self.matches[idu] == need {
                            cands.push(id);
                        }
                    }
                }
            }
        }

        stats.candidates = cands.len();
        let mut results: Vec<u32> = cands
            .into_iter()
            .filter(|&id| {
                let x = self.collection.record(id as usize);
                let need = self.threshold.min_overlap_pair(x.len(), q.len());
                overlap_at_least(x, q, need).is_some()
            })
            .collect();
        results.sort_unstable();
        stats.results = results.len();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LinearScanSets;

    fn collection() -> Collection {
        Collection::new(vec![
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 11],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 12, 13],
            vec![20, 21, 22, 23, 24, 25, 26, 27, 28, 29],
            vec![1, 2, 3, 20, 21, 22, 23, 24, 25, 26, 27, 28],
            vec![2, 3, 4, 5, 6, 7],
        ])
    }

    #[test]
    fn matches_linear_scan_jaccard() {
        let c = collection();
        for tau in [0.6, 0.7, 0.8, 0.9] {
            let t = Threshold::jaccard(tau);
            let scan = LinearScanSets::new(&c);
            let expected: Vec<Vec<u32>> = (0..c.len())
                .map(|qid| scan.search(c.record(qid), t))
                .collect();
            let mut eng = PartAlloc::build(c.clone(), t);
            for (qid, expect) in expected.iter().enumerate() {
                assert_eq!(&eng.search(c.record(qid)).0, expect, "tau={tau} qid={qid}");
            }
        }
    }

    #[test]
    fn matches_linear_scan_overlap() {
        let c = collection();
        for o in [2u32, 5, 8] {
            let t = Threshold::Overlap(o);
            let scan = LinearScanSets::new(&c);
            let mut eng = PartAlloc::build(c.clone(), t);
            for qid in 0..c.len() {
                let expected = scan.search(c.record(qid), t);
                assert_eq!(eng.search(c.record(qid)).0, expected, "o={o} qid={qid}");
            }
        }
    }

    #[test]
    fn self_query_always_found() {
        // A record is always similar to itself at any τ ≤ 1; segment
        // equality on every part guarantees it is found.
        let c = collection();
        let mut eng = PartAlloc::build(c.clone(), Threshold::jaccard(0.95));
        for qid in 0..c.len() {
            let (res, _) = eng.search(c.record(qid));
            assert!(res.contains(&(qid as u32)), "qid={qid}");
        }
    }

    #[test]
    fn exact_filter_is_selective() {
        // Disjoint records must not even become candidates.
        let c = Collection::new(vec![
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            vec![101, 102, 103, 104, 105, 106, 107, 108],
        ]);
        let mut eng = PartAlloc::build(c.clone(), Threshold::jaccard(0.8));
        let (res, stats) = eng.search(c.record(0));
        assert_eq!(res, vec![0]);
        assert!(stats.candidates <= 2);
    }
}
