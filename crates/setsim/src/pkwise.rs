//! Class prefixes and the k-wise signature index of pkwise \[103\] (§6.2).
//!
//! The token universe is partitioned into `m − 1` disjoint *classes*
//! numbered `1..m−1`. The `p`-prefix of a record is its first `p` tokens
//! in the global order; `p_x` is the smallest prefix length whose
//! *capacity* `Σ_k max(0, cnt(x, p_x, k) − k + 1)` reaches
//! `|x| − o(x) + 1`, where `o(x)` is the minimum overlap any valid partner
//! must reach. The pkwise guarantee (validated by the completeness proof
//! sketched below and by the property tests): if `|x ∩ q| ≥ o(x, q)`,
//! then for some class `k` the two prefixes share at least `k` class-`k`
//! tokens — i.e. a *k-wise signature* (a k-combination of class-`k`
//! prefix tokens).
//!
//! Why: suppose every class shares at most `k − 1` prefix tokens, and
//! w.l.o.g. the last prefix token of `x` precedes the last prefix token
//! of `q` in the global order. Every token of `x`'s prefix that is in `q`
//! must then be in `q`'s prefix, so
//! `|x ∩ q| ≤ (|x| − p_x) + Σ_k min(cnt_k, k − 1) = |x| − capacity ≤ o(x) − 1 < o(x, q)`,
//! a contradiction. (Symmetric in the other direction.)
//!
//! Records whose full-set capacity never reaches the target (possible
//! only for tiny sets) are *degenerate*: they carry no signature guarantee
//! and are kept on an always-candidate list.

use crate::types::Threshold;
use pigeonring_core::fxhash::{FxHashMap, FxHasher};
use std::hash::Hasher;

/// Assignment of token ranks to classes `1..=m−1`.
#[derive(Clone, Debug)]
pub struct ClassMap {
    m: usize,
    explicit: Option<Vec<u8>>,
}

impl ClassMap {
    /// Hash-based assignment (the production default): rank `r` goes to
    /// class `(mix(r) mod (m−1)) + 1`.
    ///
    /// # Panics
    /// Panics if `m < 2` (need at least one class) or `m > 64`.
    pub fn hashed(m: usize) -> Self {
        assert!((2..=64).contains(&m), "m must be in [2, 64]");
        ClassMap { m, explicit: None }
    }

    /// Explicit assignment for tests and worked examples: `classes[r]` is
    /// the class of rank `r`, each in `1..=m−1`.
    ///
    /// # Panics
    /// Panics if any class is out of range.
    pub fn explicit(m: usize, classes: Vec<u8>) -> Self {
        assert!((2..=64).contains(&m), "m must be in [2, 64]");
        assert!(
            classes.iter().all(|&c| (1..m as u8).contains(&c)),
            "classes must be in 1..m"
        );
        ClassMap {
            m,
            explicit: Some(classes),
        }
    }

    /// The box count `m` (classes plus the suffix box `b₀`).
    pub fn m(&self) -> usize {
        self.m
    }

    /// The class of token rank `r`, in `1..=m−1`.
    ///
    /// Ranks beyond an explicit table fall back to the hashed
    /// assignment: `Collection::rank_query` maps query tokens unseen by
    /// the collection to fresh ranks `≥ universe`, which an explicit
    /// (universe-sized) table cannot cover. Any class is equally correct
    /// for such tokens — they can never match a record token, so they
    /// only dilute the query's per-class counts.
    #[inline]
    pub fn class_of(&self, r: u32) -> usize {
        match &self.explicit {
            Some(v) if (r as usize) < v.len() => v[r as usize] as usize,
            _ => {
                // Fibonacci mixing spreads consecutive ranks.
                let h = (r as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
                (h % (self.m as u64 - 1)) as usize + 1
            }
        }
    }
}

/// A record's (or query's) prefix, with its tokens grouped by class.
#[derive(Clone, Debug)]
pub struct Prefix {
    /// Prefix length `p_x`.
    pub len: usize,
    /// `grouped[c − 1]` = the class-`c` tokens of the prefix, ascending.
    pub grouped: Vec<Vec<u32>>,
    /// Whether the capacity target was never reached (no signature
    /// guarantee; the record must always be a candidate).
    pub degenerate: bool,
}

impl Prefix {
    /// `cnt(x, p_x, k)`.
    pub fn count(&self, class: usize) -> usize {
        self.grouped[class - 1].len()
    }
}

/// Computes the prefix of sorted rank array `r` for minimum overlap `o`.
/// Returns `None` when `o > |r|` (the record can never satisfy the
/// threshold and need not be indexed at all).
pub fn compute_prefix(r: &[u32], classes: &ClassMap, o: u32) -> Option<Prefix> {
    if o as usize > r.len() || o == 0 {
        // o == 0 admits everything; treat as degenerate full prefix.
        if o == 0 {
            return Some(group_all(r, classes, true));
        }
        return None;
    }
    let needed = r.len() - o as usize + 1;
    let m = classes.m();
    let mut grouped: Vec<Vec<u32>> = vec![Vec::new(); m - 1];
    let mut capacity = 0usize;
    for (idx, &t) in r.iter().enumerate() {
        let c = classes.class_of(t);
        grouped[c - 1].push(t);
        if grouped[c - 1].len() >= c {
            capacity += 1;
        }
        if capacity >= needed {
            return Some(Prefix {
                len: idx + 1,
                grouped,
                degenerate: false,
            });
        }
    }
    Some(Prefix {
        len: r.len(),
        grouped,
        degenerate: true,
    })
}

fn group_all(r: &[u32], classes: &ClassMap, degenerate: bool) -> Prefix {
    let m = classes.m();
    let mut grouped: Vec<Vec<u32>> = vec![Vec::new(); m - 1];
    for &t in r {
        grouped[classes.class_of(t) - 1].push(t);
    }
    Prefix {
        len: r.len(),
        grouped,
        degenerate,
    }
}

/// Calls `f` once per `k`-combination of `tokens` (ascending index
/// order). `tokens` must be sorted; combinations are emitted in
/// lexicographic order.
pub fn for_each_combination(tokens: &[u32], k: usize, f: &mut impl FnMut(&[u32])) {
    fn go(tokens: &[u32], k: usize, start: usize, cur: &mut Vec<u32>, f: &mut impl FnMut(&[u32])) {
        if cur.len() == k {
            f(cur);
            return;
        }
        let remaining = k - cur.len();
        // Enough tokens left to complete the combination?
        for i in start..=tokens.len().saturating_sub(remaining) {
            cur.push(tokens[i]);
            go(tokens, k, i + 1, cur, f);
            cur.pop();
        }
    }
    if k == 0 || k > tokens.len() {
        return;
    }
    let mut cur = Vec::with_capacity(k);
    go(tokens, k, 0, &mut cur, f);
}

/// Number of `k`-combinations `C(n, k)` (saturating).
pub fn combination_count(n: usize, k: usize) -> u64 {
    if k > n {
        return 0;
    }
    let mut c = 1u64;
    for i in 0..k {
        c = c.saturating_mul((n - i) as u64) / (i as u64 + 1);
    }
    c
}

/// Hashes a k-combination into a signature key.
#[inline]
pub fn signature_hash(combo: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &t in combo {
        h.write_u32(t);
    }
    h.finish()
}

/// The k-wise signature index: per class `k`, a map from signature hash to
/// the posting list of record ids. Hash collisions can only add
/// candidates, never lose results.
pub struct PkwiseIndex {
    classes: ClassMap,
    threshold: Threshold,
    /// `maps[k − 1]`: class-`k` signature postings.
    maps: Vec<FxHashMap<u64, Vec<u32>>>,
    /// Ids with no signature guarantee (tiny/degenerate records); always
    /// candidates, subject to the length filter.
    degenerate: Vec<u32>,
    /// Per-record prefixes (box values are computed from these).
    prefixes: Vec<Option<Prefix>>,
    /// Records whose class enumeration exceeded the internal combo cap fall
    /// back to the degenerate list for that class only if they have no
    /// other signatures; tracked for stats.
    pub capped_records: usize,
}

impl PkwiseIndex {
    /// A record contributing more combinations than this per class is
    /// demoted to the always-candidate list instead of being enumerated.
    const COMBO_CAP: u64 = 100_000;

    /// Builds the index over sorted rank records.
    pub fn build(records: &[Vec<u32>], classes: ClassMap, threshold: Threshold) -> Self {
        let m = classes.m();
        let mut maps: Vec<FxHashMap<u64, Vec<u32>>> =
            (0..m - 1).map(|_| FxHashMap::default()).collect();
        let mut degenerate = Vec::new();
        let mut prefixes = Vec::with_capacity(records.len());
        let mut capped_records = 0usize;
        for (id, r) in records.iter().enumerate() {
            let o = threshold.min_overlap_single(r.len());
            let Some(p) = compute_prefix(r, &classes, o) else {
                prefixes.push(None);
                continue;
            };
            let id = id as u32;
            if p.degenerate {
                degenerate.push(id);
                prefixes.push(Some(p));
                continue;
            }
            let mut too_big = false;
            for k in 1..m {
                if combination_count(p.count(k), k) > Self::COMBO_CAP {
                    too_big = true;
                    break;
                }
            }
            if too_big {
                capped_records += 1;
                degenerate.push(id);
                prefixes.push(Some(p));
                continue;
            }
            for k in 1..m {
                let toks = &p.grouped[k - 1];
                if toks.len() >= k {
                    for_each_combination(toks, k, &mut |combo| {
                        maps[k - 1]
                            .entry(signature_hash(combo))
                            .or_default()
                            .push(id);
                    });
                }
            }
            prefixes.push(Some(p));
        }
        PkwiseIndex {
            classes,
            threshold,
            maps,
            degenerate,
            prefixes,
            capped_records,
        }
    }

    /// The class map.
    pub fn classes(&self) -> &ClassMap {
        &self.classes
    }

    /// The build threshold.
    pub fn threshold(&self) -> Threshold {
        self.threshold
    }

    /// The always-candidate ids.
    pub fn degenerate_ids(&self) -> &[u32] {
        &self.degenerate
    }

    /// Record `id`'s prefix (`None` when the record can never match).
    pub fn prefix(&self, id: u32) -> Option<&Prefix> {
        self.prefixes[id as usize].as_ref()
    }

    /// Probes class `k` with a signature hash.
    pub fn lookup(&self, k: usize, sig: u64) -> Option<&[u32]> {
        self.maps[k - 1].get(&sig).map(|v| v.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinations_enumerate_lexicographically() {
        let mut seen = Vec::new();
        for_each_combination(&[1, 2, 3, 4], 2, &mut |c| seen.push(c.to_vec()));
        assert_eq!(
            seen,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 3],
                vec![2, 4],
                vec![3, 4]
            ]
        );
    }

    #[test]
    fn combination_count_matches_enumeration() {
        for n in 0..=8usize {
            let toks: Vec<u32> = (0..n as u32).collect();
            for k in 0..=n {
                let mut cnt = 0u64;
                for_each_combination(&toks, k, &mut |_| cnt += 1);
                let expect = if k == 0 { 0 } else { combination_count(n, k) };
                assert_eq!(cnt, expect, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn prefix_capacity_reaches_target() {
        // 8 tokens, m = 3 (two classes), overlap o = 6 ⇒ needed = 3.
        let classes = ClassMap::hashed(3);
        let r: Vec<u32> = (0..8).collect();
        let p = compute_prefix(&r, &classes, 6).unwrap();
        assert!(!p.degenerate);
        // Recompute capacity over the prefix and check it equals 3.
        let mut cnt = [0usize; 3];
        let mut cap = 0usize;
        for &t in &r[..p.len] {
            let c = classes.class_of(t);
            cnt[c] += 1;
            if cnt[c] >= c {
                cap += 1;
            }
        }
        assert_eq!(cap, 3);
        // Minimality: one token fewer must be below target.
        assert!(p.len >= 3);
    }

    #[test]
    fn tiny_records_are_degenerate_or_skipped() {
        let classes = ClassMap::hashed(5);
        // o greater than the record: unindexable.
        assert!(compute_prefix(&[1, 2], &classes, 3).is_none());
        // Tiny record where capacity cannot reach needed: degenerate.
        // |r| = 2, o = 1 ⇒ needed = 2; if both tokens land in classes ≥ 2
        // the capacity stalls below 2.
        let classes = ClassMap::explicit(5, vec![4, 4]);
        let p = compute_prefix(&[0, 1], &classes, 1).unwrap();
        assert!(p.degenerate);
    }

    #[test]
    fn paper_figure3_prefixes() {
        // Example 10: tokens A..P = ranks 0..15, classes A−B:1, C−D:2,
        // E−F:3, G−P:4; τ = 9 (overlap), m = 5. Both prefixes are 9 long.
        let mut cls = vec![0u8; 16];
        for (r, c) in cls.iter_mut().enumerate() {
            *c = match r {
                0 | 1 => 1,
                2 | 3 => 2,
                4 | 5 => 3,
                _ => 4,
            };
        }
        let classes = ClassMap::explicit(5, cls);
        let x: Vec<u32> = "ACDEGHIJKLMN".bytes().map(|b| (b - b'A') as u32).collect();
        let q: Vec<u32> = "BCDFGHILMNOP".bytes().map(|b| (b - b'A') as u32).collect();
        let px = compute_prefix(&x, &classes, 9).unwrap();
        let pq = compute_prefix(&q, &classes, 9).unwrap();
        assert_eq!(px.len, 9, "x prefix");
        assert_eq!(pq.len, 9, "q prefix");
        // Class counts in q's prefix: 1, 2, 1, 5 (B | C D | F | G H I L M).
        assert_eq!(
            (pq.count(1), pq.count(2), pq.count(3), pq.count(4)),
            (1, 2, 1, 5)
        );
    }

    #[test]
    fn index_posts_signatures() {
        let classes = ClassMap::hashed(3);
        let records = vec![
            (0..10u32).collect::<Vec<_>>(),
            (5..15u32).collect::<Vec<_>>(),
        ];
        let idx = PkwiseIndex::build(&records, classes, Threshold::Overlap(8));
        // Both records must carry prefixes.
        assert!(idx.prefix(0).is_some());
        assert!(idx.prefix(1).is_some());
        // A signature of record 0's class-1 prefix token must hit.
        let p0 = idx.prefix(0).unwrap();
        let c1 = &p0.grouped[0];
        if !c1.is_empty() {
            let sig = signature_hash(&c1[..1]);
            assert!(idx.lookup(1, sig).is_some_and(|ids| ids.contains(&0)));
        }
    }
}
