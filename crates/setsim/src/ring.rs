//! The pigeonring set-similarity engine (§6.2) and the pkwise baseline.
//!
//! Filtering instance: boxes `b₀ = ` suffix overlap, `b_i = |x_i ∩ q_i|`
//! (class-`i` tokens in the two prefixes), `D(τ) = τ`; `‖B‖₁` equals the
//! overlap exactly, so the instance is complete and tight — except that,
//! per the paper's implementation remark, a chain that would need `b₀` is
//! short-circuited to direct verification (trading tightness for speed).
//!
//! Thresholds (variable allocation + integer reduction, `≥` direction,
//! `‖T‖₁ = o(q) + m − 1`):
//!
//! * `t₀ = |q| − p_q + 1` — above the largest *pure suffix* overlap, but
//!   NOT above `b₀` in general: `b₀` also absorbs cross overlap (tokens in
//!   one side's prefix and the other's suffix), so a witness chain *can*
//!   start at the suffix box. Signature probes reach only class starts, so
//!   after a failed class-start chain the engine re-checks the start-0
//!   chain with an upper bound for `b₀` (conservative in the `≥`
//!   direction) before ruling a record out;
//! * `t_k = k` when `cnt(q, p_q, k) ≥ k`, else `cnt(q, p_q, k) + 1` —
//!   unreachable in the second case, so a viable class box is exactly a
//!   shared k-wise signature and every viable class start is enumerated.

use crate::pkwise::{
    combination_count, compute_prefix, for_each_combination, signature_hash, ClassMap, PkwiseIndex,
    Prefix,
};
use crate::types::{overlap, overlap_at_least, Collection, Threshold};
use pigeonring_core::viability::{check_prefix_viable_lazy, Direction, ThresholdScheme};

/// Per-query counters for the set-similarity engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetStats {
    /// Unique records passed to verification.
    pub candidates: usize,
    /// Records satisfying the threshold.
    pub results: usize,
    /// k-wise signatures enumerated from the query (`C_C1` proxy).
    pub sig_probes: usize,
    /// Signature hits (viable boxes, `|V|`).
    pub viable_boxes: usize,
    /// Box evaluations in the second step (`C_C2` proxy; cache hits in
    /// the [`SetScratch`] box-value cache do not count).
    pub boxes_checked: usize,
    /// Chain checks skipped via Corollary 2.
    pub skipped_by_corollary2: usize,
}

impl SetStats {
    /// Folds `other` into `self`, saturating on overflow (shard
    /// aggregation in the service layer).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.results = self.results.saturating_add(other.results);
        self.sig_probes = self.sig_probes.saturating_add(other.sig_probes);
        self.viable_boxes = self.viable_boxes.saturating_add(other.viable_boxes);
        self.boxes_checked = self.boxes_checked.saturating_add(other.boxes_checked);
        self.skipped_by_corollary2 = self
            .skipped_by_corollary2
            .saturating_add(other.skipped_by_corollary2);
    }
}

/// The query-side plan for one set-similarity query: everything that
/// depends on the query (and the shared token dictionary) but not on any
/// particular shard's postings — the ranked query, its class prefix, the
/// Theorem-7 threshold scheme, and the **enumerated k-wise signatures**.
/// Computed once by [`RingSetSim::plan_query`]; reusable across shards
/// sharing the query's dictionary and across chain lengths `l` (nothing
/// here depends on `l`), so the combinatorial signature enumeration runs
/// once per query instead of once per shard per `l`.
#[derive(Clone, Debug)]
pub struct SetPlan {
    /// The query in the dictionary's rank space (sorted, deduplicated).
    ranked: Vec<u32>,
    /// The query's class prefix; `None` when no record can reach the
    /// required overlap (`o(q) > |q|`) and the search is empty.
    prefix: Option<Prefix>,
    /// Theorem-7 (≥) thresholds; `None` when `prefix` is `None` or
    /// degenerate (no signature guarantee from the query side).
    scheme: Option<ThresholdScheme<i64>>,
    /// Enumerated query signatures: `(class k, signature hash)` pairs in
    /// class-then-lexicographic order.
    sigs: Vec<(u8, u64)>,
    /// Signatures enumerated (the `C_C1` proxy) — a plan-time statistic,
    /// accounted once per query by the service layer.
    sig_probes: usize,
}

impl SetPlan {
    /// The query translated into the dictionary's rank space.
    pub fn ranked(&self) -> &[u32] {
        &self.ranked
    }

    /// Signatures enumerated while planning.
    pub fn sig_probes(&self) -> usize {
        self.sig_probes
    }
}

/// Per-thread mutable query state for [`RingSetSim`]: the epoch-stamped
/// candidate dedup array, the Corollary-2 ruled-start bitmasks, and the
/// per-record *box-value cache*.
///
/// The cache memoizes class overlaps `b_c = |x_c ∩ q_c|` per `(record,
/// class)` within one query: a record reached by several signature
/// probes — and in particular the start-0 suffix-box fallback chain that
/// re-checks a record after a failed signature-start chain — reuses the
/// overlaps already computed instead of re-merging the class lists.
/// `Default` yields an empty scratch that lazily sizes itself on first
/// use.
#[derive(Clone, Debug, Default)]
pub struct SetScratch {
    /// The shared epoch-stamped dedup/ruled-start core.
    inner: pigeonring_core::scratch::EpochScratch,
    /// Epoch stamp of each record's cached box values.
    box_epoch: Vec<u32>,
    /// Bit `c` set ⇔ class `c`'s overlap is cached for this record.
    box_mask: Vec<u64>,
    /// Flattened `n × (m − 1)` cache of class overlaps.
    box_vals: Vec<u32>,
    /// Box count the cache was sized for.
    m: usize,
    /// Reused dedup buffer for raw-query ranking in the planning path.
    pub(crate) rank_buf: Vec<u32>,
}

impl SetScratch {
    fn next_epoch(&mut self, n: usize, m: usize) -> u32 {
        let epoch = self.inner.next_epoch(n);
        // `next_epoch` returns 1 exactly when the core stamps were
        // (re)initialized (first use, resize, wrap-around); mirror that
        // reset — and any `m` change — in the box cache.
        if epoch == 1 || self.m != m {
            self.box_epoch = vec![0; n];
            self.box_mask = vec![0; n];
            self.box_vals = vec![0; n * m.saturating_sub(1)];
            self.m = m;
        }
        epoch
    }
}

/// The pigeonring set-similarity search engine. `l = 1` is exactly pkwise.
///
/// The index is immutable at query time: [`RingSetSim::search_with`]
/// takes `&self` plus an external [`SetScratch`], so shards can serve
/// concurrent worker threads. The `&mut self` methods wrap an
/// engine-owned scratch.
pub struct RingSetSim {
    collection: Collection,
    threshold: Threshold,
    index: PkwiseIndex,
    scratch: SetScratch,
}

impl RingSetSim {
    /// Builds the engine with hash-assigned classes (`m` boxes total,
    /// `m − 1` classes; the paper uses `m = 5`).
    pub fn build(collection: Collection, threshold: Threshold, m: usize) -> Self {
        Self::with_class_map(collection, threshold, ClassMap::hashed(m))
    }

    /// Builds the engine with an explicit class map (tests, worked
    /// examples).
    pub fn with_class_map(collection: Collection, threshold: Threshold, classes: ClassMap) -> Self {
        let index = PkwiseIndex::build(collection.records(), classes, threshold);
        RingSetSim {
            collection,
            threshold,
            index,
            scratch: SetScratch::default(),
        }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// The number of boxes `m`.
    pub fn m(&self) -> usize {
        self.index.classes().m()
    }

    /// Searches for all records with `sim(x, q) ≥ τ` using chain length
    /// `l`. `q` is a sorted rank array (normally a record of this
    /// collection). Returns ascending ids and statistics.
    pub fn search(&mut self, q: &[u32], l: usize) -> (Vec<u32>, SetStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.search_with(&mut scratch, q, l);
        self.scratch = scratch;
        out
    }

    /// [`RingSetSim::search`] against a caller-owned scratch; takes
    /// `&self`, so any number of threads can search one engine
    /// concurrently, each with its own [`SetScratch`].
    pub fn search_with(
        &self,
        scratch: &mut SetScratch,
        q: &[u32],
        l: usize,
    ) -> (Vec<u32>, SetStats) {
        let plan = self.plan_query(q);
        let (ids, mut stats) = self.search_with_plan(scratch, &plan, l);
        stats.sig_probes = stats.sig_probes.saturating_add(plan.sig_probes);
        (ids, stats)
    }

    /// [`RingSetSim::search_with`] against a precomputed [`SetPlan`]
    /// (the plan-once path: one plan serves every shard and every `l`).
    /// Plan-time statistics ([`SetPlan::sig_probes`]) are *not* included
    /// — the plan's owner accounts them once per query.
    pub fn search_with_plan(
        &self,
        scratch: &mut SetScratch,
        plan: &SetPlan,
        l: usize,
    ) -> (Vec<u32>, SetStats) {
        let (cands, mut stats) = self.candidates_with_plan(scratch, plan, l);
        let threshold = self.threshold;
        let q = plan.ranked();
        let mut results: Vec<u32> = cands
            .into_iter()
            .filter(|&id| {
                let x = self.collection.record(id as usize);
                let need = threshold.min_overlap_pair(x.len(), q.len());
                overlap_at_least(x, q, need).is_some()
            })
            .collect();
        results.sort_unstable();
        stats.results = results.len();
        (results, stats)
    }

    /// Computes the query-side plan from a query already in this
    /// engine's rank space: required overlap, class prefix, Theorem-7
    /// thresholds, and the full k-wise signature enumeration — the work
    /// that is identical for every shard sharing this engine's token
    /// dictionary. Touches no per-record state.
    pub fn plan_query(&self, q: &[u32]) -> SetPlan {
        self.plan_ranked(q.to_vec())
    }

    /// [`RingSetSim::plan_query`] taking ownership of the rank array
    /// (avoids a second copy on the raw-query path).
    fn plan_ranked(&self, ranked: Vec<u32>) -> SetPlan {
        let q: &[u32] = &ranked;
        let m = self.m();
        let threshold = self.threshold;
        let oq = threshold.min_overlap_single(q.len());
        if oq as usize > q.len() {
            // No record can reach the overlap: an empty plan.
            return SetPlan {
                ranked,
                prefix: None,
                scheme: None,
                sigs: Vec::new(),
                sig_probes: 0,
            };
        }
        let qp = compute_prefix(q, self.index.classes(), oq).expect("o(q) ≤ |q| was just checked");
        if qp.degenerate {
            return SetPlan {
                ranked,
                prefix: Some(qp),
                scheme: None,
                sigs: Vec::new(),
                sig_probes: 0,
            };
        }
        // Theorem 7 (≥) thresholds: t₀ for the suffix box, t_k per
        // class; ‖T‖₁ = o(q) + m − 1.
        let mut t = vec![0i64; m];
        t[0] = q.len() as i64 - qp.len as i64 + 1;
        for (k, tk) in t.iter_mut().enumerate().skip(1) {
            let cnt = qp.count(k) as i64;
            *tk = if cnt >= k as i64 { k as i64 } else { cnt + 1 };
        }
        debug_assert_eq!(t.iter().sum::<i64>(), oq as i64 + m as i64 - 1);
        let scheme = ThresholdScheme::integer_reduced(t);
        let mut sigs: Vec<(u8, u64)> = Vec::new();
        let mut sig_probes = 0usize;
        for k in 1..m {
            let toks = &qp.grouped[k - 1];
            if toks.len() < k {
                continue;
            }
            sig_probes += combination_count(toks.len(), k) as usize;
            for_each_combination(toks, k, &mut |combo| {
                sigs.push((k as u8, signature_hash(combo)));
            });
        }
        SetPlan {
            ranked,
            prefix: Some(qp),
            scheme: Some(scheme),
            sigs,
            sig_probes,
        }
    }

    /// [`RingSetSim::plan_query`] from a *raw*-token query: ranks it
    /// through the collection's dictionary first (reusing `scratch`'s
    /// dedup buffer), then plans. This is the service-layer entry point.
    pub fn plan_raw_query(&self, scratch: &mut SetScratch, raw: &[u32]) -> SetPlan {
        let ranked = self
            .collection
            .dictionary()
            .rank_query_with(&mut scratch.rank_buf, raw);
        self.plan_ranked(ranked)
    }

    /// Candidate generation only (no verification), for timing the
    /// filter separately (Figure 6's "Cand." series).
    pub fn candidates(&mut self, q: &[u32], l: usize) -> (Vec<u32>, SetStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.candidates_with(&mut scratch, q, l);
        self.scratch = scratch;
        out
    }

    /// [`RingSetSim::candidates`] against a caller-owned scratch
    /// (`&self`; see [`RingSetSim::search_with`]). Plan-time statistics
    /// (`sig_probes`) are included, as before the plan/execute split.
    ///
    /// This plan-and-discard path materializes the signature enumeration
    /// into one per-query `Vec` (the pre-split code streamed each
    /// combination straight into a lookup). The CPU cost is unchanged —
    /// the same combinations were always enumerated and hashed — and
    /// the transient memory is bounded by the lookup count the query
    /// performs anyway; accepting that buys the sharded/service callers
    /// enumeration reuse across shards and `l` values.
    pub fn candidates_with(
        &self,
        scratch: &mut SetScratch,
        q: &[u32],
        l: usize,
    ) -> (Vec<u32>, SetStats) {
        let plan = self.plan_query(q);
        let (ids, mut stats) = self.candidates_with_plan(scratch, &plan, l);
        stats.sig_probes = stats.sig_probes.saturating_add(plan.sig_probes);
        (ids, stats)
    }

    /// [`RingSetSim::candidates_with`] against a precomputed [`SetPlan`]:
    /// the execute-per-shard half of the split. Probes this engine's
    /// signature index with the plan's pre-enumerated signatures — no
    /// combinatorial enumeration happens here, so running one plan
    /// against `K` shards (or several `l` values) enumerates once total.
    pub fn candidates_with_plan(
        &self,
        scratch: &mut SetScratch,
        plan: &SetPlan,
        l: usize,
    ) -> (Vec<u32>, SetStats) {
        let m = self.m();
        let l = l.clamp(1, m);
        let mut stats = SetStats::default();
        let epoch = scratch.next_epoch(self.collection.len(), m);
        let threshold = self.threshold;
        let q = plan.ranked();

        let Some(qp) = &plan.prefix else {
            return (Vec::new(), stats); // no record can reach the overlap
        };
        let mut cands: Vec<u32> = Vec::new();
        if qp.degenerate {
            // No signature guarantee from the query side: every
            // size-compatible record is a candidate (rare tiny-set path).
            for (id, x) in self.collection.records().iter().enumerate() {
                if threshold.size_compatible(x.len(), q.len()) {
                    cands.push(id as u32);
                }
            }
        } else {
            let scheme = plan
                .scheme
                .as_ref()
                .expect("non-degenerate plan carries a threshold scheme");

            let collection = &self.collection;
            let index = &self.index;
            let SetScratch {
                ref mut inner,
                ref mut box_epoch,
                ref mut box_mask,
                ref mut box_vals,
                ..
            } = *scratch;
            let pigeonring_core::scratch::EpochScratch {
                ref mut accepted,
                ref mut ruled_epoch,
                ref mut ruled_mask,
                ..
            } = *inner;

            for &(k8, sig) in &plan.sigs {
                let k = k8 as usize;
                {
                    let Some(ids) = index.lookup(k, sig) else {
                        continue;
                    };
                    for &id in ids {
                        stats.viable_boxes += 1;
                        let idu = id as usize;
                        if accepted[idu] == epoch {
                            continue;
                        }
                        let x = &collection.records()[idu];
                        if !threshold.size_compatible(x.len(), q.len()) {
                            continue;
                        }
                        if ruled_epoch[idu] == epoch && (ruled_mask[idu] >> k) & 1 == 1 {
                            stats.skipped_by_corollary2 += 1;
                            continue;
                        }
                        if l == 1 {
                            accepted[idu] = epoch;
                            cands.push(id);
                            continue;
                        }
                        // Chain from class k; truncate before the suffix
                        // box (a chain reaching b₀ verifies directly).
                        let span = l.min(m - k);
                        let xp = index.prefix(id).expect("indexed record has a prefix");
                        let check = check_prefix_viable_lazy(scheme, Direction::Ge, k, span, |j| {
                            let c = j % m;
                            debug_assert!(c >= 1);
                            cached_class_overlap(
                                xp,
                                qp,
                                c,
                                idu,
                                epoch,
                                m,
                                box_epoch,
                                box_mask,
                                box_vals,
                                &mut stats.boxes_checked,
                            ) as i64
                        });
                        match check {
                            Ok(()) => {
                                accepted[idu] = epoch;
                                cands.push(id);
                            }
                            Err(l_fail) => {
                                if ruled_epoch[idu] != epoch {
                                    ruled_epoch[idu] = epoch;
                                    ruled_mask[idu] = 0;
                                }
                                for off in 0..l_fail {
                                    ruled_mask[idu] |= 1u64 << (k + off);
                                }
                                // Theorem 7's witness chain may start at the
                                // suffix box b₀, which signature probes never
                                // reach: b₀ absorbs the *cross* overlap
                                // (prefix-of-one ∩ suffix-of-the-other), so it
                                // can exceed t₀ even though the pure suffix
                                // overlap cannot. Check the start-0 chain with
                                // a conservative upper bound for b₀ (sound in
                                // the ≥ direction); memoize failure in bit 0.
                                if ruled_mask[idu] & 1 == 0 {
                                    let b0_ub =
                                        (x.len() - xp.len) as i64 + (q.len() - qp.len) as i64;
                                    let c0 = check_prefix_viable_lazy(
                                        scheme,
                                        Direction::Ge,
                                        0,
                                        l,
                                        |j| {
                                            if j == 0 {
                                                b0_ub
                                            } else {
                                                cached_class_overlap(
                                                    xp,
                                                    qp,
                                                    j,
                                                    idu,
                                                    epoch,
                                                    m,
                                                    box_epoch,
                                                    box_mask,
                                                    box_vals,
                                                    &mut stats.boxes_checked,
                                                )
                                                    as i64
                                            }
                                        },
                                    );
                                    match c0 {
                                        Ok(()) => {
                                            accepted[idu] = epoch;
                                            cands.push(id);
                                        }
                                        Err(_) => ruled_mask[idu] |= 1,
                                    }
                                }
                            }
                        }
                    }
                }
            }
            // Degenerate records carry no signature guarantee: always
            // candidates (subject to the length filter).
            for &id in index.degenerate_ids() {
                let idu = id as usize;
                if accepted[idu] != epoch
                    && threshold.size_compatible(collection.records()[idu].len(), q.len())
                {
                    accepted[idu] = epoch;
                    cands.push(id);
                }
            }
        }

        stats.candidates = cands.len();
        (cands, stats)
    }
}

/// `b_c = |x_c ∩ q_c|`: overlap of the class-`c` prefix tokens — the §6.2
/// remark's "merging two very short lists".
#[inline]
fn class_overlap(xp: &Prefix, qp: &Prefix, c: usize) -> u32 {
    overlap(&xp.grouped[c - 1], &qp.grouped[c - 1])
}

/// [`class_overlap`] through the per-query `(record, class)` cache in
/// [`SetScratch`]: only a cache miss merges the class lists (and counts
/// toward `boxes_checked`); hits — repeated probes of the same record
/// and the start-0 suffix-box fallback re-check — are free.
#[expect(
    clippy::too_many_arguments,
    reason = "hot path; split borrows of scratch"
)]
#[inline]
fn cached_class_overlap(
    xp: &Prefix,
    qp: &Prefix,
    c: usize,
    idu: usize,
    epoch: u32,
    m: usize,
    box_epoch: &mut [u32],
    box_mask: &mut [u64],
    box_vals: &mut [u32],
    boxes_checked: &mut usize,
) -> u32 {
    let bit = 1u64 << c;
    if box_epoch[idu] == epoch {
        if box_mask[idu] & bit != 0 {
            return box_vals[idu * (m - 1) + (c - 1)];
        }
    } else {
        box_epoch[idu] = epoch;
        box_mask[idu] = 0;
    }
    *boxes_checked += 1;
    let v = class_overlap(xp, qp, c);
    box_mask[idu] |= bit;
    box_vals[idu * (m - 1) + (c - 1)] = v;
    v
}

/// The pkwise baseline \[103\]: the ring engine fixed at `l = 1`.
pub struct Pkwise(RingSetSim);

impl Pkwise {
    /// Builds pkwise over a collection.
    pub fn build(collection: Collection, threshold: Threshold, m: usize) -> Self {
        Pkwise(RingSetSim::build(collection, threshold, m))
    }

    /// Searches with the plain k-wise signature filter.
    pub fn search(&mut self, q: &[u32]) -> (Vec<u32>, SetStats) {
        self.0.search(q, 1)
    }

    /// The shared engine.
    pub fn inner(&mut self) -> &mut RingSetSim {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LinearScanSets;

    fn zipfish_collection(n: usize, avg: usize, seed: u64) -> Collection {
        // Deterministic pseudo-random records with skewed token use and
        // planted near-duplicate pairs.
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut raw: Vec<Vec<u32>> = Vec::with_capacity(n);
        for i in 0..n {
            let len = avg / 2 + (next() as usize % avg.max(1));
            let mut r = Vec::with_capacity(len);
            for _ in 0..len {
                // Skew: low token ids are common.
                let u = next() % 1000;
                let t = if u < 600 { next() % 20 } else { next() % 500 };
                r.push(t as u32);
            }
            if i % 3 == 0 && i > 0 {
                // Plant a near-duplicate of an earlier record.
                r = raw[i - 1].clone();
                if !r.is_empty() && next() % 2 == 0 {
                    let idx = (next() as usize) % r.len();
                    r[idx] = (next() % 500) as u32;
                }
            }
            raw.push(r);
        }
        Collection::new(raw)
    }

    #[test]
    fn ring_matches_linear_scan_jaccard() {
        let c = zipfish_collection(120, 12, 7);
        let scan_results: Vec<Vec<u32>> = {
            let scan = LinearScanSets::new(&c);
            (0..c.len())
                .map(|qid| scan.search(c.record(qid), Threshold::jaccard(0.7)))
                .collect()
        };
        let mut ring = RingSetSim::build(c.clone(), Threshold::jaccard(0.7), 5);
        for l in 1..=3usize {
            for (qid, expect) in scan_results.iter().enumerate() {
                let (got, _) = ring.search(c.record(qid), l);
                assert_eq!(&got, expect, "qid={qid} l={l}");
            }
        }
    }

    #[test]
    fn ring_matches_linear_scan_overlap() {
        let c = zipfish_collection(100, 10, 21);
        let t = Threshold::Overlap(6);
        let scan = LinearScanSets::new(&c);
        let expected: Vec<Vec<u32>> = (0..c.len())
            .map(|qid| scan.search(c.record(qid), t))
            .collect();
        let mut ring = RingSetSim::build(c.clone(), t, 5);
        for l in [1usize, 2, 3, 5] {
            for qid in (0..c.len()).step_by(7) {
                let (got, _) = ring.search(c.record(qid), l);
                assert_eq!(got, expected[qid], "qid={qid} l={l}");
            }
        }
    }

    #[test]
    fn candidates_shrink_with_l() {
        let c = zipfish_collection(200, 14, 3);
        let mut ring = RingSetSim::build(c.clone(), Threshold::jaccard(0.7), 5);
        for qid in (0..c.len()).step_by(11) {
            let mut prev = usize::MAX;
            for l in 1..=3usize {
                let (_, stats) = ring.search(c.record(qid), l);
                assert!(stats.candidates <= prev, "qid={qid} l={l}");
                prev = stats.candidates;
            }
        }
    }

    #[test]
    fn pkwise_equals_ring_l1() {
        let c = zipfish_collection(150, 12, 99);
        let mut pk = Pkwise::build(c.clone(), Threshold::jaccard(0.8), 5);
        let mut ring = RingSetSim::build(c.clone(), Threshold::jaccard(0.8), 5);
        for qid in (0..c.len()).step_by(13) {
            let (r1, s1) = pk.search(c.record(qid));
            let (r2, s2) = ring.search(c.record(qid), 1);
            assert_eq!(r1, r2);
            assert_eq!(s1.candidates, s2.candidates);
        }
    }

    #[test]
    fn witness_chain_starting_at_suffix_box_is_not_pruned() {
        // Regression: with Threshold::Overlap(6) and l = 5, the only
        // Theorem-7 (≥) prefix-viable chain for this pair starts at the
        // suffix box b₀ — token 59 sits in q's prefix but x's suffix, so
        // b₀ carries cross overlap that t₀ = |q| − p_q + 1 does not
        // dominate. The engine must fall back to the start-0 chain (with
        // an upper-bounded b₀) instead of pruning the true result.
        let raw = vec![
            vec![2, 5, 14, 38, 41, 42, 43, 48, 50, 52, 54, 59],
            vec![8, 11, 14, 19, 27, 31, 32, 38, 43, 52, 54, 59],
        ];
        let c = Collection::new(raw);
        let t = Threshold::Overlap(6);
        // The class assignment (by rank) that produced the failure in the
        // original 39-record collection, pinned explicitly so the test
        // stays meaningful if the hash mixing ever changes.
        let classes = ClassMap::explicit(
            5,
            vec![3, 4, 4, 1, 1, 1, 3, 4, 2, 3, 4, 3, 1, 1, 1, 2, 1, 1],
        );
        let scan = LinearScanSets::new(&c);
        let mut ring = RingSetSim::with_class_map(c.clone(), t, classes);
        for qid in 0..c.len() {
            let expect = scan.search(c.record(qid), t);
            for l in 1..=5usize {
                assert_eq!(ring.search(c.record(qid), l).0, expect, "qid={qid} l={l}");
            }
        }
    }

    #[test]
    fn empty_query_returns_nothing() {
        let c = zipfish_collection(50, 8, 5);
        let mut ring = RingSetSim::build(c, Threshold::jaccard(0.7), 5);
        let (res, _) = ring.search(&[], 2);
        assert!(res.is_empty());
    }

    #[test]
    fn m_equals_2_degenerates_to_prefix_filter() {
        // §6.2: with m = 2 and l = 1 the method is exactly prefix
        // filtering. Just check completeness holds there.
        let c = zipfish_collection(80, 10, 17);
        let t = Threshold::jaccard(0.7);
        let scan = LinearScanSets::new(&c);
        let expected: Vec<Vec<u32>> = (0..c.len())
            .map(|qid| scan.search(c.record(qid), t))
            .collect();
        let mut ring = RingSetSim::build(c.clone(), t, 2);
        for (qid, expect) in expected.iter().enumerate() {
            assert_eq!(&ring.search(c.record(qid), 1).0, expect, "qid={qid}");
        }
    }
}
