//! The pigeonring set-similarity engine (§6.2) and the pkwise baseline.
//!
//! Filtering instance: boxes `b₀ = ` suffix overlap, `b_i = |x_i ∩ q_i|`
//! (class-`i` tokens in the two prefixes), `D(τ) = τ`; `‖B‖₁` equals the
//! overlap exactly, so the instance is complete and tight — except that,
//! per the paper's implementation remark, a chain that would need `b₀` is
//! short-circuited to direct verification (trading tightness for speed).
//!
//! Thresholds (variable allocation + integer reduction, `≥` direction,
//! `‖T‖₁ = o(q) + m − 1`):
//!
//! * `t₀ = |q| − p_q + 1` — above the largest *pure suffix* overlap, but
//!   NOT above `b₀` in general: `b₀` also absorbs cross overlap (tokens in
//!   one side's prefix and the other's suffix), so a witness chain *can*
//!   start at the suffix box. Signature probes reach only class starts, so
//!   after a failed class-start chain the engine re-checks the start-0
//!   chain with an upper bound for `b₀` (conservative in the `≥`
//!   direction) before ruling a record out;
//! * `t_k = k` when `cnt(q, p_q, k) ≥ k`, else `cnt(q, p_q, k) + 1` —
//!   unreachable in the second case, so a viable class box is exactly a
//!   shared k-wise signature and every viable class start is enumerated.

use crate::pkwise::{
    combination_count, compute_prefix, for_each_combination, signature_hash, ClassMap, PkwiseIndex,
    Prefix,
};
use crate::types::{overlap, overlap_at_least, Collection, Threshold};
use pigeonring_core::viability::{check_prefix_viable_lazy, Direction, ThresholdScheme};

/// Per-query counters for the set-similarity engines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SetStats {
    /// Unique records passed to verification.
    pub candidates: usize,
    /// Records satisfying the threshold.
    pub results: usize,
    /// k-wise signatures enumerated from the query (`C_C1` proxy).
    pub sig_probes: usize,
    /// Signature hits (viable boxes, `|V|`).
    pub viable_boxes: usize,
    /// Box evaluations in the second step (`C_C2` proxy; cache hits in
    /// the [`SetScratch`] box-value cache do not count).
    pub boxes_checked: usize,
    /// Chain checks skipped via Corollary 2.
    pub skipped_by_corollary2: usize,
}

impl SetStats {
    /// Folds `other` into `self`, saturating on overflow (shard
    /// aggregation in the service layer).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.results = self.results.saturating_add(other.results);
        self.sig_probes = self.sig_probes.saturating_add(other.sig_probes);
        self.viable_boxes = self.viable_boxes.saturating_add(other.viable_boxes);
        self.boxes_checked = self.boxes_checked.saturating_add(other.boxes_checked);
        self.skipped_by_corollary2 = self
            .skipped_by_corollary2
            .saturating_add(other.skipped_by_corollary2);
    }
}

/// Per-thread mutable query state for [`RingSetSim`]: the epoch-stamped
/// candidate dedup array, the Corollary-2 ruled-start bitmasks, and the
/// per-record *box-value cache*.
///
/// The cache memoizes class overlaps `b_c = |x_c ∩ q_c|` per `(record,
/// class)` within one query: a record reached by several signature
/// probes — and in particular the start-0 suffix-box fallback chain that
/// re-checks a record after a failed signature-start chain — reuses the
/// overlaps already computed instead of re-merging the class lists.
/// `Default` yields an empty scratch that lazily sizes itself on first
/// use.
#[derive(Clone, Debug, Default)]
pub struct SetScratch {
    /// The shared epoch-stamped dedup/ruled-start core.
    inner: pigeonring_core::scratch::EpochScratch,
    /// Epoch stamp of each record's cached box values.
    box_epoch: Vec<u32>,
    /// Bit `c` set ⇔ class `c`'s overlap is cached for this record.
    box_mask: Vec<u64>,
    /// Flattened `n × (m − 1)` cache of class overlaps.
    box_vals: Vec<u32>,
    /// Box count the cache was sized for.
    m: usize,
}

impl SetScratch {
    fn next_epoch(&mut self, n: usize, m: usize) -> u32 {
        let epoch = self.inner.next_epoch(n);
        // `next_epoch` returns 1 exactly when the core stamps were
        // (re)initialized (first use, resize, wrap-around); mirror that
        // reset — and any `m` change — in the box cache.
        if epoch == 1 || self.m != m {
            self.box_epoch = vec![0; n];
            self.box_mask = vec![0; n];
            self.box_vals = vec![0; n * m.saturating_sub(1)];
            self.m = m;
        }
        epoch
    }
}

/// The pigeonring set-similarity search engine. `l = 1` is exactly pkwise.
///
/// The index is immutable at query time: [`RingSetSim::search_with`]
/// takes `&self` plus an external [`SetScratch`], so shards can serve
/// concurrent worker threads. The `&mut self` methods wrap an
/// engine-owned scratch.
pub struct RingSetSim {
    collection: Collection,
    threshold: Threshold,
    index: PkwiseIndex,
    scratch: SetScratch,
}

impl RingSetSim {
    /// Builds the engine with hash-assigned classes (`m` boxes total,
    /// `m − 1` classes; the paper uses `m = 5`).
    pub fn build(collection: Collection, threshold: Threshold, m: usize) -> Self {
        Self::with_class_map(collection, threshold, ClassMap::hashed(m))
    }

    /// Builds the engine with an explicit class map (tests, worked
    /// examples).
    pub fn with_class_map(collection: Collection, threshold: Threshold, classes: ClassMap) -> Self {
        let index = PkwiseIndex::build(collection.records(), classes, threshold);
        RingSetSim {
            collection,
            threshold,
            index,
            scratch: SetScratch::default(),
        }
    }

    /// The underlying collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// The number of boxes `m`.
    pub fn m(&self) -> usize {
        self.index.classes().m()
    }

    /// Searches for all records with `sim(x, q) ≥ τ` using chain length
    /// `l`. `q` is a sorted rank array (normally a record of this
    /// collection). Returns ascending ids and statistics.
    pub fn search(&mut self, q: &[u32], l: usize) -> (Vec<u32>, SetStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.search_with(&mut scratch, q, l);
        self.scratch = scratch;
        out
    }

    /// [`RingSetSim::search`] against a caller-owned scratch; takes
    /// `&self`, so any number of threads can search one engine
    /// concurrently, each with its own [`SetScratch`].
    pub fn search_with(
        &self,
        scratch: &mut SetScratch,
        q: &[u32],
        l: usize,
    ) -> (Vec<u32>, SetStats) {
        let (cands, mut stats) = self.candidates_with(scratch, q, l);
        let threshold = self.threshold;
        let mut results: Vec<u32> = cands
            .into_iter()
            .filter(|&id| {
                let x = self.collection.record(id as usize);
                let need = threshold.min_overlap_pair(x.len(), q.len());
                overlap_at_least(x, q, need).is_some()
            })
            .collect();
        results.sort_unstable();
        stats.results = results.len();
        (results, stats)
    }

    /// Candidate generation only (no verification), for timing the
    /// filter separately (Figure 6's "Cand." series).
    pub fn candidates(&mut self, q: &[u32], l: usize) -> (Vec<u32>, SetStats) {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.candidates_with(&mut scratch, q, l);
        self.scratch = scratch;
        out
    }

    /// [`RingSetSim::candidates`] against a caller-owned scratch
    /// (`&self`; see [`RingSetSim::search_with`]).
    pub fn candidates_with(
        &self,
        scratch: &mut SetScratch,
        q: &[u32],
        l: usize,
    ) -> (Vec<u32>, SetStats) {
        let m = self.m();
        let l = l.clamp(1, m);
        let mut stats = SetStats::default();
        let epoch = scratch.next_epoch(self.collection.len(), m);
        let threshold = self.threshold;

        let oq = threshold.min_overlap_single(q.len());
        if oq as usize > q.len() {
            return (Vec::new(), stats); // no record can reach the overlap
        }
        let qp = compute_prefix(q, self.index.classes(), oq).expect("o(q) ≤ |q| was just checked");

        let mut cands: Vec<u32> = Vec::new();
        if qp.degenerate {
            // No signature guarantee from the query side: every
            // size-compatible record is a candidate (rare tiny-set path).
            for (id, x) in self.collection.records().iter().enumerate() {
                if threshold.size_compatible(x.len(), q.len()) {
                    cands.push(id as u32);
                }
            }
        } else {
            // Theorem 7 (≥) thresholds: t₀ for the suffix box, t_k per
            // class; ‖T‖₁ = o(q) + m − 1.
            let mut t = vec![0i64; m];
            t[0] = q.len() as i64 - qp.len as i64 + 1;
            for (k, tk) in t.iter_mut().enumerate().skip(1) {
                let cnt = qp.count(k) as i64;
                *tk = if cnt >= k as i64 { k as i64 } else { cnt + 1 };
            }
            debug_assert_eq!(t.iter().sum::<i64>(), oq as i64 + m as i64 - 1);
            let scheme = ThresholdScheme::integer_reduced(t);

            let collection = &self.collection;
            let index = &self.index;
            let SetScratch {
                ref mut inner,
                ref mut box_epoch,
                ref mut box_mask,
                ref mut box_vals,
                ..
            } = *scratch;
            let pigeonring_core::scratch::EpochScratch {
                ref mut accepted,
                ref mut ruled_epoch,
                ref mut ruled_mask,
                ..
            } = *inner;

            for k in 1..m {
                let toks = &qp.grouped[k - 1];
                if toks.len() < k {
                    continue;
                }
                stats.sig_probes += combination_count(toks.len(), k) as usize;
                for_each_combination(toks, k, &mut |combo| {
                    let Some(ids) = index.lookup(k, signature_hash(combo)) else {
                        return;
                    };
                    for &id in ids {
                        stats.viable_boxes += 1;
                        let idu = id as usize;
                        if accepted[idu] == epoch {
                            continue;
                        }
                        let x = &collection.records()[idu];
                        if !threshold.size_compatible(x.len(), q.len()) {
                            continue;
                        }
                        if ruled_epoch[idu] == epoch && (ruled_mask[idu] >> k) & 1 == 1 {
                            stats.skipped_by_corollary2 += 1;
                            continue;
                        }
                        if l == 1 {
                            accepted[idu] = epoch;
                            cands.push(id);
                            continue;
                        }
                        // Chain from class k; truncate before the suffix
                        // box (a chain reaching b₀ verifies directly).
                        let span = l.min(m - k);
                        let xp = index.prefix(id).expect("indexed record has a prefix");
                        let check =
                            check_prefix_viable_lazy(&scheme, Direction::Ge, k, span, |j| {
                                let c = j % m;
                                debug_assert!(c >= 1);
                                cached_class_overlap(
                                    xp,
                                    &qp,
                                    c,
                                    idu,
                                    epoch,
                                    m,
                                    box_epoch,
                                    box_mask,
                                    box_vals,
                                    &mut stats.boxes_checked,
                                ) as i64
                            });
                        match check {
                            Ok(()) => {
                                accepted[idu] = epoch;
                                cands.push(id);
                            }
                            Err(l_fail) => {
                                if ruled_epoch[idu] != epoch {
                                    ruled_epoch[idu] = epoch;
                                    ruled_mask[idu] = 0;
                                }
                                for off in 0..l_fail {
                                    ruled_mask[idu] |= 1u64 << (k + off);
                                }
                                // Theorem 7's witness chain may start at the
                                // suffix box b₀, which signature probes never
                                // reach: b₀ absorbs the *cross* overlap
                                // (prefix-of-one ∩ suffix-of-the-other), so it
                                // can exceed t₀ even though the pure suffix
                                // overlap cannot. Check the start-0 chain with
                                // a conservative upper bound for b₀ (sound in
                                // the ≥ direction); memoize failure in bit 0.
                                if ruled_mask[idu] & 1 == 0 {
                                    let b0_ub =
                                        (x.len() - xp.len) as i64 + (q.len() - qp.len) as i64;
                                    let c0 = check_prefix_viable_lazy(
                                        &scheme,
                                        Direction::Ge,
                                        0,
                                        l,
                                        |j| {
                                            if j == 0 {
                                                b0_ub
                                            } else {
                                                cached_class_overlap(
                                                    xp,
                                                    &qp,
                                                    j,
                                                    idu,
                                                    epoch,
                                                    m,
                                                    box_epoch,
                                                    box_mask,
                                                    box_vals,
                                                    &mut stats.boxes_checked,
                                                )
                                                    as i64
                                            }
                                        },
                                    );
                                    match c0 {
                                        Ok(()) => {
                                            accepted[idu] = epoch;
                                            cands.push(id);
                                        }
                                        Err(_) => ruled_mask[idu] |= 1,
                                    }
                                }
                            }
                        }
                    }
                });
            }
            // Degenerate records carry no signature guarantee: always
            // candidates (subject to the length filter).
            for &id in index.degenerate_ids() {
                let idu = id as usize;
                if accepted[idu] != epoch
                    && threshold.size_compatible(collection.records()[idu].len(), q.len())
                {
                    accepted[idu] = epoch;
                    cands.push(id);
                }
            }
        }

        stats.candidates = cands.len();
        (cands, stats)
    }
}

/// `b_c = |x_c ∩ q_c|`: overlap of the class-`c` prefix tokens — the §6.2
/// remark's "merging two very short lists".
#[inline]
fn class_overlap(xp: &Prefix, qp: &Prefix, c: usize) -> u32 {
    overlap(&xp.grouped[c - 1], &qp.grouped[c - 1])
}

/// [`class_overlap`] through the per-query `(record, class)` cache in
/// [`SetScratch`]: only a cache miss merges the class lists (and counts
/// toward `boxes_checked`); hits — repeated probes of the same record
/// and the start-0 suffix-box fallback re-check — are free.
#[expect(
    clippy::too_many_arguments,
    reason = "hot path; split borrows of scratch"
)]
#[inline]
fn cached_class_overlap(
    xp: &Prefix,
    qp: &Prefix,
    c: usize,
    idu: usize,
    epoch: u32,
    m: usize,
    box_epoch: &mut [u32],
    box_mask: &mut [u64],
    box_vals: &mut [u32],
    boxes_checked: &mut usize,
) -> u32 {
    let bit = 1u64 << c;
    if box_epoch[idu] == epoch {
        if box_mask[idu] & bit != 0 {
            return box_vals[idu * (m - 1) + (c - 1)];
        }
    } else {
        box_epoch[idu] = epoch;
        box_mask[idu] = 0;
    }
    *boxes_checked += 1;
    let v = class_overlap(xp, qp, c);
    box_mask[idu] |= bit;
    box_vals[idu * (m - 1) + (c - 1)] = v;
    v
}

/// The pkwise baseline \[103\]: the ring engine fixed at `l = 1`.
pub struct Pkwise(RingSetSim);

impl Pkwise {
    /// Builds pkwise over a collection.
    pub fn build(collection: Collection, threshold: Threshold, m: usize) -> Self {
        Pkwise(RingSetSim::build(collection, threshold, m))
    }

    /// Searches with the plain k-wise signature filter.
    pub fn search(&mut self, q: &[u32]) -> (Vec<u32>, SetStats) {
        self.0.search(q, 1)
    }

    /// The shared engine.
    pub fn inner(&mut self) -> &mut RingSetSim {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LinearScanSets;

    fn zipfish_collection(n: usize, avg: usize, seed: u64) -> Collection {
        // Deterministic pseudo-random records with skewed token use and
        // planted near-duplicate pairs.
        let mut s = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut raw: Vec<Vec<u32>> = Vec::with_capacity(n);
        for i in 0..n {
            let len = avg / 2 + (next() as usize % avg.max(1));
            let mut r = Vec::with_capacity(len);
            for _ in 0..len {
                // Skew: low token ids are common.
                let u = next() % 1000;
                let t = if u < 600 { next() % 20 } else { next() % 500 };
                r.push(t as u32);
            }
            if i % 3 == 0 && i > 0 {
                // Plant a near-duplicate of an earlier record.
                r = raw[i - 1].clone();
                if !r.is_empty() && next() % 2 == 0 {
                    let idx = (next() as usize) % r.len();
                    r[idx] = (next() % 500) as u32;
                }
            }
            raw.push(r);
        }
        Collection::new(raw)
    }

    #[test]
    fn ring_matches_linear_scan_jaccard() {
        let c = zipfish_collection(120, 12, 7);
        let scan_results: Vec<Vec<u32>> = {
            let scan = LinearScanSets::new(&c);
            (0..c.len())
                .map(|qid| scan.search(c.record(qid), Threshold::jaccard(0.7)))
                .collect()
        };
        let mut ring = RingSetSim::build(c.clone(), Threshold::jaccard(0.7), 5);
        for l in 1..=3usize {
            for (qid, expect) in scan_results.iter().enumerate() {
                let (got, _) = ring.search(c.record(qid), l);
                assert_eq!(&got, expect, "qid={qid} l={l}");
            }
        }
    }

    #[test]
    fn ring_matches_linear_scan_overlap() {
        let c = zipfish_collection(100, 10, 21);
        let t = Threshold::Overlap(6);
        let scan = LinearScanSets::new(&c);
        let expected: Vec<Vec<u32>> = (0..c.len())
            .map(|qid| scan.search(c.record(qid), t))
            .collect();
        let mut ring = RingSetSim::build(c.clone(), t, 5);
        for l in [1usize, 2, 3, 5] {
            for qid in (0..c.len()).step_by(7) {
                let (got, _) = ring.search(c.record(qid), l);
                assert_eq!(got, expected[qid], "qid={qid} l={l}");
            }
        }
    }

    #[test]
    fn candidates_shrink_with_l() {
        let c = zipfish_collection(200, 14, 3);
        let mut ring = RingSetSim::build(c.clone(), Threshold::jaccard(0.7), 5);
        for qid in (0..c.len()).step_by(11) {
            let mut prev = usize::MAX;
            for l in 1..=3usize {
                let (_, stats) = ring.search(c.record(qid), l);
                assert!(stats.candidates <= prev, "qid={qid} l={l}");
                prev = stats.candidates;
            }
        }
    }

    #[test]
    fn pkwise_equals_ring_l1() {
        let c = zipfish_collection(150, 12, 99);
        let mut pk = Pkwise::build(c.clone(), Threshold::jaccard(0.8), 5);
        let mut ring = RingSetSim::build(c.clone(), Threshold::jaccard(0.8), 5);
        for qid in (0..c.len()).step_by(13) {
            let (r1, s1) = pk.search(c.record(qid));
            let (r2, s2) = ring.search(c.record(qid), 1);
            assert_eq!(r1, r2);
            assert_eq!(s1.candidates, s2.candidates);
        }
    }

    #[test]
    fn witness_chain_starting_at_suffix_box_is_not_pruned() {
        // Regression: with Threshold::Overlap(6) and l = 5, the only
        // Theorem-7 (≥) prefix-viable chain for this pair starts at the
        // suffix box b₀ — token 59 sits in q's prefix but x's suffix, so
        // b₀ carries cross overlap that t₀ = |q| − p_q + 1 does not
        // dominate. The engine must fall back to the start-0 chain (with
        // an upper-bounded b₀) instead of pruning the true result.
        let raw = vec![
            vec![2, 5, 14, 38, 41, 42, 43, 48, 50, 52, 54, 59],
            vec![8, 11, 14, 19, 27, 31, 32, 38, 43, 52, 54, 59],
        ];
        let c = Collection::new(raw);
        let t = Threshold::Overlap(6);
        // The class assignment (by rank) that produced the failure in the
        // original 39-record collection, pinned explicitly so the test
        // stays meaningful if the hash mixing ever changes.
        let classes = ClassMap::explicit(
            5,
            vec![3, 4, 4, 1, 1, 1, 3, 4, 2, 3, 4, 3, 1, 1, 1, 2, 1, 1],
        );
        let scan = LinearScanSets::new(&c);
        let mut ring = RingSetSim::with_class_map(c.clone(), t, classes);
        for qid in 0..c.len() {
            let expect = scan.search(c.record(qid), t);
            for l in 1..=5usize {
                assert_eq!(ring.search(c.record(qid), l).0, expect, "qid={qid} l={l}");
            }
        }
    }

    #[test]
    fn empty_query_returns_nothing() {
        let c = zipfish_collection(50, 8, 5);
        let mut ring = RingSetSim::build(c, Threshold::jaccard(0.7), 5);
        let (res, _) = ring.search(&[], 2);
        assert!(res.is_empty());
    }

    #[test]
    fn m_equals_2_degenerates_to_prefix_filter() {
        // §6.2: with m = 2 and l = 1 the method is exactly prefix
        // filtering. Just check completeness holds there.
        let c = zipfish_collection(80, 10, 17);
        let t = Threshold::jaccard(0.7);
        let scan = LinearScanSets::new(&c);
        let expected: Vec<Vec<u32>> = (0..c.len())
            .map(|qid| scan.search(c.record(qid), t))
            .collect();
        let mut ring = RingSetSim::build(c.clone(), t, 2);
        for (qid, expect) in expected.iter().enumerate() {
            assert_eq!(&ring.search(c.record(qid), 1).0, expect, "qid={qid}");
        }
    }
}
