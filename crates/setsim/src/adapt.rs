//! AdaptSearch baseline, configured as in the paper's experiments.
//!
//! §8.1 notes that AdaptSearch \[100\] is run with its prefix extension
//! disabled, "to make it the same as AllPairs' or PPJoin's search
//! version, whenever either of the two is faster". That is what we
//! implement: an inverted index over record prefixes (AllPairs \[8\])
//! with the length filter and PPJoin's position filter \[115\], followed
//! by fast verification.
//!
//! Prefix lengths use the single-side minimum overlap: a record `x` can
//! only match partners with overlap `≥ o(x) = ⌈τ·|x|⌉` (Jaccard), so its
//! prefix of length `|x| − o(x) + 1` must share a token with any result
//! partner's prefix.

use crate::types::{overlap_at_least, Collection, Threshold};
use pigeonring_core::fxhash::FxHashMap;

/// Prefix-filter search engine (AllPairs/PPJoin search version).
pub struct AdaptSearch {
    collection: Collection,
    threshold: Threshold,
    /// token → (id, position-in-record) postings over record prefixes.
    lists: FxHashMap<u32, Vec<(u32, u32)>>,
    epoch: u32,
    seen: Vec<u32>,
    alpha: Vec<u32>,
    pruned: Vec<bool>,
}

/// Per-query counters for [`AdaptSearch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptStats {
    /// Unique records surviving all filters and verified.
    pub candidates: usize,
    /// Records satisfying the threshold.
    pub results: usize,
    /// Posting entries scanned.
    pub postings_scanned: usize,
}

impl AdaptStats {
    /// Folds `other` into `self`, saturating on overflow (shard
    /// aggregation in the service layer).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.results = self.results.saturating_add(other.results);
        self.postings_scanned = self.postings_scanned.saturating_add(other.postings_scanned);
    }
}

impl AdaptSearch {
    /// Builds the prefix index.
    pub fn build(collection: Collection, threshold: Threshold) -> Self {
        let mut lists: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        for (id, x) in collection.records().iter().enumerate() {
            let o = threshold.min_overlap_single(x.len());
            if o as usize > x.len() {
                continue; // can never match
            }
            let prefix_len = x.len() - o as usize + 1;
            for (pos, &tok) in x.iter().take(prefix_len).enumerate() {
                lists.entry(tok).or_default().push((id as u32, pos as u32));
            }
        }
        let n = collection.len();
        AdaptSearch {
            collection,
            threshold,
            lists,
            epoch: 0,
            seen: vec![0; n],
            alpha: vec![0; n],
            pruned: vec![false; n],
        }
    }

    /// The collection.
    pub fn collection(&self) -> &Collection {
        &self.collection
    }

    /// Searches for all records with `sim(x, q) ≥ τ` against sorted rank
    /// array `q`. Returns ascending ids and statistics.
    pub fn search(&mut self, q: &[u32]) -> (Vec<u32>, AdaptStats) {
        let mut stats = AdaptStats::default();
        if self.epoch == u32::MAX {
            self.seen.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let epoch = self.epoch;

        let oq = self.threshold.min_overlap_single(q.len());
        if oq as usize > q.len() {
            return (Vec::new(), stats);
        }
        let q_prefix = q.len() - oq as usize + 1;

        let mut touched: Vec<u32> = Vec::new();
        for (i, &tok) in q.iter().take(q_prefix).enumerate() {
            let Some(list) = self.lists.get(&tok) else {
                continue;
            };
            for &(id, j) in list {
                stats.postings_scanned += 1;
                let idu = id as usize;
                let x = self.collection.record(idu);
                if self.seen[idu] != epoch {
                    self.seen[idu] = epoch;
                    self.alpha[idu] = 0;
                    // Length filter once per record.
                    if !self.threshold.size_compatible(x.len(), q.len()) {
                        self.pruned[idu] = true;
                        continue;
                    }
                    // Position filter (PPJoin, first encounter): the
                    // overlap can be at most 1 + what remains after the
                    // matching positions.
                    let need = self.threshold.min_overlap_pair(x.len(), q.len());
                    let ub = 1 + (x.len() - j as usize - 1).min(q.len() - i - 1) as u32;
                    if ub < need {
                        self.pruned[idu] = true;
                        continue;
                    }
                    self.pruned[idu] = false;
                    touched.push(id);
                }
                if !self.pruned[idu] {
                    self.alpha[idu] += 1;
                }
            }
        }

        stats.candidates = touched.len();
        let mut results: Vec<u32> = touched
            .into_iter()
            .filter(|&id| {
                let x = self.collection.record(id as usize);
                let need = self.threshold.min_overlap_pair(x.len(), q.len());
                overlap_at_least(x, q, need).is_some()
            })
            .collect();
        results.sort_unstable();
        stats.results = results.len();
        (results, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::LinearScanSets;

    fn small_collection() -> Collection {
        Collection::new(vec![
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 11],
            vec![1, 2, 3, 4, 5, 6, 7, 8, 12, 13],
            vec![20, 21, 22, 23, 24, 25, 26, 27, 28, 29],
            vec![1, 2, 3, 20, 21, 22, 23, 24, 25, 26],
            vec![2, 3, 4, 5],
            vec![30],
        ])
    }

    #[test]
    fn matches_linear_scan_jaccard() {
        let c = small_collection();
        for tau in [0.5, 0.7, 0.8, 0.9, 0.95] {
            let t = Threshold::jaccard(tau);
            let scan = LinearScanSets::new(&c);
            let expected: Vec<Vec<u32>> = (0..c.len())
                .map(|qid| scan.search(c.record(qid), t))
                .collect();
            let mut eng = AdaptSearch::build(c.clone(), t);
            for (qid, expect) in expected.iter().enumerate() {
                assert_eq!(&eng.search(c.record(qid)).0, expect, "tau={tau} qid={qid}");
            }
        }
    }

    #[test]
    fn matches_linear_scan_overlap() {
        let c = small_collection();
        for o in [1u32, 3, 6, 10] {
            let t = Threshold::Overlap(o);
            let scan = LinearScanSets::new(&c);
            let mut eng = AdaptSearch::build(c.clone(), t);
            for qid in 0..c.len() {
                let expected = scan.search(c.record(qid), t);
                assert_eq!(eng.search(c.record(qid)).0, expected, "o={o} qid={qid}");
            }
        }
    }

    #[test]
    fn position_filter_prunes_hopeless_records() {
        // Record sharing only the last prefix token with q, with nothing
        // after it, cannot reach a high overlap: it must be pruned before
        // verification.
        let c = Collection::new(vec![
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
            vec![10, 20, 21, 22, 23, 24, 25, 26, 27, 28],
        ]);
        let t = Threshold::jaccard(0.8);
        let mut eng = AdaptSearch::build(c.clone(), t);
        let q = c.record(0).to_vec();
        let (res, stats) = eng.search(&q);
        assert_eq!(res, vec![0]);
        // Record 1 shares no prefix token with q under the global order,
        // or is pruned by the position filter; either way it is not
        // verified.
        assert!(stats.candidates <= 1 + 1);
    }
}
