//! Set-similarity self-join: all pairs `(i, j)`, `i < j`, with
//! `sim(x_i, x_j) ≥ τ` — the batch dual of Problem 3 that most of the
//! §8.1 baselines (pkwise, PartAlloc, AllPairs/PPJoin) were originally
//! designed for. Reuses the pigeonring search engine query-by-query and
//! reports each pair once.

use crate::ring::RingSetSim;
use crate::types::{overlap, Collection, Threshold};

/// Aggregate statistics for a join run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Total candidates verified across all probes.
    pub candidates: usize,
    /// Result pairs.
    pub pairs: usize,
}

impl JoinStats {
    /// Folds `other` into `self`, saturating on overflow (partitioned
    /// join aggregation).
    pub fn merge(&mut self, other: &Self) {
        self.candidates = self.candidates.saturating_add(other.candidates);
        self.pairs = self.pairs.saturating_add(other.pairs);
    }
}

/// All record pairs satisfying the engine's threshold, via chain length
/// `l` (`l = 1` is the pkwise join). Pairs come back with `i < j`,
/// lexicographically sorted.
pub fn self_join(engine: &mut RingSetSim, l: usize) -> (Vec<(u32, u32)>, JoinStats) {
    let n = engine.collection().len();
    let mut out = Vec::new();
    let mut stats = JoinStats::default();
    for i in 0..n {
        let q = engine.collection().record(i).to_vec();
        let (ids, s) = engine.search(&q, l);
        stats.candidates += s.candidates;
        for id in ids {
            if (id as usize) > i {
                out.push((i as u32, id));
            }
        }
    }
    stats.pairs = out.len();
    (out, stats)
}

/// Quadratic reference join for tests.
pub fn nested_loop_join(collection: &Collection, threshold: Threshold) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for i in 0..collection.len() {
        for j in i + 1..collection.len() {
            let (x, y) = (collection.record(i), collection.record(j));
            if threshold.size_compatible(x.len(), y.len())
                && threshold.satisfied(overlap(x, y), x.len(), y.len())
            {
                out.push((i as u32, j as u32));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collection() -> Collection {
        let mut raw: Vec<Vec<u32>> = Vec::new();
        let mut s = 0x5EEDu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..60 {
            if i % 3 == 0 && i > 0 {
                let mut c: Vec<u32> = raw[i - 1].clone();
                if !c.is_empty() {
                    let k = (next() as usize) % c.len();
                    c[k] = (next() % 80) as u32;
                }
                raw.push(c);
            } else {
                let len = 6 + (next() as usize % 8);
                raw.push((0..len).map(|_| (next() % 80) as u32).collect());
            }
        }
        Collection::new(raw)
    }

    #[test]
    fn join_matches_nested_loop_jaccard() {
        let c = collection();
        let t = Threshold::jaccard(0.7);
        let expect = nested_loop_join(&c, t);
        let mut eng = RingSetSim::build(c.clone(), t, 5);
        for l in [1usize, 2, 3] {
            let (got, stats) = self_join(&mut eng, l);
            assert_eq!(got, expect, "l={l}");
            assert_eq!(stats.pairs, expect.len());
        }
    }

    #[test]
    fn join_matches_nested_loop_overlap() {
        let c = collection();
        let t = Threshold::Overlap(6);
        let expect = nested_loop_join(&c, t);
        let mut eng = RingSetSim::build(c.clone(), t, 4);
        let (got, _) = self_join(&mut eng, 2);
        assert_eq!(got, expect);
    }

    #[test]
    fn ring_join_verifies_fewer_candidates() {
        let c = collection();
        let mut eng = RingSetSim::build(c, Threshold::jaccard(0.7), 5);
        let (_, s1) = self_join(&mut eng, 1);
        let (_, s3) = self_join(&mut eng, 3);
        assert!(s3.candidates <= s1.candidates);
    }
}
