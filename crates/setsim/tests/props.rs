//! Property tests for the set-similarity substrate and engines: exact
//! rational threshold arithmetic, verification kernels, and engine
//! exactness against linear scan on arbitrary random collections.

use pigeonring_setsim::types::{overlap, overlap_at_least};
use pigeonring_setsim::{
    AdaptSearch, Collection, LinearScanSets, PartAlloc, RingSetSim, Threshold,
};
use proptest::prelude::*;

fn record_strategy() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(0u32..60, 1..16)
}

fn collection_strategy() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(record_strategy(), 4..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn overlap_merge_matches_naive(a in record_strategy(), b in record_strategy()) {
        let mut a = a; a.sort_unstable(); a.dedup();
        let mut b = b; b.sort_unstable(); b.dedup();
        let naive = a.iter().filter(|t| b.contains(t)).count() as u32;
        prop_assert_eq!(overlap(&a, &b), naive);
        prop_assert_eq!(overlap_at_least(&a, &b, naive), Some(naive));
        prop_assert_eq!(overlap_at_least(&a, &b, naive + 1), None);
    }

    #[test]
    fn jaccard_threshold_agrees_with_float(
        o in 0u32..30,
        sx in 1usize..40,
        sq in 1usize..40,
        tau_pct in 50u32..=99,
    ) {
        prop_assume!(o as usize <= sx.min(sq));
        let t = Threshold::Jaccard { num: tau_pct * 10, den: 1000 };
        let j = o as f64 / (sx + sq - o as usize) as f64;
        let tau = tau_pct as f64 / 100.0;
        // Exact rational test must agree with the float comparison except
        // within float epsilon of the boundary.
        if (j - tau).abs() > 1e-9 {
            prop_assert_eq!(t.satisfied(o, sx, sq), j >= tau, "o={} sx={} sq={}", o, sx, sq);
        }
    }

    #[test]
    fn min_overlap_pair_is_minimal(sx in 1usize..60, sq in 1usize..60, tau_pct in 50u32..=95) {
        let t = Threshold::Jaccard { num: tau_pct * 10, den: 1000 };
        let o = t.min_overlap_pair(sx, sq);
        prop_assume!(o as usize <= sx.min(sq));
        prop_assert!(t.satisfied(o, sx, sq));
        if o > 0 {
            prop_assert!(!t.satisfied(o - 1, sx, sq));
        }
    }

    #[test]
    fn all_engines_match_linear_scan(raw in collection_strategy(), tau_pct in 6u32..=9) {
        let coll = Collection::new(raw);
        prop_assume!(!coll.is_empty());
        let t = Threshold::jaccard(tau_pct as f64 / 10.0);
        let scan = LinearScanSets::new(&coll);
        let mut ring = RingSetSim::build(coll.clone(), t, 4);
        let mut adapt = AdaptSearch::build(coll.clone(), t);
        let mut part = PartAlloc::build(coll.clone(), t);
        for qid in 0..coll.len().min(6) {
            let q = coll.record(qid).to_vec();
            let expect = scan.search(&q, t);
            for l in 1..=3usize {
                prop_assert_eq!(ring.search(&q, l).0, expect.clone(), "ring qid={} l={}", qid, l);
            }
            prop_assert_eq!(adapt.search(&q).0, expect.clone(), "adapt qid={}", qid);
            prop_assert_eq!(part.search(&q).0, expect, "partalloc qid={}", qid);
        }
    }

    #[test]
    fn overlap_threshold_engines_match(raw in collection_strategy(), o in 1u32..8) {
        let coll = Collection::new(raw);
        prop_assume!(!coll.is_empty());
        let t = Threshold::Overlap(o);
        let scan = LinearScanSets::new(&coll);
        let mut ring = RingSetSim::build(coll.clone(), t, 5);
        for qid in 0..coll.len().min(4) {
            let q = coll.record(qid).to_vec();
            let expect = scan.search(&q, t);
            for l in [1usize, 2, 5] {
                prop_assert_eq!(ring.search(&q, l).0, expect.clone(), "qid={} l={}", qid, l);
            }
        }
    }
}
