//! Clustered binary vectors (GIST-like / SIFT-like).
//!
//! Spectral-hashed image descriptors cluster: near-duplicate images give
//! codes a few bit flips apart while unrelated images sit near `d/2`.
//! The generator plants cluster centers (uniform random codes) and emits
//! members by flipping each bit independently with `flip_prob`, plus a
//! uniform background fraction. The resulting distance distribution —
//! a small mass near `2·flip_prob·d` and a bulk near `d/2` — is what
//! makes the pigeonhole filter admit near-miss false positives and gives
//! the pigeonring filter something to remove, matching the paper's GIST
//! and SIFT behavior.

use crate::rng;
use pigeonring_hamming::BitVector;
use rand::Rng;

/// Configuration for the binary-vector generator.
#[derive(Clone, Debug)]
pub struct VectorConfig {
    /// Number of vectors.
    pub count: usize,
    /// Dimensionality `d`.
    pub dims: usize,
    /// Number of planted cluster centers.
    pub clusters: usize,
    /// Per-bit flip probability for cluster members.
    pub flip_prob: f64,
    /// Fraction of uniform background vectors (in `[0, 1]`).
    pub background: f64,
    /// RNG seed.
    pub seed: u64,
}

impl VectorConfig {
    /// GIST-like: 256-d codes (the paper's GIST converts descriptors via
    /// spectral hashing to 256 dimensions).
    pub fn gist_like(count: usize) -> Self {
        VectorConfig {
            count,
            dims: 256,
            clusters: (count / 50).max(1),
            flip_prob: 0.05,
            background: 0.3,
            seed: 0x615f_7431,
        }
    }

    /// SIFT-like: 512-d codes (BIGANN SIFT converted to 512 dimensions).
    pub fn sift_like(count: usize) -> Self {
        VectorConfig {
            count,
            dims: 512,
            clusters: (count / 50).max(1),
            flip_prob: 0.05,
            background: 0.3,
            seed: 0x5146_7432,
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> Vec<BitVector> {
        assert!(self.count > 0 && self.dims > 0);
        assert!((0.0..=1.0).contains(&self.flip_prob));
        assert!((0.0..=1.0).contains(&self.background));
        let mut r = rng(self.seed);
        let centers: Vec<BitVector> = (0..self.clusters.max(1))
            .map(|_| BitVector::from_bits((0..self.dims).map(|_| r.gen::<bool>())))
            .collect();
        (0..self.count)
            .map(|_| {
                if r.gen::<f64>() < self.background {
                    BitVector::from_bits((0..self.dims).map(|_| r.gen::<bool>()))
                } else {
                    let c = &centers[r.gen_range(0..centers.len())];
                    let mut v = c.clone();
                    for b in 0..self.dims {
                        if r.gen::<f64>() < self.flip_prob {
                            v.flip(b);
                        }
                    }
                    v
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = VectorConfig {
            count: 200,
            dims: 64,
            clusters: 4,
            flip_prob: 0.05,
            background: 0.2,
            seed: 7,
        };
        let data = cfg.generate();
        assert_eq!(data.len(), 200);
        assert!(data.iter().all(|v| v.dims() == 64));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = VectorConfig::gist_like(50);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn clusters_create_near_pairs_background_stays_far() {
        let cfg = VectorConfig {
            count: 400,
            dims: 256,
            clusters: 5,
            flip_prob: 0.04,
            background: 0.25,
            seed: 11,
        };
        let data = cfg.generate();
        // Some pairs must be near (cluster mates) and the median pair far.
        let mut near = 0usize;
        let mut far = 0usize;
        for i in (0..data.len()).step_by(7) {
            for j in (i + 1..data.len()).step_by(11) {
                let d = data[i].distance(&data[j]);
                if d <= 64 {
                    near += 1;
                }
                if d >= 96 {
                    far += 1;
                }
            }
        }
        assert!(near > 0, "expected planted near-duplicates");
        assert!(far > near, "bulk of pairs must be far");
    }
}
