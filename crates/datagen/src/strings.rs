//! Skewed-alphabet strings with planted typo variants (IMDB-like /
//! PubMed-like).
//!
//! q-gram selectivity depends on alphabet skew (natural text grams are
//! Zipfian) and string length (IMDB names ≈ 16 chars, PubMed titles
//! ≈ 101). Characters are drawn from a Zipf distribution over lowercase
//! letters; a fraction of strings are copies of earlier strings with a
//! few random edit operations applied, so edit-distance queries at
//! τ ∈ [1, 12] have non-empty results.

use crate::rng;
use crate::zipf::Zipf;
use rand::Rng;

/// Configuration for the string generator.
#[derive(Clone, Debug)]
pub struct StringConfig {
    /// Number of strings.
    pub count: usize,
    /// Average length.
    pub avg_len: usize,
    /// Alphabet size (drawn from `'a'..`).
    pub alphabet: usize,
    /// Zipf exponent of character frequencies.
    pub zipf_s: f64,
    /// Fraction of strings that are edited copies of earlier strings.
    pub dup_frac: f64,
    /// Maximum number of edits applied to a copy.
    pub max_edits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl StringConfig {
    /// IMDB-like: short names (avg length ≈ 16).
    pub fn imdb_like(count: usize) -> Self {
        StringConfig {
            count,
            avg_len: 16,
            alphabet: 26,
            zipf_s: 0.7,
            dup_frac: 0.4,
            max_edits: 4,
            seed: 0x494d_4442,
        }
    }

    /// PubMed-like: long titles (avg length ≈ 101).
    pub fn pubmed_like(count: usize) -> Self {
        StringConfig {
            count,
            avg_len: 101,
            alphabet: 26,
            zipf_s: 0.8,
            dup_frac: 0.4,
            max_edits: 12,
            seed: 0x5075_624d,
        }
    }

    /// Generates the strings (lowercase ASCII bytes).
    pub fn generate(&self) -> Vec<Vec<u8>> {
        assert!(self.count > 0 && self.avg_len >= 2);
        assert!(self.alphabet >= 2 && self.alphabet <= 26);
        let mut r = rng(self.seed);
        let zipf = Zipf::new(self.alphabet, self.zipf_s);
        let draw = |r: &mut rand::rngs::SmallRng| b'a' + zipf.sample(r) as u8;
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.count);
        for i in 0..self.count {
            if i > 0 && r.gen::<f64>() < self.dup_frac {
                let mut s = out[r.gen_range(0..i)].clone();
                let edits = r.gen_range(1..=self.max_edits.max(1));
                for _ in 0..edits {
                    if s.is_empty() {
                        break;
                    }
                    let pos = r.gen_range(0..s.len());
                    match r.gen_range(0..3) {
                        0 => s[pos] = draw(&mut r),
                        1 => s.insert(pos, draw(&mut r)),
                        _ => {
                            s.remove(pos);
                        }
                    }
                }
                out.push(s);
            } else {
                let spread = self.avg_len / 2;
                let len = self.avg_len - spread / 2 + r.gen_range(0..=spread.max(1));
                out.push((0..len.max(2)).map(|_| draw(&mut r)).collect());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = StringConfig::imdb_like(200);
        let data = cfg.generate();
        assert_eq!(data.len(), 200);
        let avg: f64 = data.iter().map(|s| s.len() as f64).sum::<f64>() / 200.0;
        assert!((10.0..22.0).contains(&avg), "avg len {avg}");
        assert!(data.iter().all(|s| s.iter().all(u8::is_ascii_lowercase)));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = StringConfig::pubmed_like(40);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn near_duplicates_exist_within_tau() {
        let cfg = StringConfig::imdb_like(300);
        let data = cfg.generate();
        // Cheap edit-distance (small strings) to confirm planted typos.
        fn ed(a: &[u8], b: &[u8]) -> usize {
            let mut row: Vec<usize> = (0..=b.len()).collect();
            for (i, &ca) in a.iter().enumerate() {
                let mut diag = row[0];
                row[0] = i + 1;
                for (j, &cb) in b.iter().enumerate() {
                    let sub = diag + usize::from(ca != cb);
                    diag = row[j + 1];
                    row[j + 1] = sub.min(row[j] + 1).min(diag + 1);
                }
            }
            row[b.len()]
        }
        let mut found = false;
        'outer: for i in 0..data.len() {
            for j in i + 1..data.len() {
                if data[i] != data[j] && ed(&data[i], &data[j]) <= 2 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected planted typo variants within τ = 2");
    }
}
