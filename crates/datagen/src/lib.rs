//! # pigeonring-datagen
//!
//! Seeded synthetic dataset generators standing in for the paper's eight
//! real datasets (GIST, SIFT, Enron, DBLP, IMDB, PubMed, AIDS, Protein).
//! Every generator is deterministic given its config (same seed → same
//! data), plants groups of near-duplicates so that thresholded queries
//! have non-trivial result sets, and reproduces the distributional
//! features the filters are sensitive to (see DESIGN.md §4 for the
//! substitution argument per dataset).
//!
//! * [`vectors`] — clustered binary vectors (GIST-like 256-d, SIFT-like
//!   512-d).
//! * [`sets`] — Zipfian token sets (Enron-like avg 142 tokens, DBLP-like
//!   avg 14).
//! * [`strings`] — skewed-alphabet strings with planted typo variants
//!   (IMDB-like len ≈ 16, PubMed-like len ≈ 101).
//! * [`graphs`] — sparse labeled graphs with planted edit variants
//!   (AIDS-like: many labels; Protein-like: few labels, denser).
//! * [`zipf`] — the exact inverse-CDF Zipf sampler the above share.

pub mod graphs;
pub mod sets;
pub mod strings;
pub mod vectors;
pub mod zipf;

pub use graphs::GraphConfig;
pub use sets::SetConfig;
pub use strings::StringConfig;
pub use vectors::VectorConfig;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The workspace-wide seeded RNG constructor.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Deterministically samples `count` query indices from a dataset of
/// `n` items (evenly spaced with a seeded offset, as the paper samples
/// 1,000 queries per dataset).
pub fn sample_query_ids(n: usize, count: usize, seed: u64) -> Vec<usize> {
    assert!(n > 0, "cannot sample queries from an empty dataset");
    let count = count.min(n);
    let stride = n / count.max(1);
    let offset = (seed as usize) % stride.max(1);
    (0..count)
        .map(|i| (offset + i * stride.max(1)) % n)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_ids_are_unique_and_in_range() {
        let ids = sample_query_ids(1000, 100, 42);
        assert_eq!(ids.len(), 100);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100);
        assert!(ids.iter().all(|&i| i < 1000));
    }

    #[test]
    fn query_sampling_handles_small_datasets() {
        let ids = sample_query_ids(5, 100, 7);
        assert_eq!(ids.len(), 5);
    }
}
