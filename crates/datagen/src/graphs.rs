//! Sparse labeled graphs with planted edit variants (AIDS-like /
//! Protein-like).
//!
//! The paper's AIDS compounds average 26 vertices / 28 edges with 62
//! vertex and 3 edge labels; Protein structures average 33/56 with 3/5.
//! We keep those *ratios* — AIDS-like: sparse, label-rich; Protein-like:
//! denser, label-poor — at a reduced size (vertex counts scaled to keep
//! exact A\* GED verification tractable on a laptop; documented in
//! DESIGN.md §4). Label-poor graphs make part features unselective,
//! which is exactly the paper's explanation for the small Ring gain on
//! Protein (§8.3).

use crate::rng;
use pigeonring_graph::Graph;
use rand::Rng;

/// Configuration for the labeled-graph generator.
#[derive(Clone, Debug)]
pub struct GraphConfig {
    /// Number of graphs.
    pub count: usize,
    /// Average vertex count.
    pub avg_vertices: usize,
    /// Extra edges beyond the spanning backbone, as a fraction of
    /// vertices (0 ⇒ trees; 1 ⇒ roughly 2·V edges).
    pub extra_edge_frac: f64,
    /// Number of vertex labels.
    pub vlabels: u32,
    /// Number of edge labels.
    pub elabels: u32,
    /// Fraction of graphs that are edited copies of earlier graphs.
    pub dup_frac: f64,
    /// Maximum number of edit operations applied to a copy.
    pub max_edits: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GraphConfig {
    /// AIDS-like: sparse (edges ≈ vertices), many vertex labels, 3 edge
    /// labels.
    pub fn aids_like(count: usize) -> Self {
        GraphConfig {
            count,
            avg_vertices: 16,
            extra_edge_frac: 0.1,
            vlabels: 20,
            elabels: 3,
            dup_frac: 0.4,
            max_edits: 4,
            seed: 0x4149_4453,
        }
    }

    /// Protein-like: denser (edges ≈ 1.7 × vertices), 3 vertex labels,
    /// 5 edge labels.
    pub fn protein_like(count: usize) -> Self {
        GraphConfig {
            count,
            avg_vertices: 12,
            extra_edge_frac: 0.7,
            vlabels: 3,
            elabels: 5,
            dup_frac: 0.4,
            max_edits: 4,
            seed: 0x5052_4f54,
        }
    }

    /// Generates the graphs.
    pub fn generate(&self) -> Vec<Graph> {
        assert!(self.count > 0 && self.avg_vertices >= 3);
        assert!(self.vlabels >= 1 && self.elabels >= 1);
        let mut r = rng(self.seed);
        let mut out: Vec<Graph> = Vec::with_capacity(self.count);
        for i in 0..self.count {
            if i > 0 && r.gen::<f64>() < self.dup_frac {
                let src = out[r.gen_range(0..i)].clone();
                out.push(self.edit(&src, &mut r));
            } else {
                out.push(self.fresh(&mut r));
            }
        }
        out
    }

    fn fresh(&self, r: &mut rand::rngs::SmallRng) -> Graph {
        let n = (self.avg_vertices as i64 + r.gen_range(-2i64..=2)).max(3) as usize;
        let mut g = Graph::new((0..n).map(|_| r.gen_range(0..self.vlabels)).collect());
        // Connected backbone.
        for v in 1..n as u32 {
            let u = r.gen_range(0..v);
            g.add_edge(u, v, r.gen_range(0..self.elabels));
        }
        // Extra edges.
        let extra = (n as f64 * self.extra_edge_frac).round() as usize;
        let mut attempts = 0;
        let mut added = 0;
        while added < extra && attempts < extra * 10 {
            attempts += 1;
            let u = r.gen_range(0..n as u32);
            let v = r.gen_range(0..n as u32);
            if u != v && g.edge_label(u, v).is_none() {
                g.add_edge(u.min(v), u.max(v), r.gen_range(0..self.elabels));
                added += 1;
            }
        }
        g
    }

    /// Applies 1..=max_edits random §2.2 operations (vertex/edge
    /// relabels, edge insert/delete) — the paper builds its Protein
    /// dataset the same way ("duplication and randomly applying minor
    /// errors").
    fn edit(&self, src: &Graph, r: &mut rand::rngs::SmallRng) -> Graph {
        let mut labels = src.vlabels().to_vec();
        let mut edges: Vec<(u32, u32, u32)> = src.edges().collect();
        let ops = r.gen_range(1..=self.max_edits.max(1));
        for _ in 0..ops {
            match r.gen_range(0..4) {
                0 if !labels.is_empty() => {
                    let i = r.gen_range(0..labels.len());
                    labels[i] = r.gen_range(0..self.vlabels);
                }
                1 if !edges.is_empty() => {
                    let i = r.gen_range(0..edges.len());
                    edges[i].2 = r.gen_range(0..self.elabels);
                }
                2 if !edges.is_empty() => {
                    let i = r.gen_range(0..edges.len());
                    edges.swap_remove(i);
                }
                _ => {
                    // Insert an edge if a free slot exists.
                    let n = labels.len() as u32;
                    for _ in 0..8 {
                        let u = r.gen_range(0..n);
                        let v = r.gen_range(0..n);
                        let (u, v) = (u.min(v), u.max(v));
                        if u != v && !edges.iter().any(|&(a, b, _)| (a, b) == (u, v)) {
                            edges.push((u, v, r.gen_range(0..self.elabels)));
                            break;
                        }
                    }
                }
            }
        }
        let mut g = Graph::new(labels);
        for (u, v, l) in edges {
            g.add_edge(u, v, l);
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pigeonring_graph::ged_within;

    #[test]
    fn generates_requested_shape() {
        let cfg = GraphConfig::aids_like(50);
        let data = cfg.generate();
        assert_eq!(data.len(), 50);
        let avg_v: f64 = data.iter().map(|g| g.num_vertices() as f64).sum::<f64>() / 50.0;
        assert!((12.0..20.0).contains(&avg_v), "avg vertices {avg_v}");
    }

    #[test]
    fn protein_like_is_denser_and_label_poor() {
        let a = GraphConfig::aids_like(40).generate();
        let p = GraphConfig::protein_like(40).generate();
        let density = |gs: &[Graph]| {
            gs.iter()
                .map(|g| g.num_edges() as f64 / g.num_vertices() as f64)
                .sum::<f64>()
                / gs.len() as f64
        };
        assert!(density(&p) > density(&a));
        let distinct_vlabels = |gs: &[Graph]| {
            let mut s = std::collections::HashSet::new();
            for g in gs {
                s.extend(g.vlabels().iter().copied());
            }
            s.len()
        };
        assert!(distinct_vlabels(&a) > distinct_vlabels(&p));
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = GraphConfig::protein_like(30);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn planted_variants_are_within_ged_budget() {
        let cfg = GraphConfig::aids_like(60);
        let data = cfg.generate();
        // Some pair must be within GED 4 (the planted edits).
        let mut found = false;
        'outer: for i in 0..data.len() {
            for j in i + 1..data.len() {
                if ged_within(&data[i], &data[j], 4).is_some() {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected planted edit variants within τ = 4");
    }
}
