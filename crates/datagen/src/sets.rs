//! Zipfian token sets (Enron-like / DBLP-like).
//!
//! Token use in text is heavily skewed; prefix filtering exploits exactly
//! that skew (rare tokens make selective prefixes). Sets draw tokens from
//! a Zipf universe, sizes follow a lognormal around the dataset's average
//! (Enron ≈ 142 tokens, DBLP ≈ 14), and a fraction of records are planted
//! near-duplicates of earlier records (a few tokens substituted) so that
//! Jaccard queries at τ ∈ [0.7, 0.95] have non-empty results.

use crate::rng;
use crate::zipf::Zipf;
use rand::Rng;

/// Configuration for the token-set generator.
#[derive(Clone, Debug)]
pub struct SetConfig {
    /// Number of records.
    pub count: usize,
    /// Average set size.
    pub avg_size: usize,
    /// Token universe size.
    pub universe: usize,
    /// Zipf exponent of token frequencies.
    pub zipf_s: f64,
    /// Fraction of records that are mutated copies of earlier records.
    pub dup_frac: f64,
    /// Fraction of a duplicated record's tokens that are substituted.
    pub mutate_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SetConfig {
    /// Enron-like: long sets (avg ≈ 142 tokens) over a large universe.
    pub fn enron_like(count: usize) -> Self {
        SetConfig {
            count,
            avg_size: 142,
            universe: 20_000,
            zipf_s: 0.9,
            dup_frac: 0.35,
            mutate_frac: 0.06,
            seed: 0x456e_726f,
        }
    }

    /// DBLP-like: short sets (avg ≈ 14 tokens).
    pub fn dblp_like(count: usize) -> Self {
        SetConfig {
            count,
            avg_size: 14,
            universe: 5_000,
            zipf_s: 0.8,
            dup_frac: 0.35,
            mutate_frac: 0.1,
            seed: 0x4442_4c50,
        }
    }

    /// Generates raw token sets (deduplicated within each record; feed to
    /// `setsim::Collection::new`).
    pub fn generate(&self) -> Vec<Vec<u32>> {
        assert!(self.count > 0 && self.avg_size >= 2 && self.universe > self.avg_size);
        let mut r = rng(self.seed);
        let zipf = Zipf::new(self.universe, self.zipf_s);
        let mut out: Vec<Vec<u32>> = Vec::with_capacity(self.count);
        for i in 0..self.count {
            if i > 0 && r.gen::<f64>() < self.dup_frac {
                // Mutated copy of a recent record.
                let src = &out[r.gen_range(0..i)];
                let mut copy = src.clone();
                let edits = ((copy.len() as f64 * self.mutate_frac).ceil() as usize).max(1);
                for _ in 0..edits {
                    if copy.is_empty() {
                        break;
                    }
                    let pos = r.gen_range(0..copy.len());
                    copy[pos] = zipf.sample(&mut r) as u32;
                }
                copy.sort_unstable();
                copy.dedup();
                out.push(copy);
            } else {
                // Lognormal-ish size around the average.
                let factor = (r.gen::<f64>() + r.gen::<f64>() + r.gen::<f64>()) * 2.0 / 3.0;
                let size = ((self.avg_size as f64 * (0.4 + factor)).round() as usize).max(2);
                let mut s: Vec<u32> = Vec::with_capacity(size);
                while s.len() < size {
                    s.push(zipf.sample(&mut r) as u32);
                    s.sort_unstable();
                    s.dedup();
                }
                out.push(s);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_and_rough_sizes() {
        let cfg = SetConfig::dblp_like(300);
        let data = cfg.generate();
        assert_eq!(data.len(), 300);
        let avg: f64 = data.iter().map(|s| s.len() as f64).sum::<f64>() / 300.0;
        assert!((8.0..22.0).contains(&avg), "avg size {avg}");
        for s in &data {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted+deduped");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SetConfig::enron_like(60);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn near_duplicates_exist() {
        let cfg = SetConfig::dblp_like(300);
        let data = cfg.generate();
        // At least one pair with Jaccard ≥ 0.7.
        let jac = |a: &[u32], b: &[u32]| {
            let inter = a.iter().filter(|t| b.binary_search(t).is_ok()).count();
            inter as f64 / (a.len() + b.len() - inter) as f64
        };
        let mut found = false;
        'outer: for i in 0..data.len() {
            for j in i + 1..data.len() {
                if jac(&data[i], &data[j]) >= 0.7 {
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "expected planted near-duplicate pairs");
    }

    #[test]
    fn token_frequencies_are_skewed() {
        let cfg = SetConfig::enron_like(100);
        let data = cfg.generate();
        let mut counts = std::collections::HashMap::new();
        for s in &data {
            for &t in s {
                *counts.entry(t).or_insert(0usize) += 1;
            }
        }
        let max = *counts.values().max().unwrap();
        let distinct = counts.len();
        // The hottest token must appear far more often than average.
        let avg = counts.values().sum::<usize>() as f64 / distinct as f64;
        assert!(max as f64 > 5.0 * avg, "max {max}, avg {avg}");
    }
}
