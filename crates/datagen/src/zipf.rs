//! Exact Zipf sampling by inverse CDF over a precomputed cumulative
//! table. The `rand_distr` crate is outside the allowed dependency set;
//! at the universe sizes used here (≤ ~10⁵) the table approach is exact,
//! simple, and fast (one binary search per draw).

use rand::Rng;

/// A Zipf(`n`, `s`) distribution over `0..n` (element `k` has weight
/// `1/(k+1)^s`).
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "empty support");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and non-negative"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Zipf { cumulative }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one value in `0..n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty support");
        let u: f64 = rng.gen::<f64>() * total;
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.n() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 1.1);
        let mut r = rng(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut r) < 100);
        }
    }

    #[test]
    fn skew_favors_small_values() {
        let z = Zipf::new(1000, 1.2);
        let mut r = rng(2);
        let mut low = 0usize;
        for _ in 0..10_000 {
            if z.sample(&mut r) < 10 {
                low += 1;
            }
        }
        // With s = 1.2 over 1000 values, the first 10 carry well over a
        // third of the mass.
        assert!(low > 3000, "low-rank draws: {low}");
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut r = rng(3);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((1600..2400).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = Zipf::new(50, 1.0);
        let a: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = rng(9);
            (0..20).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
