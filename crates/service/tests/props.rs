//! Property tests for the service layer: for every domain engine, a
//! [`ShardedIndex`] with K ∈ {1, 2, 3, 7} shards must return exactly the
//! same result set as the unsharded engine, and repeated runs of the
//! same batch must agree bit-for-bit.
//!
//! Candidate counts may legitimately differ across shard counts
//! (per-shard gram orders, cost models); the *result* sets may not —
//! every engine verifies exactly.

use proptest::prelude::*;

use pigeonring_datagen::{sample_query_ids, GraphConfig, SetConfig, StringConfig, VectorConfig};
use pigeonring_editdist::{EditParams, GramOrder, QGramCollection, RingEdit};
use pigeonring_graph::{Graph, GraphParams, RingGraph};
use pigeonring_hamming::{AllocationStrategy, BitVector, HammingParams, RingHamming};
use pigeonring_service::ShardedIndex;
use pigeonring_setsim::{Collection, RingSetSim, SetParams, Threshold};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn sharded_hamming_matches_unsharded(seed in 0u64..1_000, tau in 8u32..32) {
        // m = 16 over 256 dims keeps the per-part signature enumeration
        // cheap (the harness's own gist configuration).
        let mut cfg = VectorConfig::gist_like(300);
        cfg.seed = seed;
        let data = cfg.generate();
        let queries: Vec<BitVector> = sample_query_ids(data.len(), 6, seed)
            .into_iter()
            .map(|i| data[i].clone())
            .collect();
        let params = HammingParams { tau, l: 4 };

        let reference =
            ShardedIndex::build(data.clone(), 1, |shard| {
                RingHamming::build(shard, 16, AllocationStrategy::CostModel)
            });
        for k in SHARD_COUNTS {
            let index = ShardedIndex::build(data.clone(), k, |shard| {
                RingHamming::build(shard, 16, AllocationStrategy::CostModel)
            });
            let got = index.search_batch(&queries, &params, k);
            for (qi, q) in queries.iter().enumerate() {
                let expect = reference.search(q, &params);
                prop_assert_eq!(&got[qi].ids, &expect.ids, "k={} qi={}", k, qi);
            }
        }
    }

    #[test]
    fn sharded_editdist_matches_unsharded(seed in 0u64..1_000) {
        let mut cfg = StringConfig::imdb_like(200);
        cfg.seed = seed;
        let data = cfg.generate();
        let tau = 2usize;
        let queries: Vec<Vec<u8>> = sample_query_ids(data.len(), 6, seed)
            .into_iter()
            .map(|i| data[i].clone())
            .collect();
        let params = EditParams { l: 3 };

        let build = |shard: Vec<Vec<u8>>| {
            RingEdit::build(QGramCollection::build(shard, 2, GramOrder::Frequency), tau)
        };
        let reference = ShardedIndex::build(data.clone(), 1, build);
        for k in SHARD_COUNTS {
            let index = ShardedIndex::build(data.clone(), k, build);
            let got = index.search_batch(&queries, &params, k);
            for (qi, q) in queries.iter().enumerate() {
                let expect = reference.search(q, &params);
                prop_assert_eq!(&got[qi].ids, &expect.ids, "k={} qi={}", k, qi);
            }
        }
    }

    #[test]
    fn sharded_setsim_matches_unsharded(seed in 0u64..1_000, tenths in 7usize..9) {
        let mut cfg = SetConfig::dblp_like(250);
        cfg.seed = seed;
        let data = cfg.generate();
        let threshold = Threshold::jaccard(tenths as f64 / 10.0);
        let queries: Vec<Vec<u32>> = sample_query_ids(data.len(), 6, seed)
            .into_iter()
            .map(|i| data[i].clone())
            .collect();
        let params = SetParams { l: 2 };

        let build =
            |shard: Vec<Vec<u32>>| RingSetSim::build(Collection::new(shard), threshold, 5);
        let reference = ShardedIndex::build(data.clone(), 1, build);
        for k in SHARD_COUNTS {
            let index = ShardedIndex::build(data.clone(), k, build);
            let got = index.search_batch(&queries, &params, k);
            for (qi, q) in queries.iter().enumerate() {
                let expect = reference.search(q, &params);
                prop_assert_eq!(&got[qi].ids, &expect.ids, "k={} qi={}", k, qi);
            }
        }
    }

    #[test]
    fn sharded_graph_matches_unsharded(seed in 0u64..1_000) {
        let mut cfg = GraphConfig::aids_like(60);
        cfg.seed = seed;
        let data = cfg.generate();
        let tau = 3usize;
        let queries: Vec<Graph> = sample_query_ids(data.len(), 4, seed)
            .into_iter()
            .map(|i| data[i].clone())
            .collect();
        let params = GraphParams { l: tau };

        let build = |shard: Vec<Graph>| RingGraph::build(shard, tau);
        let reference = ShardedIndex::build(data.clone(), 1, build);
        for k in SHARD_COUNTS {
            let index = ShardedIndex::build(data.clone(), k, build);
            let got = index.search_batch(&queries, &params, k);
            for (qi, q) in queries.iter().enumerate() {
                let expect = reference.search(q, &params);
                prop_assert_eq!(&got[qi].ids, &expect.ids, "k={} qi={}", k, qi);
            }
        }
    }

    #[test]
    fn batches_are_deterministic(seed in 0u64..1_000) {
        // Two runs of the same batch over a multi-threaded shard pool
        // must agree bit-for-bit — result ids AND aggregated stats.
        // m = 32 over 512 dims (the harness's sift configuration) keeps
        // per-part thresholds — and hence signature enumeration — small.
        let mut cfg = VectorConfig::sift_like(300);
        cfg.seed = seed;
        let data = cfg.generate();
        let queries: Vec<BitVector> = sample_query_ids(data.len(), 8, seed)
            .into_iter()
            .map(|i| data[i].clone())
            .collect();
        let params = HammingParams { tau: 64, l: 3 };
        let index = ShardedIndex::build(data, 3, |shard| {
            RingHamming::build(shard, 32, AllocationStrategy::Even)
        });
        let run1 = index.search_batch(&queries, &params, 3);
        let run2 = index.search_batch(&queries, &params, 3);
        for qi in 0..queries.len() {
            prop_assert_eq!(&run1[qi].ids, &run2[qi].ids, "qi={}", qi);
            prop_assert_eq!(run1[qi].stats, run2[qi].stats, "qi={}", qi);
        }
    }
}
