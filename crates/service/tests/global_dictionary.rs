//! Global-dictionary (plan-once) vs legacy per-shard-dictionary builds.
//!
//! Two properties are pinned here:
//!
//! 1. **Result invariance** — for editdist and setsim, the legacy
//!    per-shard-dictionary build and the dictionary-first
//!    [`ShardedIndex::build_global`] build return bit-identical result
//!    sets (equal [`ResultHasher`] fingerprints) for every shard count
//!    K ∈ {1, 2, 3, 7}. Verification is exact, so the build path can
//!    shift candidate counts but never results.
//!
//! 2. **Resharding determinism** (the `GramOrder::Frequency` regression)
//!    — a per-shard frequency order makes prefix/pivotal selection — and
//!    hence per-shard candidate statistics — depend on how records were
//!    partitioned: the same query set yields *different* aggregate
//!    filter work at different K. With one corpus-wide dictionary the
//!    global order is partition-independent, so aggregate candidate
//!    statistics are exactly equal for every K.

use std::sync::Arc;

use proptest::prelude::*;

use pigeonring_datagen::{sample_query_ids, SetConfig, StringConfig};
use pigeonring_editdist::{
    EditParams, EditStats, GramDictionary, GramOrder, QGramCollection, RingEdit,
};
use pigeonring_service::{ResultHasher, ShardedIndex};
use pigeonring_setsim::{Collection, RingSetSim, SetParams, SetStats, Threshold, TokenDictionary};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];
const TAU: usize = 2;
const KAPPA: usize = 2;

fn edit_legacy(data: &[Vec<u8>], k: usize) -> ShardedIndex<RingEdit> {
    ShardedIndex::build(data.to_vec(), k, |shard| {
        RingEdit::build(
            QGramCollection::build(shard, KAPPA, GramOrder::Frequency),
            TAU,
        )
    })
}

fn edit_global(data: &[Vec<u8>], k: usize) -> ShardedIndex<RingEdit> {
    ShardedIndex::build_global(
        data.to_vec(),
        k,
        |corpus| Arc::new(GramDictionary::build(corpus, KAPPA, GramOrder::Frequency)),
        |dict, shard| {
            RingEdit::build(
                QGramCollection::with_dictionary(shard, Arc::clone(dict)),
                TAU,
            )
        },
    )
}

fn set_legacy(data: &[Vec<u32>], k: usize, t: Threshold) -> ShardedIndex<RingSetSim> {
    ShardedIndex::build(data.to_vec(), k, move |shard| {
        RingSetSim::build(Collection::new(shard), t, 5)
    })
}

fn set_global(data: &[Vec<u32>], k: usize, t: Threshold) -> ShardedIndex<RingSetSim> {
    ShardedIndex::build_global(
        data.to_vec(),
        k,
        |corpus| Arc::new(TokenDictionary::build(corpus)),
        move |dict, shard| {
            RingSetSim::build(Collection::with_dictionary(shard, Arc::clone(dict)), t, 5)
        },
    )
}

/// Fingerprint of a whole batch's result ids on `index`.
fn batch_hash<E: pigeonring_service::SearchEngine>(
    index: &ShardedIndex<E>,
    queries: &[E::Query],
    params: &E::Params,
    threads: usize,
) -> u64 {
    let mut hasher = ResultHasher::new();
    for res in index.search_batch(queries, params, threads) {
        hasher.push(&res.ids);
    }
    hasher.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn editdist_result_hash_equal_legacy_vs_global(seed in 0u64..1_000) {
        let mut cfg = StringConfig::imdb_like(200);
        cfg.seed = seed;
        let data = cfg.generate();
        let queries: Vec<Vec<u8>> = sample_query_ids(data.len(), 6, seed)
            .into_iter()
            .map(|i| data[i].clone())
            .collect();
        let params = EditParams { l: 3 };
        let reference = batch_hash(&edit_legacy(&data, 1), &queries, &params, 1);
        for k in SHARD_COUNTS {
            let legacy = batch_hash(&edit_legacy(&data, k), &queries, &params, k);
            let global = batch_hash(&edit_global(&data, k), &queries, &params, k);
            prop_assert_eq!(legacy, reference, "legacy k={}", k);
            prop_assert_eq!(global, reference, "global k={}", k);
        }
    }

    #[test]
    fn setsim_result_hash_equal_legacy_vs_global(seed in 0u64..1_000, tenths in 7usize..9) {
        let mut cfg = SetConfig::dblp_like(250);
        cfg.seed = seed;
        let data = cfg.generate();
        let t = Threshold::jaccard(tenths as f64 / 10.0);
        let queries: Vec<Vec<u32>> = sample_query_ids(data.len(), 6, seed)
            .into_iter()
            .map(|i| data[i].clone())
            .collect();
        let params = SetParams { l: 2 };
        let reference = batch_hash(&set_legacy(&data, 1, t), &queries, &params, 1);
        for k in SHARD_COUNTS {
            let legacy = batch_hash(&set_legacy(&data, k, t), &queries, &params, k);
            let global = batch_hash(&set_global(&data, k, t), &queries, &params, k);
            prop_assert_eq!(legacy, reference, "legacy k={}", k);
            prop_assert_eq!(global, reference, "global k={}", k);
        }
    }
}

/// Aggregate editdist filter statistics over a batch on `index`.
fn edit_agg(index: &ShardedIndex<RingEdit>, queries: &[Vec<u8>]) -> EditStats {
    let mut agg = EditStats::default();
    for res in index.search_batch(queries, &EditParams { l: 3 }, 2) {
        agg.merge(&res.stats);
    }
    agg
}

/// Regression (ISSUE 5 satellite): `GramOrder::Frequency` built per
/// shard yields shard-dependent prefix selection — the same queries do
/// different filter work at different shard counts. The global
/// dictionary makes per-shard candidate statistics exactly deterministic
/// under resharding.
#[test]
fn global_dictionary_makes_candidate_stats_resharding_invariant() {
    let data = StringConfig::imdb_like(300).generate();
    let queries: Vec<Vec<u8>> = sample_query_ids(data.len(), 10, 5)
        .into_iter()
        .map(|i| data[i].clone())
        .collect();

    // Global dictionary: candidate generation is partition-independent,
    // so every aggregate partition-independent counter agrees across K.
    let baseline = edit_agg(&edit_global(&data, 1), &queries);
    for k in SHARD_COUNTS {
        let agg = edit_agg(&edit_global(&data, k), &queries);
        assert_eq!(agg.candidates, baseline.candidates, "candidates k={k}");
        assert_eq!(agg.cand1, baseline.cand1, "cand1 k={k}");
        assert_eq!(
            agg.postings_scanned, baseline.postings_scanned,
            "postings k={k}"
        );
        assert_eq!(agg.results, baseline.results, "results k={k}");
    }

    // Legacy per-shard dictionaries: the frequency order (and hence
    // prefix/pivotal selection) depends on the partition, so the same
    // queries do different filter work at different K. Results still
    // match (exact verification), but candidate statistics drift — the
    // defect the global dictionary fixes.
    let legacy_cand1: Vec<usize> = SHARD_COUNTS
        .iter()
        .map(|&k| edit_agg(&edit_legacy(&data, k), &queries).cand1)
        .collect();
    assert!(
        legacy_cand1.windows(2).any(|w| w[0] != w[1]),
        "expected per-shard frequency orders to shift cand1 across shard \
         counts, got {legacy_cand1:?} — if this ever becomes invariant the \
         legacy path has silently changed"
    );
}

/// The same resharding-determinism property for setsim: one global token
/// rank space makes signature enumeration and probing
/// partition-independent.
#[test]
fn global_token_dictionary_makes_set_stats_resharding_invariant() {
    let data = SetConfig::dblp_like(300).generate();
    let t = Threshold::jaccard(0.8);
    let queries: Vec<Vec<u32>> = sample_query_ids(data.len(), 10, 4)
        .into_iter()
        .map(|i| data[i].clone())
        .collect();
    let agg = |index: &ShardedIndex<RingSetSim>| -> SetStats {
        let mut agg = SetStats::default();
        for res in index.search_batch(&queries, &SetParams { l: 2 }, 2) {
            agg.merge(&res.stats);
        }
        agg
    };
    let baseline = agg(&set_global(&data, 1, t));
    for k in SHARD_COUNTS {
        let got = agg(&set_global(&data, k, t));
        assert_eq!(got.candidates, baseline.candidates, "candidates k={k}");
        assert_eq!(got.viable_boxes, baseline.viable_boxes, "viable k={k}");
        assert_eq!(got.results, baseline.results, "results k={k}");
        // Plan-once: the signature enumeration is counted once per query
        // regardless of K, so this is flat too (legacy counted it once
        // per shard per query).
        assert_eq!(got.sig_probes, baseline.sig_probes, "sig_probes k={k}");
    }
    // Legacy per-shard rank spaces re-enumerate per shard: sig_probes
    // scales with the (non-empty) shard count instead of staying flat.
    let legacy_probes: Vec<usize> = SHARD_COUNTS
        .iter()
        .map(|&k| agg(&set_legacy(&data, k, t)).sig_probes)
        .collect();
    assert!(
        legacy_probes.windows(2).any(|w| w[0] != w[1]),
        "expected legacy per-shard enumeration to scale with K, got {legacy_probes:?}"
    );
}
