//! A persistent, channel-fed worker pool with per-worker long-lived
//! scratch.
//!
//! [`ShardedIndex::search_batch`] used to spawn scoped threads for every
//! batch — fine at batch ≥ 16, wasteful for the tiny batches a network
//! frontend produces (the ROADMAP "persistent worker pool" item). A
//! [`WorkerPool`] spawns its threads once; jobs are boxed closures fed
//! through a bounded-by-nothing internal queue (admission control is the
//! *caller's* concern — see `pigeonring-server`; a live pool never
//! rejects work, only a [shut-down](WorkerPool::shutdown) one does, and
//! then visibly via [`JobRejected`]).
//!
//! Each worker owns a [`ScratchStore`]: a type-erased map from scratch
//! type to one long-lived instance. A job asks for its engine's scratch
//! type with [`ScratchStore::get_mut`]; the first job of that type on a
//! worker allocates it, every later job — across batches, across
//! [`ShardedIndex`] instances, across *domains* — reuses the warm
//! buffers. This is exactly the property the scoped-thread version had
//! within one batch, extended to the lifetime of the pool.
//!
//! [`ShardedIndex`]: crate::sharded::ShardedIndex
//! [`ShardedIndex::search_batch`]: crate::sharded::ShardedIndex::search_batch

use std::any::{Any, TypeId};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

use pigeonring_telemetry::{Counter, Gauge, Histogram, MetricsRegistry};

/// Telemetry handles for a [`WorkerPool`], attached once via
/// [`WorkerPool::attach_metrics`]. All fields are shared registry
/// handles, so a snapshot of the registry sees the live values.
#[derive(Clone)]
pub struct PoolMetrics {
    /// Total jobs submitted.
    pub jobs: Arc<Counter>,
    /// µs each job spent queued before a worker picked it up.
    pub queue_wait_us: Arc<Histogram>,
    /// Jobs currently waiting in the queue.
    pub queued: Arc<Gauge>,
    /// Workers currently executing a job.
    pub busy_workers: Arc<Gauge>,
}

impl PoolMetrics {
    /// Registers the pool metric family (`pool.*`) on `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        PoolMetrics {
            jobs: registry.counter("pool.jobs"),
            queue_wait_us: registry.histogram("pool.queue_wait_us"),
            queued: registry.gauge("pool.queued"),
            busy_workers: registry.gauge("pool.busy_workers"),
        }
    }
}

/// Decrements a gauge on drop, so a panicking job cannot leave
/// `busy_workers` permanently elevated.
struct GaugeGuard(Arc<Gauge>);

impl GaugeGuard {
    fn enter(gauge: &Arc<Gauge>) -> Self {
        gauge.inc();
        GaugeGuard(Arc::clone(gauge))
    }
}

impl Drop for GaugeGuard {
    fn drop(&mut self) {
        self.0.dec();
    }
}

/// Returned by [`WorkerPool::submit`] when the pool has been shut down:
/// the job was **not** enqueued and will never run. Callers either
/// propagate this as a typed failure (the server answers the client with
/// an `Internal` error) or treat it as a bug and panic — silently
/// dropping work is not an option.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobRejected;

impl fmt::Display for JobRejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("worker pool is shut down; job rejected")
    }
}

impl std::error::Error for JobRejected {}

/// Per-worker, long-lived scratch storage: one instance per scratch
/// *type*, allocated on first use and reused for every later job.
#[derive(Default)]
pub struct ScratchStore {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl ScratchStore {
    /// The worker's long-lived scratch of type `S`, created with
    /// `S::default()` on first request.
    pub fn get_mut<S: Default + Send + 'static>(&mut self) -> &mut S {
        self.slots
            .entry(TypeId::of::<S>())
            .or_insert_with(|| Box::new(S::default()))
            .downcast_mut::<S>()
            // lint: allow(panic) — the entry is keyed by TypeId::of::<S>, so it
            // always holds an S
            .expect("slot keyed by TypeId::of::<S> holds an S")
    }

    /// Drops every stored scratch (used after a job panic, when a
    /// half-updated scratch can no longer be trusted).
    pub fn clear(&mut self) {
        self.slots.clear();
    }
}

type Job = Box<dyn FnOnce(&mut ScratchStore) + Send>;

/// Locks the pool mutex, recovering from poison: the guarded state (a
/// queue of owned jobs plus the shutdown flag) is consistent after any
/// partial update, and a job panic is already survived by the workers,
/// so submission must survive it too.
fn lock_recover<'a>(m: &'a Mutex<PoolState>) -> std::sync::MutexGuard<'a, PoolState> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled when a job is queued or shutdown begins.
    available: Condvar,
}

/// A fixed-size pool of persistent worker threads.
///
/// Dropping the pool drains the remaining jobs (workers finish whatever
/// is queued) and joins every thread.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    metrics: OnceLock<PoolMetrics>,
}

impl WorkerPool {
    /// Spawns `workers.max(1)` persistent worker threads.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pigeonring-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // lint: allow(panic) — spawn failure at pool construction is
                    // an unrecoverable resource exhaustion; fail loudly at startup
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            metrics: OnceLock::new(),
        }
    }

    /// Spawns one worker per core visible to this process
    /// ([`crate::machine::cores`]) — the core-aware default for servers
    /// and benchmarks that did not pass an explicit thread count.
    pub fn auto() -> Self {
        WorkerPool::new(crate::machine::cores())
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Attaches telemetry to this pool: later submissions record job
    /// counts, queue-wait latency, queue depth, and busy-worker
    /// utilization. First attach wins; attaching is optional and an
    /// un-instrumented pool pays zero overhead (one `OnceLock` load
    /// per submit).
    pub fn attach_metrics(&self, metrics: PoolMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// Queues one job. Jobs run in submission order (pulled FIFO by
    /// whichever worker frees up first); a live pool never drops or
    /// reorders work. After [`WorkerPool::shutdown`] (or mid-`Drop`) the
    /// job is rejected with [`JobRejected`] instead of being silently
    /// enqueued on a pool whose workers may already be gone.
    pub fn submit(
        &self,
        job: impl FnOnce(&mut ScratchStore) + Send + 'static,
    ) -> Result<(), JobRejected> {
        // Instrumented pools wrap the job so the worker accounts
        // queue-wait and utilization; the wrapper is built before the
        // lock so the critical section stays one push, and the
        // counters only move after the push succeeds (a rejected job
        // must not leave `queued` elevated).
        let metrics = self.metrics.get().cloned();
        let job: Job = match &metrics {
            Some(m) => {
                let m = m.clone();
                let submitted = Instant::now();
                Box::new(move |scratch: &mut ScratchStore| {
                    m.queued.dec();
                    m.queue_wait_us
                        .record(submitted.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    let _busy = GaugeGuard::enter(&m.busy_workers);
                    job(scratch);
                })
            }
            None => Box::new(job),
        };
        let mut state = lock_recover(&self.shared.state);
        if state.shutdown {
            return Err(JobRejected);
        }
        state.jobs.push_back(job);
        drop(state);
        if let Some(m) = &metrics {
            m.jobs.inc();
            m.queued.inc();
        }
        self.shared.available.notify_one();
        Ok(())
    }

    /// Begins a graceful shutdown: already-queued jobs still run, but
    /// every later [`WorkerPool::submit`] returns [`JobRejected`].
    /// Workers exit once the queue drains; [`Drop`] joins them.
    pub fn shutdown(&self) {
        lock_recover(&self.shared.state).shutdown = true;
        self.shared.available.notify_all();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a job (impossible today —
            // job panics are caught) would surface here; propagate.
            if handle.join().is_err() {
                // Already unwinding? Don't double-panic out of drop.
                if !std::thread::panicking() {
                    // lint: allow(panic) — a worker dying outside a job is a pool
                    // bug; propagating the panic is the only honest signal
                    panic!("worker thread panicked outside a job");
                }
            }
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut scratch = ScratchStore::default();
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared
                    .available
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // A panicking job must not kill the worker (later jobs would
        // deadlock waiting for a thread that is gone). The caller
        // observes the panic through its result channel hanging up; the
        // worker survives with a fresh scratch (the old one may be
        // half-updated).
        if catch_unwind(AssertUnwindSafe(|| job(&mut scratch))).is_err() {
            scratch.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_all_jobs() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(()).expect("receiver alive");
            })
            .expect("pool accepts jobs");
        }
        for _ in 0..50 {
            rx.recv().expect("job completed");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn scratch_persists_across_jobs_on_a_worker() {
        // One worker ⇒ every job sees the same store; a counter stored
        // in scratch must accumulate across jobs.
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        for _ in 0..10 {
            let tx = tx.clone();
            pool.submit(move |scratch| {
                let n: &mut usize = scratch.get_mut();
                *n += 1;
                tx.send(*n).expect("receiver alive");
            })
            .expect("pool accepts jobs");
        }
        let seen: Vec<usize> = (0..10).map(|_| rx.recv().expect("job ran")).collect();
        assert_eq!(seen, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move |_| tx.send(7).expect("receiver alive"))
            .expect("pool accepts jobs");
        assert_eq!(rx.recv().expect("job ran"), 7);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            pool.submit(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .expect("pool accepts jobs");
        }
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        pool.submit(|_| panic!("job panic"))
            .expect("pool accepts jobs");
        let (tx, rx) = mpsc::channel();
        pool.submit(move |_| tx.send(1).expect("receiver alive"))
            .expect("pool accepts jobs");
        assert_eq!(rx.recv().expect("worker survived the panic"), 1);
    }

    #[test]
    fn submit_after_shutdown_is_rejected_not_silently_enqueued() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move |_| tx.send(1).expect("receiver alive"))
            .expect("live pool accepts jobs");
        assert_eq!(rx.recv().expect("job ran"), 1);
        pool.shutdown();
        let ran = Arc::new(AtomicUsize::new(0));
        let job_ran = Arc::clone(&ran);
        assert_eq!(
            pool.submit(move |_| {
                job_ran.fetch_add(1, Ordering::SeqCst);
            }),
            Err(JobRejected),
            "shut-down pool must reject, not enqueue"
        );
        drop(pool); // joins workers; the rejected job must never run
        assert_eq!(ran.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn shutdown_drains_already_queued_jobs() {
        let pool = WorkerPool::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.submit(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            })
            .expect("pool accepts jobs");
        }
        pool.shutdown();
        drop(pool);
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scratch_store_is_typed() {
        let mut store = ScratchStore::default();
        *store.get_mut::<usize>() = 5;
        *store.get_mut::<String>() = "hi".into();
        assert_eq!(*store.get_mut::<usize>(), 5);
        assert_eq!(store.get_mut::<String>(), "hi");
        store.clear();
        assert_eq!(*store.get_mut::<usize>(), 0);
    }
}
