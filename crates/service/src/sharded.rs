//! Hash-partitioned sharding over a persistent [`WorkerPool`].
//!
//! [`ShardedIndex::build`] splits the record set into `N` shards by
//! hashing global record ids (deterministic: the same records and shard
//! count always produce the same partition), builds one engine per
//! non-empty shard, and remembers each shard's global ids. At query time
//! [`ShardedIndex::search_batch`] fans the batch out over a worker pool —
//! one job per shard, each worker reusing its long-lived
//! [`ScratchStore`](crate::pool::ScratchStore) scratch, so buffers stay
//! warm across shards *and* batches — then merges per-shard result sets
//! back into ascending *global* id order and aggregates statistics with
//! [`MergeStats::merge`].
//!
//! ## Plan once, execute per shard
//!
//! [`ShardedIndex::build_global`] is the **dictionary-first** build path:
//! a caller-supplied closure derives one shared dictionary (gram interning
//! table, token rank space, …) from the *whole* record set, and every
//! shard engine is built against it. Because all shards then agree on the
//! query-side structures, each query's [`SearchEngine::Plan`] is computed
//! **exactly once** — by [`ShardedIndex::plan_batch`], against a
//! long-lived planner scratch — and handed read-only to every shard
//! worker, so query-side preprocessing no longer scales with the shard
//! count. Plan-time statistics ([`SearchEngine::plan_stats`]) are folded
//! in once per query. The legacy [`ShardedIndex::build`] keeps per-shard
//! dictionaries; its shards plan for themselves inside
//! [`SearchEngine::search_into`], exactly as before the split.
//!
//! The pool is persistent (the ROADMAP "persistent worker pool" item):
//! `search_batch` lazily spawns one sized to its `threads` argument and
//! keeps it for later batches, while [`ShardedIndex::search_batch_on`]
//! runs on a caller-owned [`WorkerPool`] — the path `pigeonring-server`
//! uses so every index shares one pool behind the network boundary.
//! Merging is by fixed shard order regardless of job completion order,
//! so results are deterministic for any worker count.
//!
//! Every domain engine verifies its candidates exactly, so sharding —
//! and the choice between the legacy and dictionary-first build paths —
//! cannot change the result set: the union over shards of "records within
//! the threshold" is exactly the unsharded answer, independent of how
//! data-dependent build decisions (gram frequency orders, cost models)
//! shift per-shard candidate counts.

use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::engine::{MergeStats, SearchEngine};
use crate::pool::{ScratchStore, WorkerPool};
use pigeonring_core::fxhash::FxHasher;
use pigeonring_telemetry::trace::{kind, ShardTrace};
use pigeonring_telemetry::{Histogram, MetricsRegistry, SpanHandle};

/// Telemetry handles for one [`ShardedIndex`], attached via
/// [`ShardedIndex::attach_metrics`]. Recorded on the shared-pool query
/// path ([`ShardedIndex::search_batch_on`] — the path the server uses)
/// and in [`ShardedIndex::plan_batch`].
#[derive(Clone)]
pub struct IndexMetrics {
    /// µs spent planning a batch (one observation per `plan_batch`).
    pub plan_us: Arc<Histogram>,
    /// µs spent executing a batch end to end (fan-out + merge).
    pub search_us: Arc<Histogram>,
    /// Queries per executed batch.
    pub batch_size: Arc<Histogram>,
}

impl IndexMetrics {
    /// Registers the index metric family under `prefix` (e.g.
    /// `index.hamming` → `index.hamming.plan_us`, `.search_us`,
    /// `.batch_size`).
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        IndexMetrics {
            // lint: metric(index.{domain}.plan_us)
            plan_us: registry.histogram(&format!("{prefix}.plan_us")),
            // lint: metric(index.{domain}.search_us)
            search_us: registry.histogram(&format!("{prefix}.search_us")),
            // lint: metric(index.{domain}.batch_size)
            batch_size: registry.histogram(&format!("{prefix}.batch_size")),
        }
    }
}

/// Elapsed µs since `start`, saturating into u64.
fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros().min(u64::MAX as u128) as u64
}

/// Brackets one shard's execution with a `shard` span per traced
/// query, buffered locally and drained with a single
/// [`TraceCollector::extend`](pigeonring_telemetry::TraceCollector::extend)
/// — the spans reach the ring *before* the shard's results are
/// reported, so a trace assembled right after the batch completes is
/// never missing its shard spans.
fn shard_spans<T>(trace: Option<&ShardTrace>, si: usize, f: impl FnOnce() -> T) -> T {
    let handles: Option<Vec<SpanHandle>> = trace.map(|t| {
        t.targets
            .iter()
            .map(|&(tid, parent)| t.collector.child_of(tid, parent))
            .collect()
    });
    let out = f();
    if let (Some(t), Some(handles)) = (trace, handles) {
        let buf = handles
            .into_iter()
            .map(|h| {
                t.collector
                    .finish(h, kind::SHARD, "", vec![("shard", si as u64)])
            })
            .collect();
        t.collector.extend(buf);
    }
    out
}

/// Deterministic shard assignment for global record id `id` among
/// `shards` shards (FxHash of the id).
#[inline]
pub fn shard_of(id: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let h = BuildHasherDefault::<FxHasher>::default().hash_one(id);
    (h % shards as u64) as usize
}

/// One query's merged answer: ascending global record ids plus the
/// statistics aggregated over all shards.
#[derive(Clone, Debug)]
pub struct SearchResult<S> {
    /// Global record ids within the threshold, ascending.
    pub ids: Vec<u32>,
    /// Statistics summed (saturating) over every shard.
    pub stats: S,
}

/// One shard's answers for a whole batch: `(global ids, stats)` per
/// query, in batch order.
type ShardBatch<S> = Vec<(Vec<u32>, S)>;

struct Shard<E> {
    engine: E,
    /// Global ids of this shard's records, ascending (shard-local id `i`
    /// is the record `ids[i]` of the original collection).
    ids: Vec<u32>,
}

impl<E: SearchEngine> Shard<E> {
    /// Runs every query of `batch` against this shard (planning
    /// per query locally — the legacy path), translating shard-local ids
    /// to global ids.
    fn run_batch(
        &self,
        scratch: &mut E::Scratch,
        batch: &[E::Query],
        params: &E::Params,
    ) -> ShardBatch<E::Stats> {
        batch
            .iter()
            .map(|q| {
                let mut out = Vec::new();
                let stats = self.engine.search_into(scratch, q, params, &mut out);
                for id in &mut out {
                    // lint: allow(panic) — engines emit shard-local ids, which
                    // index the shard's own id table by construction
                    *id = self.ids[*id as usize];
                }
                (out, stats)
            })
            .collect()
    }

    /// Runs every query of `batch` against this shard with precomputed
    /// plans (`plans[i]` belongs to `batch[i]`), translating shard-local
    /// ids to global ids.
    fn run_batch_planned(
        &self,
        scratch: &mut E::Scratch,
        batch: &[E::Query],
        plans: &[Arc<E::Plan>],
        params: &E::Params,
    ) -> ShardBatch<E::Stats> {
        batch
            .iter()
            .zip(plans)
            .map(|(q, plan)| {
                let mut out = Vec::new();
                let stats = self
                    .engine
                    .search_planned(scratch, plan, q, params, &mut out);
                for id in &mut out {
                    // lint: allow(panic) — engines emit shard-local ids, which
                    // index the shard's own id table by construction
                    *id = self.ids[*id as usize];
                }
                (out, stats)
            })
            .collect()
    }
}

/// A hash-partitioned collection of engines answering queries as one
/// index.
pub struct ShardedIndex<E> {
    /// Shared so per-shard jobs on the persistent pool (which outlive
    /// any one `search_batch` stack frame) can hold the shards alive.
    shards: Arc<Vec<Shard<E>>>,
    requested_shards: usize,
    total: usize,
    /// Whether the shards were built dictionary-first
    /// ([`ShardedIndex::build_global`]): query plans are then
    /// shard-independent and computed once per query.
    plan_once: bool,
    /// Wall time spent building the shared dictionary (0 for the legacy
    /// per-shard-dictionary path).
    dict_build_ms: f64,
    /// Long-lived planner scratch for [`ShardedIndex::plan_batch`]:
    /// plan-side buffers (gram/token scratch vectors) are reused across
    /// queries and batches instead of being allocated per query — the
    /// same [`ScratchStore`] mechanism the pool workers use.
    planner: Mutex<ScratchStore>,
    /// Lazily-spawned interior pool for [`ShardedIndex::search_batch`];
    /// resized (respawned) when a call asks for a different thread
    /// count. Callers wanting to share one pool across indexes use
    /// [`ShardedIndex::search_batch_on`] instead.
    pool: Mutex<Option<WorkerPool>>,
    /// Optional telemetry (plan/search latency, batch sizes); attached
    /// once by the owning service, absent for bench/test builds.
    metrics: OnceLock<IndexMetrics>,
}

/// Hash-partitions `records`: returns per-shard `(global ids, records)`
/// pairs, skipping empty shards.
fn partition<R>(records: Vec<R>, shards: usize) -> Vec<(Vec<u32>, Vec<R>)> {
    let mut parts: Vec<(Vec<u32>, Vec<R>)> = (0..shards).map(|_| Default::default()).collect();
    for (id, record) in records.into_iter().enumerate() {
        let s = shard_of(id as u64, shards);
        // lint: allow(panic) — shard_of reduces modulo `shards`, the length
        let part = &mut parts[s];
        part.0.push(id as u32);
        part.1.push(record);
    }
    parts.retain(|(ids, _)| !ids.is_empty());
    parts
}

impl<E: SearchEngine> ShardedIndex<E> {
    /// Hash-partitions `records` into `shards` shards and builds one
    /// engine per non-empty shard via `build` (empty shards — possible
    /// for tiny collections — are skipped, since the domain engines
    /// reject empty datasets).
    ///
    /// This is the **legacy** build path: each shard derives its own
    /// dictionary (gram/token frequency order) from its records alone,
    /// so query plans are shard-local and each shard re-plans every
    /// query. Prefer [`ShardedIndex::build_global`] for engines with a
    /// dictionary.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build<R>(records: Vec<R>, shards: usize, build: impl Fn(Vec<R>) -> E) -> Self {
        assert!(shards > 0, "need at least one shard");
        let requested_shards = shards;
        let total = records.len();
        let shards = partition(records, shards)
            .into_iter()
            .map(|(ids, records)| Shard {
                engine: build(records),
                ids,
            })
            .collect();
        ShardedIndex {
            shards: Arc::new(shards),
            requested_shards,
            total,
            plan_once: false,
            dict_build_ms: 0.0,
            planner: Mutex::new(ScratchStore::default()),
            pool: Mutex::new(None),
            metrics: OnceLock::new(),
        }
    }

    /// The **dictionary-first** build path: `dictionary` derives one
    /// shared artifact (a gram interning table, a token rank space, …)
    /// from the *whole* record set, and `build` constructs each shard's
    /// engine against it. All shards then agree on every query-side
    /// structure, so the index plans each query exactly once
    /// ([`ShardedIndex::plan_batch`]) and hands the plan to every shard —
    /// query-side preprocessing stops scaling with the shard count, and
    /// per-shard candidate statistics become invariant under resharding.
    ///
    /// Engines without a dictionary (`Plan = ()`) gain nothing from
    /// this path — prefer the legacy [`ShardedIndex::build`] for them,
    /// since plan-once execution still pays one `Arc` per query.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build_global<R, D>(
        records: Vec<R>,
        shards: usize,
        dictionary: impl FnOnce(&[R]) -> D,
        build: impl Fn(&D, Vec<R>) -> E,
    ) -> Self {
        assert!(shards > 0, "need at least one shard");
        let requested_shards = shards;
        let total = records.len();
        let dict_start = Instant::now();
        let dict = dictionary(&records);
        let dict_build_ms = dict_start.elapsed().as_secs_f64() * 1e3;
        let shards = partition(records, shards)
            .into_iter()
            .map(|(ids, records)| Shard {
                engine: build(&dict, records),
                ids,
            })
            .collect();
        ShardedIndex {
            shards: Arc::new(shards),
            requested_shards,
            total,
            plan_once: true,
            dict_build_ms,
            planner: Mutex::new(ScratchStore::default()),
            pool: Mutex::new(None),
            metrics: OnceLock::new(),
        }
    }

    /// Attaches telemetry to this index (first attach wins). Recorded
    /// on the shared-pool query path and in
    /// [`ShardedIndex::plan_batch`]; an un-instrumented index pays one
    /// `OnceLock` load per batch.
    pub fn attach_metrics(&self, metrics: IndexMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// Number of non-empty shards actually built.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard count requested at build time (≥ [`Self::num_shards`]).
    pub fn requested_shards(&self) -> usize {
        self.requested_shards
    }

    /// Total number of records across all shards.
    pub fn num_records(&self) -> usize {
        self.total
    }

    /// Whether this index plans each query once and shares the plan
    /// across shards (the [`ShardedIndex::build_global`] path).
    pub fn plan_once(&self) -> bool {
        self.plan_once
    }

    /// Wall time spent building the shared dictionary, in milliseconds
    /// (0 for the legacy per-shard-dictionary path).
    pub fn dictionary_build_ms(&self) -> f64 {
        self.dict_build_ms
    }

    /// Computes every query's plan exactly once against the index's
    /// long-lived planner scratch. Returns `None` for legacy-built
    /// indexes (per-shard dictionaries make plans shard-dependent) and
    /// for empty indexes; callers then fall back to
    /// [`ShardedIndex::search_batch`]'s per-shard planning.
    ///
    /// Concurrent callers (the server's dispatcher threads) do not
    /// serialize here: the shared planner scratch is taken with
    /// `try_lock`, and a contended caller plans against a fresh local
    /// scratch instead of waiting out another batch's whole plan phase.
    pub fn plan_batch(&self, batch: &[E::Query]) -> Option<Vec<Arc<E::Plan>>> {
        if !self.plan_once {
            return None;
        }
        let shard0 = self.shards.first()?;
        // A poisoned planner scratch (a plan panicked mid-update) is treated
        // like contention: plan against a fresh local scratch instead.
        let mut guard = self.planner.try_lock().ok();
        let mut local: Option<E::Scratch> = None;
        let scratch: &mut E::Scratch = match guard.as_mut() {
            Some(store) => store.get_mut::<E::Scratch>(),
            None => local.insert(E::Scratch::default()),
        };
        let start = Instant::now();
        let plans = batch
            .iter()
            .map(|q| Arc::new(shard0.engine.plan(scratch, q)))
            .collect();
        if let Some(m) = self.metrics.get() {
            m.plan_us.record(elapsed_us(start));
        }
        Some(plans)
    }

    /// Answers a single query on the calling thread (all shards,
    /// serially, one scratch). On a [`ShardedIndex::build_global`] index
    /// the plan is computed once and reused by every shard, so the
    /// query-side preprocessing cost is flat in the shard count.
    ///
    /// Convenience path: shards usually differ in record count, so the
    /// shared scratch re-sizes on every shard transition. Hot callers
    /// should prefer [`ShardedIndex::search_batch`], which amortizes the
    /// resize across the whole batch (each worker serves entire shards).
    pub fn search(&self, query: &E::Query, params: &E::Params) -> SearchResult<E::Stats> {
        let mut scratch = E::Scratch::default();
        let mut merged = SearchResult {
            ids: Vec::new(),
            stats: E::Stats::default(),
        };
        let plan = if self.plan_once {
            self.shards
                .first()
                .map(|s0| Arc::new(s0.engine.plan(&mut scratch, query)))
        } else {
            None
        };
        for shard in self.shards.iter() {
            let mut res = match &plan {
                Some(p) => shard.run_batch_planned(
                    &mut scratch,
                    std::slice::from_ref(query),
                    std::slice::from_ref(p),
                    params,
                ),
                None => shard.run_batch(&mut scratch, std::slice::from_ref(query), params),
            };
            // lint: allow(panic) — run_batch returns one entry per query and
            // exactly one query was passed
            let (ids, stats) = res.pop().expect("one query in, one result out");
            merged.ids.extend(ids);
            merged.stats.merge(&stats);
        }
        if let Some(p) = &plan {
            // lint: allow(panic) — plan_batch returned Some, so shards is
            // non-empty
            let shard0 = self.shards.first().expect("plan implies a shard");
            merged.stats.merge(&shard0.engine.plan_stats(p));
        }
        merged.ids.sort_unstable();
        merged
    }

    /// Answers a batch of queries with up to `threads` worker threads
    /// from the index's interior persistent pool.
    ///
    /// On a [`ShardedIndex::build_global`] index every query is planned
    /// exactly once ([`ShardedIndex::plan_batch`]) and the plan shared
    /// by all shard jobs; legacy indexes plan per shard as before.
    ///
    /// The pool is spawned on the first parallel call and reused by
    /// every later batch (respawned only when `threads` changes), so
    /// steady-state batches pay zero thread-spawn cost and worker
    /// scratch stays warm across batches. Results are merged in fixed
    /// shard order and sorted, so the output is deterministic regardless
    /// of thread scheduling: two runs of the same batch agree
    /// bit-for-bit.
    ///
    /// Concurrent callers serialize on the interior pool; services
    /// multiplexing many indexes should share one explicit pool via
    /// [`ShardedIndex::search_batch_on`].
    pub fn search_batch(
        &self,
        batch: &[E::Query],
        params: &E::Params,
        threads: usize,
    ) -> Vec<SearchResult<E::Stats>> {
        match self.plan_batch(batch) {
            Some(plans) => self.search_batch_planned(batch, &plans, params, threads),
            None => {
                let ns = self.shards.len();
                let workers = threads.clamp(1, ns.max(1));
                if workers <= 1 || ns <= 1 {
                    return self.merge(batch.len(), self.run_serial(batch, params, None));
                }
                let per_shard =
                    self.with_interior_pool(workers, |pool| self.run_on(pool, batch, params, None));
                self.merge(batch.len(), per_shard)
            }
        }
    }

    /// [`ShardedIndex::search_batch`] with caller-provided plans
    /// (`plans[i]` belongs to `batch[i]`, from
    /// [`ShardedIndex::plan_batch`]). Lets parameter sweeps reuse one
    /// set of plans across several `params` values — plans are
    /// parameter-independent by the [`SearchEngine::Plan`] contract.
    ///
    /// # Panics
    /// Panics if `plans.len() != batch.len()`.
    pub fn search_batch_planned(
        &self,
        batch: &[E::Query],
        plans: &[Arc<E::Plan>],
        params: &E::Params,
        threads: usize,
    ) -> Vec<SearchResult<E::Stats>> {
        assert_eq!(batch.len(), plans.len(), "one plan per query");
        let ns = self.shards.len();
        let workers = threads.clamp(1, ns.max(1));
        let per_shard = if workers <= 1 || ns <= 1 {
            self.run_serial_planned(batch, plans, params, None)
        } else {
            self.with_interior_pool(workers, |pool| {
                self.run_on_planned(pool, batch, plans, params, None)
            })
        };
        self.merge_planned(batch.len(), per_shard, plans)
    }

    /// Answers a batch of queries on a caller-owned [`WorkerPool`]
    /// (shared across indexes — and across *domains*, since worker
    /// scratch is keyed by scratch type). Plans once per query on
    /// [`ShardedIndex::build_global`] indexes, exactly like
    /// [`ShardedIndex::search_batch`].
    ///
    /// Same determinism guarantee as [`ShardedIndex::search_batch`]:
    /// per-shard results are merged in fixed shard order and sorted.
    pub fn search_batch_on(
        &self,
        pool: &WorkerPool,
        batch: &[E::Query],
        params: &E::Params,
    ) -> Vec<SearchResult<E::Stats>> {
        self.search_batch_on_traced(pool, batch, params, None)
    }

    /// [`ShardedIndex::search_batch_on`] with per-request tracing: for
    /// every `(trace_id, parent span)` target in `trace`, the index
    /// emits a `plan` span bracketing the shared plan phase (plan-once
    /// indexes only), a `pool` span bracketing the whole fan-out
    /// window, and one `shard` child span per shard measured where the
    /// work runs (on the worker for the parallel path, on the calling
    /// thread for the serial fallback). `None` is the zero-cost
    /// untraced path — byte-identical behaviour to
    /// [`ShardedIndex::search_batch_on`].
    pub fn search_batch_on_traced(
        &self,
        pool: &WorkerPool,
        batch: &[E::Query],
        params: &E::Params,
        trace: Option<&ShardTrace>,
    ) -> Vec<SearchResult<E::Stats>> {
        let start = Instant::now();
        // One `plan` span per traced query, around the shared plan
        // phase (absent on legacy-built indexes, which re-plan inside
        // each shard).
        let plan_handles: Option<Vec<SpanHandle>> = match trace {
            Some(t) if self.plan_once && !self.shards.is_empty() => Some(
                t.targets
                    .iter()
                    .map(|&(tid, parent)| t.collector.child_of(tid, parent))
                    .collect(),
            ),
            _ => None,
        };
        let plans = self.plan_batch(batch);
        if let (Some(t), Some(handles)) = (trace, plan_handles) {
            let buf = handles
                .into_iter()
                .map(|h| {
                    t.collector
                        .finish(h, kind::PLAN, "", vec![("queries", batch.len() as u64)])
                })
                .collect();
            t.collector.extend(buf);
        }
        // One `pool` span per traced query bracketing execution; shard
        // spans parent under it, so the timeline shows fan-out window
        // vs. per-shard work.
        let exec = trace.map(|t| {
            let handles: Vec<SpanHandle> = t
                .targets
                .iter()
                .map(|&(tid, parent)| t.collector.child_of(tid, parent))
                .collect();
            let ctx = Arc::new(ShardTrace {
                collector: Arc::clone(&t.collector),
                targets: handles.iter().map(|h| (h.trace_id, h.id)).collect(),
            });
            (handles, ctx)
        });
        let shard_trace = exec.as_ref().map(|(_, ctx)| ctx);
        let merged = match plans {
            Some(plans) => {
                let per_shard = if self.shards.len() <= 1 || pool.workers() <= 1 {
                    self.run_serial_planned(batch, &plans, params, shard_trace)
                } else {
                    self.run_on_planned(pool, batch, &plans, params, shard_trace)
                };
                self.merge_planned(batch.len(), per_shard, &plans)
            }
            None => {
                let per_shard = if self.shards.len() <= 1 || pool.workers() <= 1 {
                    self.run_serial(batch, params, shard_trace)
                } else {
                    self.run_on(pool, batch, params, shard_trace)
                };
                self.merge(batch.len(), per_shard)
            }
        };
        if let (Some(t), Some((handles, _))) = (trace, exec) {
            let tags = vec![
                ("shards", self.shards.len() as u64),
                ("queries", batch.len() as u64),
            ];
            let buf = handles
                .into_iter()
                .map(|h| t.collector.finish(h, kind::POOL, "", tags.clone()))
                .collect();
            t.collector.extend(buf);
        }
        if let Some(m) = self.metrics.get() {
            m.batch_size.record(batch.len() as u64);
            m.search_us.record(elapsed_us(start));
        }
        merged
    }

    /// Ensures the interior pool has `workers` threads and runs `f` on
    /// it (shared by the legacy and plan-sharing fan-outs, so the
    /// ensure/respawn policy cannot diverge between them).
    fn with_interior_pool(
        &self,
        workers: usize,
        f: impl FnOnce(&WorkerPool) -> Vec<ShardBatch<E::Stats>>,
    ) -> Vec<ShardBatch<E::Stats>> {
        // Poison recovery: the guarded Option<WorkerPool> is replaced
        // wholesale, never half-updated, so a panicking holder leaves it
        // consistent.
        let mut guard = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        let pool = guard.get_or_insert_with(|| WorkerPool::new(workers));
        if pool.workers() != workers {
            *pool = WorkerPool::new(workers);
        }
        f(pool)
    }

    /// Serial fallback: every shard on the calling thread, one scratch.
    fn run_serial(
        &self,
        batch: &[E::Query],
        params: &E::Params,
        trace: Option<&Arc<ShardTrace>>,
    ) -> Vec<ShardBatch<E::Stats>> {
        let mut scratch = E::Scratch::default();
        self.shards
            .iter()
            .enumerate()
            .map(|(si, s)| {
                shard_spans(trace.map(Arc::as_ref), si, || {
                    s.run_batch(&mut scratch, batch, params)
                })
            })
            .collect()
    }

    /// Serial plan-sharing fallback: every shard on the calling thread,
    /// one scratch, one plan per query.
    fn run_serial_planned(
        &self,
        batch: &[E::Query],
        plans: &[Arc<E::Plan>],
        params: &E::Params,
        trace: Option<&Arc<ShardTrace>>,
    ) -> Vec<ShardBatch<E::Stats>> {
        let mut scratch = E::Scratch::default();
        self.shards
            .iter()
            .enumerate()
            .map(|(si, s)| {
                shard_spans(trace.map(Arc::as_ref), si, || {
                    s.run_batch_planned(&mut scratch, batch, plans, params)
                })
            })
            .collect()
    }

    /// Fans one job per shard out to `pool` and collects per-shard
    /// results back into shard order.
    ///
    /// Jobs on the persistent pool must be `'static`, so the batch is
    /// cloned into an `Arc` shared by all jobs (queries are cheap to
    /// clone relative to a shard search; the server path hands over
    /// owned queries anyway).
    fn run_on(
        &self,
        pool: &WorkerPool,
        batch: &[E::Query],
        params: &E::Params,
        trace: Option<&Arc<ShardTrace>>,
    ) -> Vec<ShardBatch<E::Stats>> {
        let batch: Arc<Vec<E::Query>> = Arc::new(batch.to_vec());
        self.fan_out(
            pool,
            move |shard, scratch, params| shard.run_batch(scratch, &batch, params),
            params,
            trace,
        )
    }

    /// [`ShardedIndex::run_on`] with shared plans: each shard job
    /// receives `&Plan` references into one `Arc`'d plan set.
    fn run_on_planned(
        &self,
        pool: &WorkerPool,
        batch: &[E::Query],
        plans: &[Arc<E::Plan>],
        params: &E::Params,
        trace: Option<&Arc<ShardTrace>>,
    ) -> Vec<ShardBatch<E::Stats>> {
        let batch: Arc<Vec<E::Query>> = Arc::new(batch.to_vec());
        let plans: Arc<Vec<Arc<E::Plan>>> = Arc::new(plans.to_vec());
        self.fan_out(
            pool,
            move |shard, scratch, params| shard.run_batch_planned(scratch, &batch, &plans, params),
            params,
            trace,
        )
    }

    /// Shared fan-out skeleton: one job per shard on `pool`, results
    /// collected back into fixed shard order. With a trace context,
    /// each job opens its `shard` spans on the worker thread — queue
    /// wait inside the pool shows up as the gap between the `pool`
    /// span's start and the `shard` span's start.
    fn fan_out(
        &self,
        pool: &WorkerPool,
        run: impl Fn(&Shard<E>, &mut E::Scratch, &E::Params) -> ShardBatch<E::Stats>
            + Clone
            + Send
            + Sync
            + 'static,
        params: &E::Params,
        trace: Option<&Arc<ShardTrace>>,
    ) -> Vec<ShardBatch<E::Stats>> {
        let ns = self.shards.len();
        let (tx, rx) = mpsc::channel::<(usize, ShardBatch<E::Stats>)>();
        for si in 0..ns {
            let shards = Arc::clone(&self.shards);
            let params = params.clone();
            let tx = tx.clone();
            let run = run.clone();
            let trace = trace.cloned();
            pool.submit(move |store| {
                let scratch = store.get_mut::<E::Scratch>();
                let result = shard_spans(trace.as_deref(), si, || {
                    // lint: allow(panic) — si ranges over 0..shards.len()
                    run(&shards[si], scratch, &params)
                });
                // The receiver only hangs up on panic-unwind; ignore.
                let _ = tx.send((si, result));
            })
            // Searching on a pool the caller already shut down is a
            // caller bug; failing loudly beats deadlocking below on
            // results that will never arrive.
            // lint: allow(panic) — deliberate: deadlock is the alternative
            .expect("search_batch_on called on a shut-down worker pool");
        }
        drop(tx);
        let mut slots: Vec<Option<ShardBatch<E::Stats>>> = (0..ns).map(|_| None).collect();
        for _ in 0..ns {
            // A worker job that panicked drops its sender without
            // sending; recv then fails once all senders are gone.
            // lint: allow(panic) — a shard worker panicked; this batch cannot
            // be answered, and the server's dispatcher catches the unwind
            let (si, res) = rx.recv().expect("search worker panicked");
            // lint: allow(panic) — si comes from the submit loop, always < ns
            slots[si] = Some(res);
        }
        slots
            .into_iter()
            // lint: allow(panic) — ns successful receives fill every slot
            .map(|s| s.expect("every shard served"))
            .collect()
    }

    /// Merges per-shard batches into one [`SearchResult`] per query, in
    /// fixed shard order, then sorts ids ascending.
    fn merge(
        &self,
        batch_len: usize,
        per_shard: Vec<ShardBatch<E::Stats>>,
    ) -> Vec<SearchResult<E::Stats>> {
        let mut merged: Vec<SearchResult<E::Stats>> = (0..batch_len)
            .map(|_| SearchResult {
                ids: Vec::new(),
                stats: E::Stats::default(),
            })
            .collect();
        for shard_results in per_shard {
            for (qi, (ids, stats)) in shard_results.into_iter().enumerate() {
                // lint: allow(panic) — every shard batch has one entry per
                // query, so qi < batch_len, the length of merged
                let slot = &mut merged[qi];
                slot.ids.extend(ids);
                slot.stats.merge(&stats);
            }
        }
        for res in &mut merged {
            res.ids.sort_unstable();
        }
        merged
    }

    /// [`ShardedIndex::merge`] plus each query's plan-time statistics,
    /// folded in **once per query** (the shards reported execution-only
    /// statistics).
    fn merge_planned(
        &self,
        batch_len: usize,
        per_shard: Vec<ShardBatch<E::Stats>>,
        plans: &[Arc<E::Plan>],
    ) -> Vec<SearchResult<E::Stats>> {
        let mut merged = self.merge(batch_len, per_shard);
        if let Some(shard0) = self.shards.first() {
            for (res, plan) in merged.iter_mut().zip(plans) {
                res.stats.merge(&shard0.engine.plan_stats(plan));
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Toy engine for service-layer tests: records are integers, a query
    /// matches every record within `params` of it.
    struct AbsDiffEngine {
        values: Vec<i64>,
    }

    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    struct AbsDiffStats {
        compared: usize,
        results: usize,
    }

    impl MergeStats for AbsDiffStats {
        fn merge(&mut self, other: &Self) {
            self.compared = self.compared.saturating_add(other.compared);
            self.results = self.results.saturating_add(other.results);
        }
    }

    impl SearchEngine for AbsDiffEngine {
        type Query = i64;
        type Params = i64;
        type Stats = AbsDiffStats;
        type Scratch = ();
        type Plan = ();

        fn num_records(&self) -> usize {
            self.values.len()
        }

        fn plan(&self, _scratch: &mut (), _query: &i64) {}

        fn search_planned(
            &self,
            _scratch: &mut (),
            _plan: &(),
            query: &i64,
            params: &i64,
            out: &mut Vec<u32>,
        ) -> AbsDiffStats {
            let mut stats = AbsDiffStats::default();
            for (id, v) in self.values.iter().enumerate() {
                stats.compared += 1;
                if (v - query).abs() <= *params {
                    out.push(id as u32);
                    stats.results += 1;
                }
            }
            stats
        }
    }

    /// A plan-counting engine: its plan is the query doubled, and every
    /// `plan` call is counted so tests can assert plan-once behaviour.
    struct CountingEngine {
        inner: AbsDiffEngine,
        plans_computed: Arc<AtomicUsize>,
    }

    impl SearchEngine for CountingEngine {
        type Query = i64;
        type Params = i64;
        type Stats = AbsDiffStats;
        type Scratch = ();
        type Plan = i64;

        fn num_records(&self) -> usize {
            self.inner.num_records()
        }

        fn plan(&self, _scratch: &mut (), query: &i64) -> i64 {
            self.plans_computed.fetch_add(1, Ordering::SeqCst);
            query * 2
        }

        fn search_planned(
            &self,
            scratch: &mut (),
            plan: &i64,
            query: &i64,
            params: &i64,
            out: &mut Vec<u32>,
        ) -> AbsDiffStats {
            assert_eq!(*plan, query * 2, "shard received a foreign plan");
            self.inner.search_planned(scratch, &(), query, params, out)
        }
    }

    fn build_sharded(n: usize, shards: usize) -> (Vec<i64>, ShardedIndex<AbsDiffEngine>) {
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 101).collect();
        let index = ShardedIndex::build(values.clone(), shards, |values| AbsDiffEngine { values });
        (values, index)
    }

    fn build_counting(
        n: usize,
        shards: usize,
        global: bool,
    ) -> (Arc<AtomicUsize>, ShardedIndex<CountingEngine>) {
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 101).collect();
        let plans = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&plans);
        let index = if global {
            ShardedIndex::build_global(
                values,
                shards,
                |_| (),
                move |_, values| CountingEngine {
                    inner: AbsDiffEngine { values },
                    plans_computed: Arc::clone(&counter),
                },
            )
        } else {
            ShardedIndex::build(values, shards, move |values| CountingEngine {
                inner: AbsDiffEngine { values },
                plans_computed: Arc::clone(&counter),
            })
        };
        (plans, index)
    }

    #[test]
    fn partition_covers_every_record_exactly_once() {
        let (_, index) = build_sharded(257, 5);
        let mut seen: Vec<u32> = index.shards.iter().flat_map(|s| s.ids.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..257).collect::<Vec<u32>>());
        assert_eq!(index.num_records(), 257);
        assert_eq!(index.requested_shards(), 5);
    }

    #[test]
    fn shard_ids_are_ascending() {
        let (_, index) = build_sharded(100, 7);
        for shard in index.shards.iter() {
            assert!(shard.ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sharded_matches_unsharded_any_k() {
        let (values, _) = build_sharded(120, 1);
        let reference = AbsDiffEngine {
            values: values.clone(),
        };
        for k in [1usize, 2, 3, 7, 120, 200] {
            let index = ShardedIndex::build(values.clone(), k, |values| AbsDiffEngine { values });
            for q in [0i64, 17, 50, 100] {
                let mut expect = Vec::new();
                let stats = reference.search_into(&mut (), &q, &10, &mut expect);
                let got = index.search(&q, &10);
                assert_eq!(got.ids, expect, "k={k} q={q}");
                assert_eq!(got.stats.results, stats.results, "k={k} q={q}");
                assert_eq!(got.stats.compared, stats.compared, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn batch_matches_single_and_is_deterministic() {
        let (_, index) = build_sharded(300, 4);
        let batch: Vec<i64> = (0..23).map(|i| i * 9).collect();
        let serial: Vec<_> = batch.iter().map(|q| index.search(q, &7)).collect();
        for threads in [1usize, 2, 4, 8] {
            let run1 = index.search_batch(&batch, &7, threads);
            let run2 = index.search_batch(&batch, &7, threads);
            for qi in 0..batch.len() {
                assert_eq!(run1[qi].ids, serial[qi].ids, "threads={threads} qi={qi}");
                assert_eq!(run1[qi].ids, run2[qi].ids, "threads={threads} qi={qi}");
                assert_eq!(run1[qi].stats, run2[qi].stats, "threads={threads} qi={qi}");
            }
        }
    }

    #[test]
    fn global_build_plans_once_per_query_for_any_shard_count() {
        let batch: Vec<i64> = (0..10).map(|i| i * 11).collect();
        for k in [1usize, 2, 4, 7] {
            let (plans, index) = build_counting(300, k, true);
            assert!(index.plan_once());
            for threads in [1usize, 4] {
                plans.store(0, Ordering::SeqCst);
                let _ = index.search_batch(&batch, &7, threads);
                assert_eq!(
                    plans.load(Ordering::SeqCst),
                    batch.len(),
                    "k={k} threads={threads}: one plan per query, not per shard"
                );
            }
            // Single-query path plans once too.
            plans.store(0, Ordering::SeqCst);
            let _ = index.search(&5, &7);
            assert_eq!(plans.load(Ordering::SeqCst), 1, "k={k}");
        }
    }

    #[test]
    fn legacy_build_plans_per_shard_and_matches_global_results() {
        let batch: Vec<i64> = (0..10).map(|i| i * 11).collect();
        let (legacy_plans, legacy) = build_counting(300, 4, false);
        let (_, global) = build_counting(300, 4, true);
        assert!(!legacy.plan_once());
        assert!(legacy.plan_batch(&batch).is_none());
        let legacy_res = legacy.search_batch(&batch, &7, 2);
        let global_res = global.search_batch(&batch, &7, 2);
        // The legacy path plans once per (query, shard).
        assert_eq!(
            legacy_plans.load(Ordering::SeqCst),
            batch.len() * legacy.num_shards()
        );
        for qi in 0..batch.len() {
            assert_eq!(legacy_res[qi].ids, global_res[qi].ids, "qi={qi}");
            assert_eq!(legacy_res[qi].stats, global_res[qi].stats, "qi={qi}");
        }
    }

    #[test]
    fn precomputed_plans_are_reusable_across_params() {
        let (_, index) = build_counting(200, 3, true);
        let batch: Vec<i64> = (0..8).collect();
        let plans = index.plan_batch(&batch).expect("global build plans");
        for params in [3i64, 7, 11] {
            let via_plans = index.search_batch_planned(&batch, &plans, &params, 2);
            let direct = index.search_batch(&batch, &params, 2);
            for qi in 0..batch.len() {
                assert_eq!(via_plans[qi].ids, direct[qi].ids, "params={params} qi={qi}");
            }
        }
    }

    #[test]
    fn search_batch_on_shared_pool_matches_interior_pool() {
        let (_, index_a) = build_sharded(300, 4);
        let (_, index_b) = build_sharded(150, 3);
        let batch: Vec<i64> = (0..17).map(|i| i * 11).collect();
        let pool = WorkerPool::new(2);
        // The same pool serves two different indexes, repeatedly; the
        // results must match the interior-pool path every time.
        for _ in 0..3 {
            let via_pool = index_a.search_batch_on(&pool, &batch, &9);
            let via_interior = index_a.search_batch(&batch, &9, 2);
            for qi in 0..batch.len() {
                assert_eq!(via_pool[qi].ids, via_interior[qi].ids, "qi={qi}");
                assert_eq!(via_pool[qi].stats, via_interior[qi].stats, "qi={qi}");
            }
            let via_pool_b = index_b.search_batch_on(&pool, &batch, &9);
            let via_interior_b = index_b.search_batch(&batch, &9, 2);
            for qi in 0..batch.len() {
                assert_eq!(via_pool_b[qi].ids, via_interior_b[qi].ids, "qi={qi}");
            }
        }
    }

    #[test]
    fn search_batch_on_plans_once_with_shared_pool() {
        let (plans, index) = build_counting(300, 4, true);
        let pool = WorkerPool::new(2);
        let batch: Vec<i64> = (0..9).collect();
        let expect = index.search_batch(&batch, &5, 1);
        plans.store(0, Ordering::SeqCst);
        let got = index.search_batch_on(&pool, &batch, &5);
        assert_eq!(plans.load(Ordering::SeqCst), batch.len());
        for qi in 0..batch.len() {
            assert_eq!(got[qi].ids, expect[qi].ids, "qi={qi}");
        }
    }

    #[test]
    fn traced_search_emits_plan_pool_and_shard_spans() {
        use pigeonring_telemetry::json::Value;
        use pigeonring_telemetry::TraceCollector;

        let (_, index) = build_counting(300, 4, true);
        let pool = WorkerPool::new(2);
        let batch: Vec<i64> = (0..6).collect();
        let collector = Arc::new(TraceCollector::new(0, 256));
        let root = collector.sample(true).expect("forced trace");
        let trace = ShardTrace {
            collector: Arc::clone(&collector),
            targets: vec![(root.trace_id, root.id)],
        };

        let plain = index.search_batch_on(&pool, &batch, &5);
        let traced = index.search_batch_on_traced(&pool, &batch, &5, Some(&trace));
        for qi in 0..batch.len() {
            assert_eq!(plain[qi].ids, traced[qi].ids, "tracing changed results");
            assert_eq!(plain[qi].stats, traced[qi].stats, "tracing changed stats");
        }

        collector.extend(vec![collector.finish(root, kind::QUERY, "", vec![])]);
        let doc = collector.export_trace(root.trace_id);
        let spans = match doc.get("spans") {
            Some(Value::Arr(items)) => items.clone(),
            other => panic!("spans missing: {other:?}"),
        };
        let of_kind = |k: &str| -> Vec<&Value> {
            spans
                .iter()
                .filter(|s| s.get("kind").and_then(Value::as_str) == Some(k))
                .collect()
        };
        assert_eq!(of_kind(kind::PLAN).len(), 1, "one plan span per query");
        let pools = of_kind(kind::POOL);
        assert_eq!(pools.len(), 1, "one pool span per query");
        let pool_id = pools[0].get("id").and_then(Value::as_u64).unwrap();
        let shards = of_kind(kind::SHARD);
        assert_eq!(shards.len(), index.num_shards(), "one span per shard");
        for s in &shards {
            assert_eq!(
                s.get("parent").and_then(Value::as_u64),
                Some(pool_id),
                "shard spans nest under the pool span"
            );
        }
        // Every span traces back to the root.
        let ids: Vec<u64> = spans
            .iter()
            .map(|s| s.get("id").and_then(Value::as_u64).unwrap())
            .collect();
        for s in &spans {
            let parent = s.get("parent").and_then(Value::as_u64).unwrap();
            assert!(parent == 0 || ids.contains(&parent), "dangling parent");
        }
    }

    #[test]
    fn interior_pool_is_reused_and_resized() {
        let (_, index) = build_sharded(200, 4);
        let batch: Vec<i64> = (0..9).collect();
        let expect: Vec<Vec<u32>> = index
            .search_batch(&batch, &5, 1)
            .into_iter()
            .map(|r| r.ids)
            .collect();
        // Same thread count twice (pool reused), then a different one
        // (pool respawned); answers never change.
        for threads in [2usize, 2, 3] {
            let got = index.search_batch(&batch, &5, threads);
            for qi in 0..batch.len() {
                assert_eq!(got[qi].ids, expect[qi], "threads={threads} qi={qi}");
            }
        }
    }

    #[test]
    fn more_shards_than_records_skips_empties() {
        let (_, index) = build_sharded(3, 64);
        assert!(index.num_shards() <= 3);
        assert_eq!(index.num_records(), 3);
        let res = index.search(&0, &1000);
        assert_eq!(res.ids, vec![0, 1, 2]);
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        for id in 0..1000u64 {
            assert_eq!(shard_of(id, 7), shard_of(id, 7));
        }
        // and spreads: no shard gets everything
        let mut counts = [0usize; 4];
        for id in 0..1000u64 {
            counts[shard_of(id, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedIndex::build(vec![1i64], 0, |values| AbsDiffEngine { values });
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected_global() {
        let _ =
            ShardedIndex::build_global(vec![1i64], 0, |_| (), |_, values| AbsDiffEngine { values });
    }
}
