//! Hash-partitioned sharding over a persistent [`WorkerPool`].
//!
//! [`ShardedIndex::build`] splits the record set into `N` shards by
//! hashing global record ids (deterministic: the same records and shard
//! count always produce the same partition), builds one engine per
//! non-empty shard, and remembers each shard's global ids. At query time
//! [`ShardedIndex::search_batch`] fans the batch out over a worker pool —
//! one job per shard, each worker reusing its long-lived
//! [`ScratchStore`](crate::pool::ScratchStore) scratch, so buffers stay
//! warm across shards *and* batches — then merges per-shard result sets
//! back into ascending *global* id order and aggregates statistics with
//! [`MergeStats::merge`].
//!
//! The pool is persistent (the ROADMAP "persistent worker pool" item):
//! `search_batch` lazily spawns one sized to its `threads` argument and
//! keeps it for later batches, while [`ShardedIndex::search_batch_on`]
//! runs on a caller-owned [`WorkerPool`] — the path `pigeonring-server`
//! uses so every index shares one pool behind the network boundary.
//! Merging is by fixed shard order regardless of job completion order,
//! so results are deterministic for any worker count.
//!
//! Every domain engine verifies its candidates exactly, so sharding
//! cannot change the result set: the union over shards of "records within
//! the threshold" is exactly the unsharded answer, independent of how
//! data-dependent build decisions (gram frequency orders, cost models)
//! shift per-shard candidate counts.

use std::hash::{BuildHasher, BuildHasherDefault};
use std::sync::{mpsc, Arc, Mutex};

use crate::engine::{MergeStats, SearchEngine};
use crate::pool::WorkerPool;
use pigeonring_core::fxhash::FxHasher;

/// Deterministic shard assignment for global record id `id` among
/// `shards` shards (FxHash of the id).
#[inline]
pub fn shard_of(id: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let h = BuildHasherDefault::<FxHasher>::default().hash_one(id);
    (h % shards as u64) as usize
}

/// One query's merged answer: ascending global record ids plus the
/// statistics aggregated over all shards.
#[derive(Clone, Debug)]
pub struct SearchResult<S> {
    /// Global record ids within the threshold, ascending.
    pub ids: Vec<u32>,
    /// Statistics summed (saturating) over every shard.
    pub stats: S,
}

/// One shard's answers for a whole batch: `(global ids, stats)` per
/// query, in batch order.
type ShardBatch<S> = Vec<(Vec<u32>, S)>;

struct Shard<E> {
    engine: E,
    /// Global ids of this shard's records, ascending (shard-local id `i`
    /// is the record `ids[i]` of the original collection).
    ids: Vec<u32>,
}

impl<E: SearchEngine> Shard<E> {
    /// Runs every query of `batch` against this shard, translating
    /// shard-local ids to global ids.
    fn run_batch(
        &self,
        scratch: &mut E::Scratch,
        batch: &[E::Query],
        params: &E::Params,
    ) -> ShardBatch<E::Stats> {
        batch
            .iter()
            .map(|q| {
                let mut out = Vec::new();
                let stats = self.engine.search_into(scratch, q, params, &mut out);
                for id in &mut out {
                    *id = self.ids[*id as usize];
                }
                (out, stats)
            })
            .collect()
    }
}

/// A hash-partitioned collection of engines answering queries as one
/// index.
pub struct ShardedIndex<E> {
    /// Shared so per-shard jobs on the persistent pool (which outlive
    /// any one `search_batch` stack frame) can hold the shards alive.
    shards: Arc<Vec<Shard<E>>>,
    requested_shards: usize,
    total: usize,
    /// Lazily-spawned interior pool for [`ShardedIndex::search_batch`];
    /// resized (respawned) when a call asks for a different thread
    /// count. Callers wanting to share one pool across indexes use
    /// [`ShardedIndex::search_batch_on`] instead.
    pool: Mutex<Option<WorkerPool>>,
}

impl<E: SearchEngine> ShardedIndex<E> {
    /// Hash-partitions `records` into `shards` shards and builds one
    /// engine per non-empty shard via `build` (empty shards — possible
    /// for tiny collections — are skipped, since the domain engines
    /// reject empty datasets).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build<R>(records: Vec<R>, shards: usize, build: impl Fn(Vec<R>) -> E) -> Self {
        assert!(shards > 0, "need at least one shard");
        let requested_shards = shards;
        let total = records.len();
        let mut parts: Vec<(Vec<u32>, Vec<R>)> = (0..shards).map(|_| Default::default()).collect();
        for (id, record) in records.into_iter().enumerate() {
            let s = shard_of(id as u64, shards);
            parts[s].0.push(id as u32);
            parts[s].1.push(record);
        }
        let shards = parts
            .into_iter()
            .filter(|(ids, _)| !ids.is_empty())
            .map(|(ids, records)| Shard {
                engine: build(records),
                ids,
            })
            .collect();
        ShardedIndex {
            shards: Arc::new(shards),
            requested_shards,
            total,
            pool: Mutex::new(None),
        }
    }

    /// Number of non-empty shards actually built.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard count requested at build time (≥ [`Self::num_shards`]).
    pub fn requested_shards(&self) -> usize {
        self.requested_shards
    }

    /// Total number of records across all shards.
    pub fn num_records(&self) -> usize {
        self.total
    }

    /// Answers a single query on the calling thread (all shards,
    /// serially, one scratch).
    ///
    /// Convenience path: shards usually differ in record count, so the
    /// shared scratch re-sizes on every shard transition. Hot callers
    /// should prefer [`ShardedIndex::search_batch`], which amortizes the
    /// resize across the whole batch (each worker serves entire shards).
    pub fn search(&self, query: &E::Query, params: &E::Params) -> SearchResult<E::Stats> {
        let mut scratch = E::Scratch::default();
        let mut merged = SearchResult {
            ids: Vec::new(),
            stats: E::Stats::default(),
        };
        for shard in self.shards.iter() {
            let mut res = shard.run_batch(&mut scratch, std::slice::from_ref(query), params);
            let (ids, stats) = res.pop().expect("one query in, one result out");
            merged.ids.extend(ids);
            merged.stats.merge(&stats);
        }
        merged.ids.sort_unstable();
        merged
    }

    /// Answers a batch of queries with up to `threads` worker threads
    /// from the index's interior persistent pool.
    ///
    /// The pool is spawned on the first parallel call and reused by
    /// every later batch (respawned only when `threads` changes), so
    /// steady-state batches pay zero thread-spawn cost and worker
    /// scratch stays warm across batches. Results are merged in fixed
    /// shard order and sorted, so the output is deterministic regardless
    /// of thread scheduling: two runs of the same batch agree
    /// bit-for-bit.
    ///
    /// Concurrent callers serialize on the interior pool; services
    /// multiplexing many indexes should share one explicit pool via
    /// [`ShardedIndex::search_batch_on`].
    pub fn search_batch(
        &self,
        batch: &[E::Query],
        params: &E::Params,
        threads: usize,
    ) -> Vec<SearchResult<E::Stats>> {
        let ns = self.shards.len();
        let workers = threads.clamp(1, ns.max(1));
        if workers <= 1 || ns <= 1 {
            return self.merge(batch.len(), self.run_serial(batch, params));
        }
        let mut pool = self.pool.lock().expect("interior pool mutex poisoned");
        if pool.as_ref().is_none_or(|p| p.workers() != workers) {
            *pool = Some(WorkerPool::new(workers));
        }
        let per_shard = self.run_on(pool.as_ref().expect("pool just ensured"), batch, params);
        self.merge(batch.len(), per_shard)
    }

    /// Answers a batch of queries on a caller-owned [`WorkerPool`]
    /// (shared across indexes — and across *domains*, since worker
    /// scratch is keyed by scratch type).
    ///
    /// Same determinism guarantee as [`ShardedIndex::search_batch`]:
    /// per-shard results are merged in fixed shard order and sorted.
    pub fn search_batch_on(
        &self,
        pool: &WorkerPool,
        batch: &[E::Query],
        params: &E::Params,
    ) -> Vec<SearchResult<E::Stats>> {
        let per_shard = if self.shards.len() <= 1 || pool.workers() <= 1 {
            self.run_serial(batch, params)
        } else {
            self.run_on(pool, batch, params)
        };
        self.merge(batch.len(), per_shard)
    }

    /// Serial fallback: every shard on the calling thread, one scratch.
    fn run_serial(&self, batch: &[E::Query], params: &E::Params) -> Vec<ShardBatch<E::Stats>> {
        let mut scratch = E::Scratch::default();
        self.shards
            .iter()
            .map(|s| s.run_batch(&mut scratch, batch, params))
            .collect()
    }

    /// Fans one job per shard out to `pool` and collects per-shard
    /// results back into shard order.
    ///
    /// Jobs on the persistent pool must be `'static`, so the batch is
    /// cloned into an `Arc` shared by all jobs (queries are cheap to
    /// clone relative to a shard search; the server path hands over
    /// owned queries anyway).
    fn run_on(
        &self,
        pool: &WorkerPool,
        batch: &[E::Query],
        params: &E::Params,
    ) -> Vec<ShardBatch<E::Stats>> {
        let ns = self.shards.len();
        let batch: Arc<Vec<E::Query>> = Arc::new(batch.to_vec());
        let (tx, rx) = mpsc::channel::<(usize, ShardBatch<E::Stats>)>();
        for si in 0..ns {
            let shards = Arc::clone(&self.shards);
            let batch = Arc::clone(&batch);
            let params = params.clone();
            let tx = tx.clone();
            pool.submit(move |store| {
                let scratch = store.get_mut::<E::Scratch>();
                // The receiver only hangs up on panic-unwind; ignore.
                let _ = tx.send((si, shards[si].run_batch(scratch, &batch, &params)));
            })
            // Searching on a pool the caller already shut down is a
            // caller bug; failing loudly beats deadlocking below on
            // results that will never arrive.
            .expect("search_batch_on called on a shut-down worker pool");
        }
        drop(tx);
        let mut slots: Vec<Option<ShardBatch<E::Stats>>> = (0..ns).map(|_| None).collect();
        for _ in 0..ns {
            // A worker job that panicked drops its sender without
            // sending; recv then fails once all senders are gone.
            let (si, res) = rx.recv().expect("search worker panicked");
            slots[si] = Some(res);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every shard served"))
            .collect()
    }

    /// Merges per-shard batches into one [`SearchResult`] per query, in
    /// fixed shard order, then sorts ids ascending.
    fn merge(
        &self,
        batch_len: usize,
        per_shard: Vec<ShardBatch<E::Stats>>,
    ) -> Vec<SearchResult<E::Stats>> {
        let mut merged: Vec<SearchResult<E::Stats>> = (0..batch_len)
            .map(|_| SearchResult {
                ids: Vec::new(),
                stats: E::Stats::default(),
            })
            .collect();
        for shard_results in per_shard {
            for (qi, (ids, stats)) in shard_results.into_iter().enumerate() {
                merged[qi].ids.extend(ids);
                merged[qi].stats.merge(&stats);
            }
        }
        for res in &mut merged {
            res.ids.sort_unstable();
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy engine for service-layer tests: records are integers, a query
    /// matches every record within `params` of it.
    struct AbsDiffEngine {
        values: Vec<i64>,
    }

    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    struct AbsDiffStats {
        compared: usize,
        results: usize,
    }

    impl MergeStats for AbsDiffStats {
        fn merge(&mut self, other: &Self) {
            self.compared = self.compared.saturating_add(other.compared);
            self.results = self.results.saturating_add(other.results);
        }
    }

    impl SearchEngine for AbsDiffEngine {
        type Query = i64;
        type Params = i64;
        type Stats = AbsDiffStats;
        type Scratch = ();

        fn num_records(&self) -> usize {
            self.values.len()
        }

        fn search_into(
            &self,
            _scratch: &mut (),
            query: &i64,
            params: &i64,
            out: &mut Vec<u32>,
        ) -> AbsDiffStats {
            let mut stats = AbsDiffStats::default();
            for (id, v) in self.values.iter().enumerate() {
                stats.compared += 1;
                if (v - query).abs() <= *params {
                    out.push(id as u32);
                    stats.results += 1;
                }
            }
            stats
        }
    }

    fn build_sharded(n: usize, shards: usize) -> (Vec<i64>, ShardedIndex<AbsDiffEngine>) {
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 37) % 101).collect();
        let index = ShardedIndex::build(values.clone(), shards, |values| AbsDiffEngine { values });
        (values, index)
    }

    #[test]
    fn partition_covers_every_record_exactly_once() {
        let (_, index) = build_sharded(257, 5);
        let mut seen: Vec<u32> = index.shards.iter().flat_map(|s| s.ids.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..257).collect::<Vec<u32>>());
        assert_eq!(index.num_records(), 257);
        assert_eq!(index.requested_shards(), 5);
    }

    #[test]
    fn shard_ids_are_ascending() {
        let (_, index) = build_sharded(100, 7);
        for shard in index.shards.iter() {
            assert!(shard.ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn sharded_matches_unsharded_any_k() {
        let (values, _) = build_sharded(120, 1);
        let reference = AbsDiffEngine {
            values: values.clone(),
        };
        for k in [1usize, 2, 3, 7, 120, 200] {
            let index = ShardedIndex::build(values.clone(), k, |values| AbsDiffEngine { values });
            for q in [0i64, 17, 50, 100] {
                let mut expect = Vec::new();
                let stats = reference.search_into(&mut (), &q, &10, &mut expect);
                let got = index.search(&q, &10);
                assert_eq!(got.ids, expect, "k={k} q={q}");
                assert_eq!(got.stats.results, stats.results, "k={k} q={q}");
                assert_eq!(got.stats.compared, stats.compared, "k={k} q={q}");
            }
        }
    }

    #[test]
    fn batch_matches_single_and_is_deterministic() {
        let (_, index) = build_sharded(300, 4);
        let batch: Vec<i64> = (0..23).map(|i| i * 9).collect();
        let serial: Vec<_> = batch.iter().map(|q| index.search(q, &7)).collect();
        for threads in [1usize, 2, 4, 8] {
            let run1 = index.search_batch(&batch, &7, threads);
            let run2 = index.search_batch(&batch, &7, threads);
            for qi in 0..batch.len() {
                assert_eq!(run1[qi].ids, serial[qi].ids, "threads={threads} qi={qi}");
                assert_eq!(run1[qi].ids, run2[qi].ids, "threads={threads} qi={qi}");
                assert_eq!(run1[qi].stats, run2[qi].stats, "threads={threads} qi={qi}");
            }
        }
    }

    #[test]
    fn search_batch_on_shared_pool_matches_interior_pool() {
        let (_, index_a) = build_sharded(300, 4);
        let (_, index_b) = build_sharded(150, 3);
        let batch: Vec<i64> = (0..17).map(|i| i * 11).collect();
        let pool = WorkerPool::new(2);
        // The same pool serves two different indexes, repeatedly; the
        // results must match the interior-pool path every time.
        for _ in 0..3 {
            let via_pool = index_a.search_batch_on(&pool, &batch, &9);
            let via_interior = index_a.search_batch(&batch, &9, 2);
            for qi in 0..batch.len() {
                assert_eq!(via_pool[qi].ids, via_interior[qi].ids, "qi={qi}");
                assert_eq!(via_pool[qi].stats, via_interior[qi].stats, "qi={qi}");
            }
            let via_pool_b = index_b.search_batch_on(&pool, &batch, &9);
            let via_interior_b = index_b.search_batch(&batch, &9, 2);
            for qi in 0..batch.len() {
                assert_eq!(via_pool_b[qi].ids, via_interior_b[qi].ids, "qi={qi}");
            }
        }
    }

    #[test]
    fn interior_pool_is_reused_and_resized() {
        let (_, index) = build_sharded(200, 4);
        let batch: Vec<i64> = (0..9).collect();
        let expect: Vec<Vec<u32>> = index
            .search_batch(&batch, &5, 1)
            .into_iter()
            .map(|r| r.ids)
            .collect();
        // Same thread count twice (pool reused), then a different one
        // (pool respawned); answers never change.
        for threads in [2usize, 2, 3] {
            let got = index.search_batch(&batch, &5, threads);
            for qi in 0..batch.len() {
                assert_eq!(got[qi].ids, expect[qi], "threads={threads} qi={qi}");
            }
        }
    }

    #[test]
    fn more_shards_than_records_skips_empties() {
        let (_, index) = build_sharded(3, 64);
        assert!(index.num_shards() <= 3);
        assert_eq!(index.num_records(), 3);
        let res = index.search(&0, &1000);
        assert_eq!(res.ids, vec![0, 1, 2]);
    }

    #[test]
    fn shard_assignment_is_deterministic() {
        for id in 0..1000u64 {
            assert_eq!(shard_of(id, 7), shard_of(id, 7));
        }
        // and spreads: no shard gets everything
        let mut counts = [0usize; 4];
        for id in 0..1000u64 {
            counts[shard_of(id, 4)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 100), "skewed: {counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = ShardedIndex::build(vec![1i64], 0, |values| AbsDiffEngine { values });
    }
}
