//! Throughput-sweep driver for the service layer.
//!
//! [`Sweep::run`] times one `(domain, dataset, shards, batch, threads)`
//! configuration end to end — chunking the query stream into batches,
//! fanning each batch over the shard pool, and folding every query's
//! result ids into a deterministic FxHash fingerprint — and records a
//! [`SweepRow`]. Equal fingerprints across shard counts certify that the
//! sharded result sets are identical (the `repro fig7 --shards K`
//! acceptance check); the JSON emitted by [`Sweep::to_json`] is the
//! `BENCH_service.json` artifact CI uploads.

use std::hash::{BuildHasher, BuildHasherDefault, Hasher};
use std::sync::Arc;
use std::time::Instant;

use crate::engine::SearchEngine;
use crate::sharded::ShardedIndex;
use pigeonring_core::fxhash::FxHasher;

/// One timed service-layer configuration.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Domain engine name (`hamming`, `editdist`, `setsim`, `graph`).
    pub domain: String,
    /// Dataset label (e.g. `gist`, `imdb`).
    pub dataset: String,
    /// Requested shard count.
    pub shards: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Queries per batch.
    pub batch: usize,
    /// Total queries served.
    pub queries: usize,
    /// Total result ids across all queries.
    pub results: usize,
    /// End-to-end wall time in milliseconds, *including* this row's
    /// query-plan cost (whether planning ran inline or was precomputed
    /// by the caller), so rows from [`Sweep::run`] and
    /// [`Sweep::run_with_plans`] are comparable.
    pub total_ms: f64,
    /// Queries per second over the whole sweep (from `total_ms`).
    pub qps: f64,
    /// `qps / shards`: per-shard throughput CI tracks for regressions.
    pub per_shard_qps: f64,
    /// Median per-query latency in milliseconds (a query's latency is
    /// its batch's *execution* wall time — batched queries complete
    /// together; plan time is reported separately in `plan_ms`).
    pub p50_ms: f64,
    /// 95th-percentile per-query latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-query latency in milliseconds.
    pub p99_ms: f64,
    /// Total wall time spent computing query plans (0 for legacy
    /// per-shard-dictionary indexes, whose shards plan internally).
    pub plan_ms: f64,
    /// `plan_ms` per query in microseconds — the plan-once acceptance
    /// metric: flat across shard counts on `build_global` indexes.
    pub plan_us_per_query: f64,
    /// Wall time the index spent building its shared dictionary (0 for
    /// legacy builds).
    pub dict_build_ms: f64,
    /// Order-sensitive FxHash fingerprint of every query's result ids.
    pub result_hash: u64,
}

// The nearest-rank percentile helper now lives in
// `pigeonring-telemetry` (the histograms there derive p50/p95/p99 from
// the same definition); re-exported here so sweep callers keep their
// import path.
pub use pigeonring_telemetry::percentile;

/// Order-sensitive FxHash fingerprint over a sequence of result-id
/// sets. Two runs that return the same ids for the same queries in the
/// same order produce equal fingerprints — the cross-configuration
/// (and, via `pigeonring-server`, cross-process) equality check.
pub struct ResultHasher {
    hasher: FxHasher,
}

impl Default for ResultHasher {
    fn default() -> Self {
        ResultHasher::new()
    }
}

impl ResultHasher {
    /// An empty fingerprint.
    pub fn new() -> Self {
        ResultHasher {
            hasher: BuildHasherDefault::<FxHasher>::default().build_hasher(),
        }
    }

    /// Folds one query's result ids into the fingerprint.
    pub fn push(&mut self, ids: &[u32]) {
        self.hasher.write_usize(ids.len());
        for id in ids {
            self.hasher.write_u32(*id);
        }
    }

    /// The fingerprint over everything pushed so far.
    pub fn finish(&self) -> u64 {
        self.hasher.finish()
    }
}

/// Accumulates [`SweepRow`]s and renders them as JSON.
#[derive(Default)]
pub struct Sweep {
    /// The recorded rows, in run order.
    pub rows: Vec<SweepRow>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Runs `queries` through `index` in batches of `batch` with
    /// `threads` workers, records a row labelled `domain`/`dataset`, and
    /// returns it along with the statistics aggregated over every query
    /// and shard.
    ///
    /// On a [`ShardedIndex::build_global`] index every chunk's plans are
    /// computed once (timed into the row's `plan_ms`) and shared by all
    /// shards; legacy indexes run the per-shard-planning path with
    /// `plan_ms = 0`.
    #[expect(
        clippy::too_many_arguments,
        reason = "one timed configuration is exactly these eight knobs"
    )]
    pub fn run<E: SearchEngine>(
        &mut self,
        domain: &str,
        dataset: &str,
        index: &ShardedIndex<E>,
        queries: &[E::Query],
        params: &E::Params,
        batch: usize,
        threads: usize,
    ) -> (&SweepRow, E::Stats) {
        self.run_inner(
            domain, dataset, index, queries, None, params, batch, threads,
        )
    }

    /// [`Sweep::run`] with caller-precomputed plans (one per query, from
    /// [`ShardedIndex::plan_batch`]) and the caller-measured planning
    /// time — the parameter-sweep path: one plan set serves every
    /// `params` value, so e.g. an `l` sweep plans each query once total.
    #[expect(
        clippy::too_many_arguments,
        reason = "Sweep::run's eight knobs plus the shared plan set"
    )]
    pub fn run_with_plans<E: SearchEngine>(
        &mut self,
        domain: &str,
        dataset: &str,
        index: &ShardedIndex<E>,
        queries: &[E::Query],
        plans: &[Arc<E::Plan>],
        plan_ms: f64,
        params: &E::Params,
        batch: usize,
        threads: usize,
    ) -> (&SweepRow, E::Stats) {
        self.run_inner(
            domain,
            dataset,
            index,
            queries,
            Some((plans, plan_ms)),
            params,
            batch,
            threads,
        )
    }

    #[expect(
        clippy::too_many_arguments,
        reason = "shared core of the two public run flavours"
    )]
    fn run_inner<E: SearchEngine>(
        &mut self,
        domain: &str,
        dataset: &str,
        index: &ShardedIndex<E>,
        queries: &[E::Query],
        shared_plans: Option<(&[Arc<E::Plan>], f64)>,
        params: &E::Params,
        batch: usize,
        threads: usize,
    ) -> (&SweepRow, E::Stats) {
        use crate::engine::MergeStats;
        let batch = batch.max(1);
        let mut hasher = ResultHasher::new();
        let mut results = 0usize;
        let mut agg = E::Stats::default();
        let mut plan_ms = shared_plans.map_or(0.0, |(_, ms)| ms);
        // Per-query latency samples: every query in a batch completes
        // when its batch does, so a batch contributes its *execution*
        // wall time (planning excluded — it is reported in `plan_ms`)
        // once per query it carried.
        let mut latencies: Vec<f64> = Vec::with_capacity(queries.len());
        let start = Instant::now();
        let mut served = 0usize;
        for chunk in queries.chunks(batch) {
            // Plan outside the per-batch latency window so p50/p95/p99
            // mean the same thing whether plans were inlined here or
            // precomputed by the caller.
            let chunk_plans = match shared_plans {
                Some(_) => None,
                None => {
                    let plan_start = Instant::now();
                    let plans = index.plan_batch(chunk);
                    if plans.is_some() {
                        plan_ms += plan_start.elapsed().as_secs_f64() * 1e3;
                    }
                    plans
                }
            };
            let batch_start = Instant::now();
            let batch_results = match (shared_plans, &chunk_plans) {
                (Some((plans, _)), _) => index.search_batch_planned(
                    chunk,
                    // lint: allow(panic) — plans has one entry per query; served
                    // + chunk.len() never exceeds queries.len() by the chunking
                    &plans[served..served + chunk.len()],
                    params,
                    threads,
                ),
                (None, Some(plans)) => index.search_batch_planned(chunk, plans, params, threads),
                (None, None) => index.search_batch(chunk, params, threads),
            };
            let batch_ms = batch_start.elapsed().as_secs_f64() * 1e3;
            latencies.extend(std::iter::repeat_n(batch_ms, chunk.len()));
            for res in batch_results {
                hasher.push(&res.ids);
                results += res.ids.len();
                agg.merge(&res.stats);
            }
            served += chunk.len();
        }
        // End-to-end time *including* the row's plan cost: inline
        // planning already sits inside the `start` window, and
        // caller-precomputed planning is added explicitly, so
        // `total_ms`/`qps` are comparable between the two run flavours
        // (and with a standalone run at one parameter value).
        let total_ms = start.elapsed().as_secs_f64() * 1e3 + shared_plans.map_or(0.0, |(_, ms)| ms);
        latencies.sort_by(f64::total_cmp);
        // A zero elapsed time (coarse clock, empty query slice) would
        // make qps infinite — which `{:.3}` renders as `inf`, breaking
        // the JSON artifact. Report 0 instead: "too fast to measure".
        let qps = if total_ms > 0.0 {
            queries.len() as f64 / (total_ms / 1e3)
        } else {
            0.0
        };
        self.rows.push(SweepRow {
            domain: domain.to_string(),
            dataset: dataset.to_string(),
            shards: index.requested_shards(),
            threads,
            batch,
            queries: queries.len(),
            results,
            total_ms,
            qps,
            per_shard_qps: qps / index.requested_shards().max(1) as f64,
            p50_ms: percentile(&latencies, 50.0),
            p95_ms: percentile(&latencies, 95.0),
            p99_ms: percentile(&latencies, 99.0),
            plan_ms,
            plan_us_per_query: plan_ms * 1e3 / queries.len().max(1) as f64,
            dict_build_ms: index.dictionary_build_ms(),
            result_hash: hasher.finish(),
        });
        // lint: allow(panic) — the row was pushed two statements above
        (self.rows.last().expect("row just pushed"), agg)
    }

    /// Renders the recorded rows as the `BENCH_service.json` schema: an
    /// object with a `machine` fingerprint
    /// ([`crate::machine::MachineFingerprint`]) and a `rows` array (one
    /// object per row, snake_case keys). The fingerprint makes rows
    /// comparable across runs — a 1-core container's shard scaling says
    /// nothing about an 8-core host's.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n\"machine\": ");
        out.push_str(&crate::machine::MachineFingerprint::detect().to_json());
        out.push_str(",\n\"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "  {{\"domain\": \"{}\", \"dataset\": \"{}\", \"shards\": {}, \"threads\": {}, \
                 \"batch\": {}, \"queries\": {}, \"results\": {}, \"total_ms\": {:.3}, \
                 \"qps\": {:.3}, \"per_shard_qps\": {:.3}, \"p50_ms\": {:.3}, \
                 \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"plan_ms\": {:.3}, \
                 \"plan_us_per_query\": {:.3}, \"dict_build_ms\": {:.3}, \
                 \"result_hash\": \"{:016x}\"}}{}\n",
                escape(&row.domain),
                escape(&row.dataset),
                row.shards,
                row.threads,
                row.batch,
                row.queries,
                row.results,
                row.total_ms,
                row.qps,
                row.per_shard_qps,
                row.p50_ms,
                row.p95_ms,
                row.p99_ms,
                row.plan_ms,
                row.plan_us_per_query,
                row.dict_build_ms,
                row.result_hash,
                if i + 1 < self.rows.len() { "," } else { "" },
            ));
        }
        out.push_str("]\n}");
        out
    }

    /// Writes [`Sweep::to_json`] to `path`.
    pub fn write_json(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// JSON string escaping: backslash, quote, and control characters (the
/// API accepts arbitrary labels even though ours are ASCII identifiers).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::MergeStats;

    struct EqEngine {
        values: Vec<u32>,
    }

    #[derive(Default)]
    struct NoStats;

    impl MergeStats for NoStats {
        fn merge(&mut self, _other: &Self) {}
    }

    impl SearchEngine for EqEngine {
        type Query = u32;
        type Params = ();
        type Stats = NoStats;
        type Scratch = ();
        type Plan = ();

        fn num_records(&self) -> usize {
            self.values.len()
        }

        fn plan(&self, _scratch: &mut (), _query: &u32) {}

        fn search_planned(
            &self,
            _scratch: &mut (),
            _plan: &(),
            query: &u32,
            _params: &(),
            out: &mut Vec<u32>,
        ) -> NoStats {
            for (id, v) in self.values.iter().enumerate() {
                if v == query {
                    out.push(id as u32);
                }
            }
            NoStats
        }
    }

    fn index(k: usize) -> ShardedIndex<EqEngine> {
        let values: Vec<u32> = (0..64).map(|i| i % 8).collect();
        ShardedIndex::build(values, k, |values| EqEngine { values })
    }

    fn global_index(k: usize) -> ShardedIndex<EqEngine> {
        let values: Vec<u32> = (0..64).map(|i| i % 8).collect();
        ShardedIndex::build_global(values, k, |_| (), |_, values| EqEngine { values })
    }

    #[test]
    fn result_hash_is_shard_invariant() {
        let queries: Vec<u32> = (0..16).map(|i| i % 8).collect();
        let mut sweep = Sweep::new();
        let h1 = sweep
            .run("toy", "t", &index(1), &queries, &(), 4, 1)
            .0
            .result_hash;
        let h4 = sweep
            .run("toy", "t", &index(4), &queries, &(), 4, 4)
            .0
            .result_hash;
        let h7 = sweep
            .run("toy", "t", &index(7), &queries, &(), 3, 2)
            .0
            .result_hash;
        assert_eq!(h1, h4);
        assert_eq!(h1, h7);
        assert_eq!(sweep.rows.len(), 3);
        assert_eq!(sweep.rows[0].queries, 16);
        assert!(sweep.rows[0].results > 0);
    }

    #[test]
    fn result_hash_distinguishes_different_answers() {
        let queries_a: Vec<u32> = vec![0, 1, 2];
        let queries_b: Vec<u32> = vec![0, 1, 3];
        let mut sweep = Sweep::new();
        let ha = sweep
            .run("toy", "a", &index(2), &queries_a, &(), 2, 2)
            .0
            .result_hash;
        let hb = sweep
            .run("toy", "b", &index(2), &queries_b, &(), 2, 2)
            .0
            .result_hash;
        assert_ne!(ha, hb);
    }

    #[test]
    fn labels_with_control_chars_stay_valid_json() {
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("q\"\\\t"), "q\\\"\\\\\\t");
        assert_eq!(escape("\u{1}"), "\\u0001");
        let mut sweep = Sweep::new();
        sweep.run("to\ny", "t\"s", &index(2), &[1u32], &(), 1, 1);
        let json = sweep.to_json();
        assert!(json.contains("\"domain\": \"to\\ny\""));
        assert!(json.contains("\"dataset\": \"t\\\"s\""));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&xs, 50.0), 5.0);
        assert_eq!(percentile(&xs, 95.0), 10.0);
        assert_eq!(percentile(&xs, 99.0), 10.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 10.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[3.5], 99.0), 3.5);
    }

    #[test]
    fn rows_carry_latency_percentiles() {
        let queries: Vec<u32> = (0..32).map(|i| i % 8).collect();
        let mut sweep = Sweep::new();
        sweep.run("toy", "t", &index(2), &queries, &(), 4, 2);
        let row = &sweep.rows[0];
        assert!(row.p50_ms >= 0.0);
        assert!(row.p50_ms <= row.p95_ms);
        assert!(row.p95_ms <= row.p99_ms);
        assert!(row.p99_ms <= row.total_ms);
        let json = sweep.to_json();
        assert!(json.contains("\"p50_ms\""));
        assert!(json.contains("\"p95_ms\""));
        assert!(json.contains("\"p99_ms\""));
    }

    #[test]
    fn rows_carry_plan_and_dictionary_timing() {
        let queries: Vec<u32> = (0..16).map(|i| i % 8).collect();
        let mut sweep = Sweep::new();
        // Legacy build: shards plan internally, so plan_ms stays 0.
        sweep.run("toy", "legacy", &index(2), &queries, &(), 4, 1);
        assert_eq!(sweep.rows[0].plan_ms, 0.0);
        assert_eq!(sweep.rows[0].dict_build_ms, 0.0);
        // Dictionary-first build: the plan phase is timed (possibly 0.0
        // on a coarse clock, but the hash must match the legacy run).
        let g = global_index(2);
        sweep.run("toy", "global", &g, &queries, &(), 4, 1);
        assert!(sweep.rows[1].plan_ms >= 0.0);
        assert_eq!(sweep.rows[0].result_hash, sweep.rows[1].result_hash);
        // Precomputed plans reuse: same answers, caller-measured time.
        let plans = g.plan_batch(&queries).expect("global build plans");
        sweep.run_with_plans("toy", "shared", &g, &queries, &plans, 1.25, &(), 4, 1);
        assert_eq!(sweep.rows[2].result_hash, sweep.rows[1].result_hash);
        assert!(sweep.rows[2].plan_ms >= 1.25);
        let json = sweep.to_json();
        assert!(json.contains("\"plan_ms\""));
        assert!(json.contains("\"plan_us_per_query\""));
        assert!(json.contains("\"dict_build_ms\""));
    }

    #[test]
    fn result_hasher_matches_push_order() {
        let mut a = ResultHasher::new();
        a.push(&[1, 2, 3]);
        a.push(&[]);
        let mut b = ResultHasher::new();
        b.push(&[1, 2, 3]);
        b.push(&[]);
        assert_eq!(a.finish(), b.finish());
        let mut c = ResultHasher::new();
        c.push(&[1, 2]);
        c.push(&[3]);
        assert_ne!(a.finish(), c.finish(), "boundaries are hashed");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut sweep = Sweep::new();
        sweep.run("toy", "t", &index(2), &[1u32, 2], &(), 2, 1);
        let json = sweep.to_json();
        assert!(json.starts_with('{'));
        assert!(json.ends_with('}'));
        assert!(json.contains("\"machine\": {\"arch\": "));
        assert!(json.contains("\"cores\": "));
        assert!(json.contains("\"rows\": [\n"));
        assert!(json.contains("\"domain\": \"toy\""));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("result_hash"));
    }
}
