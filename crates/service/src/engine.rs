//! The uniform engine interface every domain crate adapts to.

/// Per-query statistics that can be aggregated across shards.
///
/// `merge` must be commutative and use saturating arithmetic so that
/// aggregation over any shard order (and over adversarially large batch
/// sweeps) can neither overflow nor depend on worker scheduling.
pub trait MergeStats: Default + Send + 'static {
    /// Folds `other`'s counters into `self`, saturating on overflow.
    fn merge(&mut self, other: &Self);
}

/// A thresholded similarity-search engine usable from the service layer.
///
/// The contract mirrors the four ring engines after their `&self`
/// refactor: the index is immutable at query time, and all per-query
/// mutable state (epoch-stamped dedup arrays, Corollary-2 bitmasks, box
/// caches) lives in an external [`SearchEngine::Scratch`] owned by the
/// calling thread. One engine can therefore serve arbitrarily many
/// threads concurrently, each with its own scratch.
///
/// Everything is `'static` (and queries are `Clone`) so batches can be
/// shipped to the persistent [`WorkerPool`](crate::pool::WorkerPool),
/// whose jobs outlive the caller's stack frame.
pub trait SearchEngine: Send + Sync + 'static {
    /// One query (e.g. a `BitVector`, a byte string, a token set, a
    /// graph).
    type Query: Clone + Send + Sync + 'static;
    /// Per-batch search parameters (threshold, chain length, ...).
    type Params: Clone + Send + Sync + 'static;
    /// Per-query statistics.
    type Stats: MergeStats;
    /// Per-thread scratch space. `Default` must yield a valid (empty)
    /// scratch; engines lazily size it to their record count on first
    /// use.
    type Scratch: Default + Send + 'static;

    /// Number of records indexed by this engine.
    fn num_records(&self) -> usize;

    /// Appends the ids (ascending, local to this engine) of all records
    /// within the threshold of `query` to `out`, returning the per-query
    /// statistics. Must not read `out`'s prior contents.
    fn search_into(
        &self,
        scratch: &mut Self::Scratch,
        query: &Self::Query,
        params: &Self::Params,
        out: &mut Vec<u32>,
    ) -> Self::Stats;
}
