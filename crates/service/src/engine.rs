//! The uniform engine interface every domain crate adapts to.

/// Per-query statistics that can be aggregated across shards.
///
/// `merge` must be commutative and use saturating arithmetic so that
/// aggregation over any shard order (and over adversarially large batch
/// sweeps) can neither overflow nor depend on worker scheduling.
pub trait MergeStats: Default + Send + 'static {
    /// Folds `other`'s counters into `self`, saturating on overflow.
    fn merge(&mut self, other: &Self);

    /// Enumerates this stats struct's fields as `(name, value)` pairs —
    /// the seam telemetry uses to export per-stage filter-chain
    /// counters (candidates, survivors, verifications) without the
    /// exporting layer knowing each domain's field set. Field names
    /// must be stable identifiers (they become metric name suffixes).
    /// The default exports nothing.
    fn visit(&self, _emit: &mut dyn FnMut(&'static str, u64)) {}
}

/// A thresholded similarity-search engine usable from the service layer.
///
/// The contract mirrors the four ring engines after their `&self`
/// refactor: the index is immutable at query time, and all per-query
/// mutable state (epoch-stamped dedup arrays, Corollary-2 bitmasks, box
/// caches) lives in an external [`SearchEngine::Scratch`] owned by the
/// calling thread. One engine can therefore serve arbitrarily many
/// threads concurrently, each with its own scratch.
///
/// Query execution is split into **plan once, execute per shard**:
/// [`SearchEngine::plan`] computes the query-side work (gram interning
/// and prefix/pivotal selection for edit distance, token ranking and
/// k-wise signature enumeration for set similarity) into a
/// [`SearchEngine::Plan`], and [`SearchEngine::search_planned`] executes
/// it against this engine's postings. A plan is only valid for an engine
/// whose *dictionary* agrees with the planning engine's — guaranteed
/// when shards are built dictionary-first
/// ([`ShardedIndex::build_global`](crate::sharded::ShardedIndex::build_global)),
/// in which case the sharded layer plans each query exactly once and
/// hands `&Plan` to every shard worker. Engines without data-dependent
/// query-side work use `type Plan = ()`.
///
/// Everything is `'static` (and queries are `Clone`) so batches can be
/// shipped to the persistent [`WorkerPool`](crate::pool::WorkerPool),
/// whose jobs outlive the caller's stack frame.
pub trait SearchEngine: Send + Sync + 'static {
    /// One query (e.g. a `BitVector`, a byte string, a token set, a
    /// graph).
    type Query: Clone + Send + Sync + 'static;
    /// Per-batch search parameters (threshold, chain length, ...).
    type Params: Clone + Send + Sync + 'static;
    /// Per-query statistics.
    type Stats: MergeStats;
    /// Per-thread scratch space. `Default` must yield a valid (empty)
    /// scratch; engines lazily size it to their record count on first
    /// use.
    type Scratch: Default + Send + 'static;
    /// The precomputed query-side plan shared (read-only) by every
    /// shard. Must not depend on search parameters such as the chain
    /// length `l`, so one plan also serves parameter sweeps. `()` for
    /// engines whose query side needs no preprocessing.
    type Plan: Send + Sync + 'static;

    /// Number of records indexed by this engine.
    fn num_records(&self) -> usize;

    /// Computes `query`'s plan. Must be a pure function of the query and
    /// the engine's *dictionary* (never its postings), so any shard of a
    /// dictionary-sharing build produces an identical plan. `scratch`
    /// lends reusable buffers; no per-record state may be touched.
    fn plan(&self, scratch: &mut Self::Scratch, query: &Self::Query) -> Self::Plan;

    /// Appends the ids (ascending, local to this engine) of all records
    /// within the threshold of `query` to `out` using a precomputed
    /// `plan`, returning the per-query statistics (excluding
    /// [`SearchEngine::plan_stats`], which the caller accounts once per
    /// query). Must not read `out`'s prior contents.
    fn search_planned(
        &self,
        scratch: &mut Self::Scratch,
        plan: &Self::Plan,
        query: &Self::Query,
        params: &Self::Params,
        out: &mut Vec<u32>,
    ) -> Self::Stats;

    /// Statistics attributable to planning (e.g. signatures enumerated
    /// from the query). Merged **once per query** — not once per shard —
    /// by whoever computed the plan.
    fn plan_stats(&self, _plan: &Self::Plan) -> Self::Stats {
        Self::Stats::default()
    }

    /// Plan-and-search in one call: the legacy per-shard path, used when
    /// shards do not share a dictionary (each shard then plans — and
    /// accounts plan statistics — for itself, exactly as before the
    /// plan/execute split).
    fn search_into(
        &self,
        scratch: &mut Self::Scratch,
        query: &Self::Query,
        params: &Self::Params,
        out: &mut Vec<u32>,
    ) -> Self::Stats {
        let plan = self.plan(scratch, query);
        let mut stats = self.search_planned(scratch, &plan, query, params, out);
        stats.merge(&self.plan_stats(&plan));
        stats
    }
}
