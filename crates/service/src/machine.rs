//! Machine fingerprinting: core count, CPU features, and
//! container-vs-host detection.
//!
//! Benchmark artifacts (`BENCH_service.json`, `BENCH_server.json`,
//! `BENCH_kernels.json`) are only comparable across runs when the
//! machine is known — a single-core CI container and an 8-core host
//! produce very different shard/thread scaling, and the SIMD kernels
//! only engage when the CPU reports AVX2. Every artifact therefore
//! embeds a [`MachineFingerprint`], and the core-aware defaults
//! ([`cores`], [`default_shard_counts`], [`WorkerPool::auto`]) derive
//! from the same detection so "what ran" and "what was recorded" cannot
//! drift apart.
//!
//! [`WorkerPool::auto`]: crate::pool::WorkerPool::auto

/// What the current machine looks like, as recorded into benchmark
/// artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineFingerprint {
    /// Target architecture (compile-time, e.g. `x86_64`, `aarch64`).
    pub arch: &'static str,
    /// Cores visible to this process
    /// ([`std::thread::available_parallelism`]; 1 when undetectable).
    pub cores: usize,
    /// Runtime-detected SIMD feature levels relevant to the distance
    /// kernels (subset of `sse4.2`, `avx2`, `avx512f`; empty on
    /// non-x86-64 targets).
    pub cpu_features: Vec<&'static str>,
    /// Whether the process appears to run inside a container
    /// (`/.dockerenv`, `/run/.containerenv`, or container runtimes named
    /// in `/proc/1/cgroup`). Containers often cap cores below the host's,
    /// which is exactly when a recorded baseline stops being comparable.
    pub container: bool,
}

impl MachineFingerprint {
    /// Detects the current machine.
    pub fn detect() -> Self {
        MachineFingerprint {
            arch: std::env::consts::ARCH,
            cores: cores(),
            cpu_features: cpu_features(),
            container: in_container(),
        }
    }

    /// Renders the fingerprint as a single-line JSON object, e.g.
    /// `{"arch": "x86_64", "cores": 1, "cpu_features": ["sse4.2",
    /// "avx2"], "container": true}`.
    pub fn to_json(&self) -> String {
        let features = self
            .cpu_features
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"arch\": \"{}\", \"cores\": {}, \"cpu_features\": [{}], \"container\": {}}}",
            self.arch, self.cores, features, self.container
        )
    }
}

/// Cores visible to this process, clamped to at least 1. The default
/// worker count for [`WorkerPool::auto`](crate::pool::WorkerPool::auto)
/// and the service benchmarks.
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Core-aware default shard counts for throughput sweeps: the paper-era
/// `[1, 2, 4, 8]` ladder, extended by further powers of two up to the
/// first one at or above the visible core count, so an N-core host's
/// sweep actually exercises N-way sharding while a 1-core container
/// keeps the (still meaningful: sharding overhead) 8-shard ceiling.
pub fn default_shard_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 2, 4, 8];
    let cores = cores();
    let mut top = 8usize;
    while top < cores {
        top *= 2;
        counts.push(top);
    }
    counts
}

/// SIMD feature levels relevant to the distance kernels, detected at
/// runtime (not compile-time): a binary built without `--features simd`
/// on an AVX2 host still *reports* `avx2`, which is what makes a
/// recorded scalar baseline interpretable.
fn cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut features = Vec::new();
        if std::arch::is_x86_feature_detected!("sse4.2") {
            features.push("sse4.2");
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            features.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            features.push("avx512f");
        }
        features
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

/// Best-effort container detection (Linux-centric, conservative: absent
/// evidence means "host").
fn in_container() -> bool {
    if std::path::Path::new("/.dockerenv").exists()
        || std::path::Path::new("/run/.containerenv").exists()
    {
        return true;
    }
    std::fs::read_to_string("/proc/1/cgroup").is_ok_and(|cgroup| {
        ["docker", "containerd", "kubepods", "lxc", "podman"]
            .iter()
            .any(|marker| cgroup.contains(marker))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_is_sane() {
        let m = MachineFingerprint::detect();
        assert!(m.cores >= 1);
        assert!(!m.arch.is_empty());
        // Feature list is ordered weakest-first and duplicate-free.
        let mut sorted = m.cpu_features.clone();
        sorted.dedup();
        assert_eq!(sorted, m.cpu_features);
    }

    #[test]
    fn json_has_every_field() {
        let m = MachineFingerprint {
            arch: "x86_64",
            cores: 4,
            cpu_features: vec!["sse4.2", "avx2"],
            container: true,
        };
        assert_eq!(
            m.to_json(),
            "{\"arch\": \"x86_64\", \"cores\": 4, \
             \"cpu_features\": [\"sse4.2\", \"avx2\"], \"container\": true}"
        );
        let empty = MachineFingerprint {
            arch: "aarch64",
            cores: 1,
            cpu_features: vec![],
            container: false,
        };
        assert!(empty.to_json().contains("\"cpu_features\": []"));
    }

    #[test]
    fn shard_ladder_covers_the_machine() {
        let counts = default_shard_counts();
        assert!(counts.starts_with(&[1, 2, 4, 8]));
        assert!(*counts.last().expect("non-empty") >= cores());
        // Strictly doubling powers of two.
        for w in counts.windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn detected_cores_match_helper() {
        assert_eq!(MachineFingerprint::detect().cores, cores());
    }
}
