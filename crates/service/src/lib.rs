//! # pigeonring-service
//!
//! The sharded, batched query-service layer over the four domain engines
//! (Hamming, edit distance, set similarity, graph edit distance).
//!
//! The paper evaluates the pigeonring filters one query at a time; the
//! ROADMAP north-star is a system serving heavy traffic, which needs the
//! batching and shard-parallel execution FAISS-style systems use to
//! amortize per-query overhead. This crate provides the seam:
//!
//! * [`SearchEngine`] — the uniform engine interface. Implementations
//!   take `&self` and keep all per-query mutable state in an external
//!   per-thread [`SearchEngine::Scratch`], so one immutable index can
//!   serve many worker threads concurrently. Query execution is split
//!   into *plan once, execute per shard*: [`SearchEngine::plan`]
//!   computes a query's [`SearchEngine::Plan`] (interned grams, ranked
//!   tokens, enumerated signatures) and
//!   [`SearchEngine::search_planned`] executes it against one shard's
//!   postings.
//! * [`MergeStats`] — saturating aggregation of per-query counters, so
//!   per-shard statistics can be combined without overflow or drift.
//! * [`WorkerPool`] — a persistent, channel-fed worker pool whose
//!   workers each own a long-lived, type-erased [`ScratchStore`]; spawned
//!   once and reused across batches, indexes, and domains (it also backs
//!   the `pigeonring-server` network frontend).
//! * [`ShardedIndex`] — hash-partitions records across `N` shards, fans a
//!   query batch out over the worker pool (one job per shard), and merges
//!   per-shard result sets back into stable ascending record-id order.
//!   [`ShardedIndex::build_global`] is the dictionary-first build: one
//!   corpus-wide dictionary, shard-local postings, and each query's plan
//!   computed exactly once ([`ShardedIndex::plan_batch`]) and shared by
//!   every shard worker. Because every engine verifies candidates
//!   exactly, the merged result set is *identical* to the unsharded
//!   engine's for any shard count and either build path
//!   (property-tested across all four domains).
//! * [`Sweep`] — a throughput-sweep driver used by the `repro` binary's
//!   `--shards K --batch B` flags and `sweep` subcommand; emits the
//!   `BENCH_service.json` artifact consumed by CI.
//!
//! The adapter impls for [`RingHamming`], [`RingEdit`], [`RingSetSim`]
//! and [`RingGraph`] live in the respective domain crates, each in a
//! `service` module. (This is a layout choice, not an orphan-rule
//! obligation — `SearchEngine` is local here, so the impls could equally
//! live in this crate; keeping them next to the engines lets each
//! adapter touch crate-private details such as query translation.)
//!
//! [`RingHamming`]: https://docs.rs/pigeonring-hamming
//! [`RingEdit`]: https://docs.rs/pigeonring-editdist
//! [`RingSetSim`]: https://docs.rs/pigeonring-setsim
//! [`RingGraph`]: https://docs.rs/pigeonring-graph

pub mod engine;
pub mod machine;
pub mod pool;
pub mod sharded;
pub mod sweep;

pub use engine::{MergeStats, SearchEngine};
pub use machine::{cores, default_shard_counts, MachineFingerprint};
pub use pool::{JobRejected, PoolMetrics, ScratchStore, WorkerPool};
pub use sharded::{shard_of, IndexMetrics, SearchResult, ShardedIndex};
pub use sweep::{percentile, ResultHasher, Sweep, SweepRow};

/// The telemetry crate, re-exported so downstream layers (server,
/// bench CLI) share one metrics implementation without naming the
/// crate in their own manifests' dependency lists twice.
pub use pigeonring_telemetry as telemetry;
