//! Wire-protocol coverage: round-trip property tests for every
//! request/response variant — including the v2 request ids — plus
//! malformed-frame tests asserting the codec fails closed with a typed
//! [`WireError`], never a panic.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use pigeonring_graph::Graph;
use pigeonring_hamming::BitVector;
use pigeonring_server::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    DomainQuery, ErrorCode, Request, Response, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION,
};

/// Deterministic random graph: `n` vertices, edge density from `seed`.
fn random_graph(seed: u64, n: usize) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vlabels: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..8)).collect();
    let mut g = Graph::new(vlabels);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_range(0u32..3) == 0 {
                g.add_edge(u, v, rng.gen_range(0u32..4));
            }
        }
    }
    g
}

fn assert_request_round_trips(req: &Request) {
    let payload = encode_request(req);
    let back = decode_request(&payload).expect("encoded request decodes");
    assert_eq!(&back, req);
}

fn assert_response_round_trips(resp: &Response) {
    let payload = encode_response(resp);
    let back = decode_response(&payload).expect("encoded response decodes");
    assert_eq!(&back, resp);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hello_round_trips(v in 0u64..256) {
        assert_request_round_trips(&Request::Hello { max_version: v as u8 });
    }

    #[test]
    fn hamming_query_round_trips(
        request_id in prop::num::u64::ANY,
        bits in prop::collection::vec(prop::bool::ANY, 1..200),
        tau in 0u32..512,
        l in 0u32..16,
        explain in prop::bool::ANY,
    ) {
        assert_request_round_trips(&Request::Query {
            request_id,
            query: DomainQuery::Hamming {
                query: BitVector::from_bits(bits),
                tau,
                l,
            },
            explain,
        });
    }

    #[test]
    fn edit_query_round_trips(
        request_id in prop::num::u64::ANY,
        bytes in prop::collection::vec(0u64..256, 0..64),
        l in 0u32..8,
        explain in prop::bool::ANY,
    ) {
        let query: Vec<u8> = bytes.into_iter().map(|b| b as u8).collect();
        assert_request_round_trips(&Request::Query {
            request_id,
            query: DomainQuery::Edit { query, l },
            explain,
        });
    }

    #[test]
    fn set_query_round_trips(
        request_id in prop::num::u64::ANY,
        tokens in prop::collection::vec(prop::num::u64::ANY, 0..64),
        l in 0u32..8,
        explain in prop::bool::ANY,
    ) {
        let tokens: Vec<u32> = tokens.into_iter().map(|t| t as u32).collect();
        assert_request_round_trips(&Request::Query {
            request_id,
            query: DomainQuery::Set { tokens, l },
            explain,
        });
    }

    #[test]
    fn graph_query_round_trips(
        request_id in prop::num::u64::ANY,
        seed in prop::num::u64::ANY,
        n in 1u64..10,
        l in 0u32..8,
        explain in prop::bool::ANY,
    ) {
        assert_request_round_trips(&Request::Query {
            request_id,
            query: DomainQuery::Graph {
                query: random_graph(seed, n as usize),
                l,
            },
            explain,
        });
    }

    #[test]
    fn hello_ok_round_trips(v in 0u64..256) {
        assert_response_round_trips(&Response::HelloOk { version: v as u8 });
    }

    #[test]
    fn results_round_trip(
        request_id in prop::num::u64::ANY,
        ids in prop::collection::vec(prop::num::u64::ANY, 0..256),
    ) {
        let ids: Vec<u32> = ids.into_iter().map(|i| i as u32).collect();
        assert_response_round_trips(&Response::Results { request_id, ids });
    }

    #[test]
    fn error_round_trips(
        request_id in prop::num::u64::ANY,
        code in 0u64..5,
        msg in prop::collection::vec(0u64..0xd800, 0..32),
    ) {
        let code = [
            ErrorCode::UnsupportedVersion,
            ErrorCode::Malformed,
            ErrorCode::InvalidQuery,
            ErrorCode::Unavailable,
            ErrorCode::Internal,
        ][code as usize];
        let message: String = msg
            .into_iter()
            .filter_map(|c| char::from_u32(c as u32))
            .collect();
        assert_response_round_trips(&Response::Error { request_id, code, message });
    }

    #[test]
    fn busy_round_trips(request_id in prop::num::u64::ANY) {
        assert_response_round_trips(&Response::Busy { request_id });
    }

    /// The request id survives the round trip bit-exactly — pipelining
    /// correctness rests on this.
    #[test]
    fn request_id_is_preserved_exactly(request_id in prop::num::u64::ANY) {
        let req = Request::Query {
            request_id,
            query: DomainQuery::Set { tokens: vec![1, 2], l: 1 },
            explain: false,
        };
        let Request::Query { request_id: back, .. } =
            decode_request(&encode_request(&req)).expect("decodes")
        else {
            panic!("wrong variant");
        };
        prop_assert_eq!(back, request_id);
        let resp = Response::Results { request_id, ids: vec![3] };
        prop_assert_eq!(
            decode_response(&encode_response(&resp)).expect("decodes").request_id(),
            request_id
        );
    }

    /// Any truncation of a valid frame decodes to a typed error — never
    /// panics, never a bogus success.
    #[test]
    fn truncated_payloads_fail_closed(
        bits in prop::collection::vec(prop::bool::ANY, 1..100),
        cut in prop::num::u64::ANY,
    ) {
        let payload = encode_request(&Request::Query {
            request_id: 7,
            query: DomainQuery::Hamming {
                query: BitVector::from_bits(bits),
                tau: 5,
                l: 3,
            },
            explain: true,
        });
        let cut = 1 + (cut as usize) % (payload.len() - 1);
        let result = decode_request(&payload[..cut]);
        prop_assert!(
            matches!(result, Err(WireError::Truncated)),
            "cut at {} gave {:?}",
            cut,
            result
        );
    }

    #[test]
    fn stats_request_round_trips(request_id in prop::num::u64::ANY) {
        assert_request_round_trips(&Request::Stats { request_id });
    }

    #[test]
    fn stats_response_round_trips(
        request_id in prop::num::u64::ANY,
        body in prop::collection::vec(0u64..0xd800, 0..256),
    ) {
        let json: String = body
            .into_iter()
            .filter_map(|c| char::from_u32(c as u32))
            .collect();
        assert_response_round_trips(&Response::Stats { request_id, json });
    }

    /// Any truncation of a Stats snapshot frame decodes to a typed
    /// error — the length-prefixed JSON body cannot half-parse.
    #[test]
    fn truncated_stats_response_fails_closed(
        body in prop::collection::vec(0x20u64..0x7f, 1..64),
        cut in prop::num::u64::ANY,
    ) {
        let json: String = body
            .into_iter()
            .filter_map(|c| char::from_u32(c as u32))
            .collect();
        let payload = encode_response(&Response::Stats { request_id: 7, json });
        let cut = 1 + (cut as usize) % (payload.len() - 1);
        let result = decode_response(&payload[..cut]);
        prop_assert!(
            matches!(result, Err(WireError::Truncated)),
            "cut at {} gave {:?}",
            cut,
            result
        );
    }

    /// Flipping the tag to an unassigned value is a typed BadTag
    /// (0x01–0x07 are assigned requests, 0x81+ responses).
    #[test]
    fn unknown_tags_fail_closed(tag in 0x08u64..0x81) {
        let mut payload = encode_request(&Request::Hello { max_version: 2 });
        payload[1] = tag as u8;
        prop_assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadTag(t)) if t == tag as u8
        ));
    }
}

#[test]
fn truncated_length_prefix_is_typed() {
    for cut in 1..4 {
        let mut framed = Vec::new();
        write_frame(&mut framed, b"xyzw").expect("write to vec");
        let mut r = &framed[..cut];
        assert!(
            matches!(read_frame(&mut r), Err(WireError::Truncated)),
            "cut at {cut}"
        );
    }
}

#[test]
fn oversized_frame_is_typed() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(MAX_FRAME_LEN + 7).to_le_bytes());
    buf.extend_from_slice(&[0; 16]);
    let mut r = &buf[..];
    assert!(matches!(read_frame(&mut r), Err(WireError::Oversized(_))));
}

#[test]
fn wrong_version_is_typed() {
    // 1 is the retired v1: its frames draw the same typed BadVersion as
    // any other unknown version — there is no silent downgrade.
    for version in [0u8, 1, 7, 255] {
        let mut payload = encode_request(&Request::Query {
            request_id: 1,
            query: DomainQuery::Edit {
                query: b"abc".to_vec(),
                l: 1,
            },
            explain: false,
        });
        payload[0] = version;
        if version == PROTOCOL_VERSION {
            continue;
        }
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::BadVersion(v)) if v == version
        ));
    }
}

#[test]
fn response_decoder_rejects_request_tags_and_vice_versa() {
    let req = encode_request(&Request::Hello { max_version: 2 });
    assert!(matches!(
        decode_response(&req),
        Err(WireError::BadTag(0x01))
    ));
    let resp = encode_response(&Response::Busy { request_id: 1 });
    assert!(matches!(
        decode_request(&resp),
        Err(WireError::BadTag(0x83))
    ));
}
