//! Live-telemetry acceptance: a loopback server answers a known query
//! batch, then `Request::Stats` must return a snapshot whose per-domain
//! query counters match the batch exactly, whose filter-chain stage
//! counters equal an identically-built engine set's own merged stats
//! (engines built from equal specs are bit-identical, and stats are
//! batching-invariant), and which embeds the machine fingerprint and
//! per-lane depth gauges.

mod common;

use std::net::TcpListener;
use std::sync::Arc;

use pigeonring_server::server::Backend;
use pigeonring_server::wire::Domain;
use pigeonring_server::{start, Client, EngineSet, EngineSpec, Outcome, ServerConfig};
use pigeonring_service::WorkerPool;
use pigeonring_telemetry::{json, MetricsRegistry};

fn tiny_spec() -> EngineSpec {
    EngineSpec {
        shards: 2,
        hamming_n: 400,
        edit_n: 300,
        set_n: 300,
        graph_n: 80,
        query_count: 6,
        ..EngineSpec::full()
    }
}

const QUERIES_PER_DOMAIN: usize = 3;

#[test]
fn stats_snapshot_matches_known_query_batch() {
    common::for_each_backend(stats_snapshot_matches_known_query_batch_on);
}

fn stats_snapshot_matches_known_query_batch_on(backend: Backend) {
    let spec = tiny_spec();
    let engines = Arc::new(EngineSet::build(spec.clone()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(2),
        ServerConfig {
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut sent = Vec::new();
    for domain in Domain::ALL {
        let queries = spec.sample_queries(domain);
        for q in queries.into_iter().take(QUERIES_PER_DOMAIN) {
            let outcome = client.search(q.clone()).expect("query answered");
            assert!(matches!(outcome, Outcome::Results(_)), "{domain}");
            sent.push(q);
        }
    }

    let snapshot = client.stats().expect("stats answered");
    let doc = json::parse(&snapshot).expect("snapshot is valid JSON");

    // Satellite: the machine fingerprint is embedded in every snapshot.
    let machine = doc.get("machine").expect("machine fingerprint present");
    assert!(machine.get("arch").and_then(json::Value::as_str).is_some());
    assert!(
        machine
            .get("cores")
            .and_then(json::Value::as_u64)
            .expect("cores")
            >= 1
    );
    assert!(doc.get("uptime_ms").and_then(json::Value::as_u64).is_some());

    let metrics = doc.get("metrics").expect("metrics section");
    let counters = metrics.get("counters").expect("counters section");
    let counter = |name: &str| {
        counters
            .get(name)
            .and_then(json::Value::as_u64)
            .unwrap_or_else(|| panic!("counter {name} missing from snapshot"))
    };

    // N queries per domain ⇒ exactly N per-domain increments, at both
    // the admission (lane) and execution (service) layers.
    for domain in Domain::ALL {
        assert_eq!(
            counter(&format!("service.{domain}.queries")),
            QUERIES_PER_DOMAIN as u64,
            "service query counter for {domain}"
        );
        assert_eq!(
            counter(&format!("server.lane.{domain}.admitted")),
            QUERIES_PER_DOMAIN as u64,
            "lane admission counter for {domain}"
        );
    }

    // Per-lane depth gauges are present and drained back to zero.
    let gauges = metrics.get("gauges").expect("gauges section");
    for domain in Domain::ALL {
        let depth = gauges
            .get(&format!("server.lane.{domain}.depth"))
            .and_then(json::Value::as_i64)
            .unwrap_or_else(|| panic!("depth gauge for {domain} missing"));
        assert_eq!(depth, 0, "{domain} lane drained");
        assert_eq!(handle.lane_len(domain), 0, "{domain} lane_len via gauge");
    }
    assert_eq!(handle.queue_len(), 0, "queue_len via gauges");

    // Latency histograms saw every query.
    let histograms = metrics.get("histograms").expect("histograms section");
    for domain in Domain::ALL {
        let count = histograms
            .get(&format!("server.{domain}.latency_us"))
            .and_then(|h| h.get("count"))
            .and_then(json::Value::as_u64)
            .unwrap_or_else(|| panic!("latency histogram for {domain} missing"));
        assert_eq!(count, QUERIES_PER_DOMAIN as u64, "latency count {domain}");
    }

    // Stage counters are the engines' own numbers: a second engine set
    // built from the equal spec (⇒ bit-identical indexes) running the
    // same queries must produce equal `service.*` counters — stats are
    // batching-invariant, so the grouping difference does not matter.
    let reference = EngineSet::build(spec);
    let registry = MetricsRegistry::new();
    reference.attach_metrics(&registry);
    let pool = WorkerPool::new(2);
    reference.run(&pool, sent);
    for (name, expected) in registry.snapshot().counters {
        assert_eq!(
            counter(&name),
            expected,
            "server-reported {name} must equal the reference engines' own stats"
        );
    }

    // No slow-query threshold configured ⇒ the log is present but empty.
    let slow = doc.get("slow_queries").expect("slow_queries section");
    match slow {
        json::Value::Arr(items) => assert!(items.is_empty(), "no threshold set"),
        other => panic!("slow_queries should be an array, got {other:?}"),
    }

    handle.shutdown();
}
