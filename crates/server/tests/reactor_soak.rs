//! Reactor soak: the nonblocking backend under the exact traffic shape
//! it exists for — hundreds of concurrent *idle* connections (which
//! must cost file descriptors, not threads or correctness) while a few
//! active connections stream queries as deliberately fragmented frames
//! (every frame split into tiny byte chunks across many writes, so the
//! reactor's incremental decoder reassembles partial frames constantly)
//! — and the answers must still be hash-identical to a direct
//! in-process `search_batch` run.

#![cfg(unix)]

mod common;

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use pigeonring_server::server::Backend;
use pigeonring_server::wire::{encode_request, read_frame, Domain, DomainQuery, Request, Response};
use pigeonring_server::{start, Client, EngineSet, EngineSpec, ServerConfig, PROTOCOL_VERSION};
use pigeonring_service::{ResultHasher, WorkerPool};
use pigeonring_telemetry::json::{self, Value};

/// How many idle negotiated connections stay parked on the reactor.
const IDLE_CONNS: usize = 256;

/// Bytes per write on the active connections: small enough that every
/// frame (length prefix included) is split across several reads.
const CHUNK: usize = 3;

fn tiny_spec() -> EngineSpec {
    EngineSpec {
        shards: 3,
        hamming_n: 400,
        edit_n: 300,
        set_n: 300,
        graph_n: 80,
        query_count: 6,
        ..EngineSpec::full()
    }
}

/// One active connection's scripted traffic: the Hello frame plus one
/// Query frame per (request_id, query), all serialized back to back so
/// the chunker can split them at arbitrary byte offsets.
fn script(queries: &[(u64, DomainQuery)]) -> Vec<u8> {
    let mut bytes = Vec::new();
    let mut push = |req: &Request| {
        let payload = encode_request(req);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
    };
    push(&Request::Hello {
        max_version: PROTOCOL_VERSION,
    });
    for (request_id, query) in queries {
        push(&Request::Query {
            request_id: *request_id,
            query: query.clone(),
            explain: false,
        });
    }
    bytes
}

/// Reads `expect` responses (after the HelloOk) off one connection,
/// returning `(request_id, ids)` pairs.
fn read_replies(stream: &mut TcpStream, expect: usize) -> Vec<(u64, Vec<u32>)> {
    let hello = read_frame(stream)
        .expect("hello reply")
        .expect("server answers hello");
    assert!(matches!(
        pigeonring_server::wire::decode_response(&hello).expect("decodes"),
        Response::HelloOk { .. }
    ));
    (0..expect)
        .map(|_| {
            let payload = read_frame(stream)
                .expect("reply frame")
                .expect("server answers every query");
            match pigeonring_server::wire::decode_response(&payload).expect("decodes") {
                Response::Results { request_id, ids } => (request_id, ids),
                other => panic!("soak queries must succeed, got {other:?}"),
            }
        })
        .collect()
}

#[test]
fn soak_idle_connections_and_fragmented_frames_match_in_process() {
    let spec = tiny_spec();
    let engines = Arc::new(EngineSet::build(spec.clone()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(2),
        ServerConfig {
            backend: Backend::Reactor,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // Park IDLE_CONNS fully negotiated connections on the reactor.
    // They stay open (and readable-armed) for the whole test.
    let idle: Vec<Client> = (0..IDLE_CONNS)
        .map(|_| Client::connect(addr).expect("idle connect"))
        .collect();

    // The connection gauge sees every parked connection — this is the
    // load the threaded backend would pay ~2 threads each for.
    let stats = json::parse(&handle.stats_json()).expect("stats JSON");
    let conns = stats
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.get("server.conns"))
        .and_then(Value::as_i64)
        .expect("server.conns gauge present");
    assert!(
        conns >= IDLE_CONNS as i64,
        "conns gauge must count the parked connections, got {conns}"
    );

    // Two active connections split the four domains between them; every
    // request id is globally unique so replies can't be cross-matched.
    let mut plans: [Vec<(u64, DomainQuery)>; 2] = [Vec::new(), Vec::new()];
    let mut next_id = 1u64;
    for (di, domain) in Domain::ALL.into_iter().enumerate() {
        for q in spec.sample_queries(domain) {
            plans[di % 2].push((next_id, q));
            next_id += 1;
        }
    }

    let mut streams: Vec<TcpStream> = plans
        .iter()
        .map(|_| TcpStream::connect(addr).expect("active connect"))
        .collect();
    for s in &streams {
        s.set_nodelay(true).expect("nodelay");
    }

    // Readers collect replies concurrently so the reply budget drains
    // while the writers are still dribbling bytes.
    let readers: Vec<_> = streams
        .iter()
        .zip(&plans)
        .map(|(stream, plan)| {
            let mut stream = stream.try_clone().expect("clone for reading");
            let expect = plan.len();
            std::thread::spawn(move || read_replies(&mut stream, expect))
        })
        .collect();

    // Interleave tiny chunks across the active connections: the reactor
    // sees partial frames on every wakeup and must carry the remainder
    // in each connection's decoder between readiness events.
    let scripts: Vec<Vec<u8>> = plans.iter().map(|p| script(p)).collect();
    let mut offsets = vec![0usize; scripts.len()];
    loop {
        let mut progressed = false;
        for (i, bytes) in scripts.iter().enumerate() {
            if offsets[i] >= bytes.len() {
                continue;
            }
            let end = (offsets[i] + CHUNK).min(bytes.len());
            streams[i]
                .write_all(&bytes[offsets[i]..end])
                .expect("chunked write");
            streams[i].flush().expect("flush chunk");
            offsets[i] = end;
            progressed = true;
        }
        if !progressed {
            break;
        }
        // Yield so reads genuinely interleave with the dribbled writes.
        std::thread::sleep(Duration::from_micros(200));
    }

    // Every reply must match the in-process run bit-for-bit, per domain.
    let mut replies: Vec<(u64, Vec<u32>)> = Vec::new();
    for reader in readers {
        replies.extend(reader.join().expect("reader thread"));
    }
    let by_id: std::collections::HashMap<u64, Vec<u32>> = replies.into_iter().collect();
    let mut next_id = 1u64;
    for domain in Domain::ALL {
        let queries = spec.sample_queries(domain);
        let mut hasher = ResultHasher::new();
        for _ in &queries {
            let ids = by_id
                .get(&next_id)
                .unwrap_or_else(|| panic!("request {next_id} unanswered"));
            hasher.push(ids);
            next_id += 1;
        }
        assert_eq!(
            hasher.finish(),
            common::in_process_hash(&engines, domain, &queries),
            "fragmented-frame soak differs from in-process search_batch for {domain}"
        );
    }

    // The reactor actually ran on readiness events, and the parked
    // connections are still all alive after the churn.
    let stats = json::parse(&handle.stats_json()).expect("stats JSON");
    let wakeups = stats
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("server.reactor.wakeups"))
        .and_then(Value::as_u64)
        .expect("server.reactor.wakeups counter present");
    assert!(wakeups > 0, "reactor served this without a single wakeup?");
    drop(idle);
    handle.shutdown();
}
