//! Pipelining and weighted-fair queueing end to end:
//!
//! * many requests in flight on one connection, responses matched to
//!   requests by id — including the out-of-order case;
//! * a saturated, stalled graph lane while Hamming requests are still
//!   admitted *and answered* (the head-of-line-blocking fix).

mod common;

use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pigeonring_hamming::BitVector;
use pigeonring_server::server::{start_with_handler, Backend, Handler, ServerConfig};
use pigeonring_server::wire::{Domain, DomainQuery, Response, CONNECTION_REQUEST_ID};
use pigeonring_server::{Client, LaneWeightPolicy, Outcome};

fn set_query(tag: u32) -> DomainQuery {
    DomainQuery::Set {
        tokens: vec![tag],
        l: 1,
    }
}

fn hamming_query(tag: u32) -> DomainQuery {
    DomainQuery::Hamming {
        query: BitVector::from_bits((0..8).map(|b| (tag >> b) & 1 == 1)),
        tau: 1,
        l: 1,
    }
}

fn graph_query(tag: u32) -> DomainQuery {
    DomainQuery::Graph {
        query: pigeonring_graph::Graph::new(vec![tag]),
        l: 1,
    }
}

/// The tag a test query carries (how handlers echo identity back).
fn tag_of(q: &DomainQuery) -> u32 {
    match q {
        DomainQuery::Set { tokens, .. } => tokens[0],
        DomainQuery::Graph { query, .. } => query.vlabels()[0],
        DomainQuery::Hamming { query, .. } => (0..8).map(|b| (query.get(b) as u32) << b).sum(),
        DomainQuery::Edit { query, .. } => query[0] as u32,
    }
}

fn echo(tag: u32) -> Response {
    Response::Results {
        request_id: CONNECTION_REQUEST_ID,
        ids: vec![tag],
    }
}

fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Two dispatchers, micro-batches of one: the first query stalls in
/// dispatcher A while the second flows through dispatcher B, so the
/// client receives the *second* request's response first and must match
/// by id.
#[test]
fn out_of_order_responses_are_matched_by_id() {
    common::for_each_backend(out_of_order_responses_are_matched_by_id_on);
}

fn out_of_order_responses_are_matched_by_id_on(backend: Backend) {
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let handler: Handler = Arc::new(move |queries: Vec<DomainQuery>, _traces, emit| {
        for (i, q) in queries.iter().enumerate() {
            let tag = tag_of(q);
            if tag == 0 {
                // The stalling query: park until the test opens the gate.
                started_tx.send(()).expect("test alive");
                gate_rx
                    .lock()
                    .expect("gate lock")
                    .recv()
                    .expect("gate open");
            }
            emit(i, echo(tag));
        }
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start_with_handler(
        listener,
        handler,
        ServerConfig {
            backend,
            lane_depth: 8,
            micro_batch: 1,
            dispatchers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let id0 = client.send_query(set_query(0)).expect("send q0");
    started_rx.recv().expect("q0 reached a dispatcher");
    let id1 = client.send_query(set_query(1)).expect("send q1");
    assert_ne!(id0, id1);

    // q1's answer must arrive while q0 is still stalled: out of order.
    let (first_id, first) = client.recv_reply().expect("first reply");
    assert_eq!(
        (first_id, first),
        (id1, Outcome::Results(vec![1])),
        "the later, unstalled request answers first"
    );

    gate_tx.send(()).expect("open gate");
    let (second_id, second) = client.recv_reply().expect("second reply");
    assert_eq!((second_id, second), (id0, Outcome::Results(vec![0])));
    handle.shutdown();
}

/// `search_pipelined` returns outcomes in *query order* even when the
/// server interleaves completions across N in-flight requests.
#[test]
fn pipelined_outcomes_return_in_query_order() {
    common::for_each_backend(pipelined_outcomes_return_in_query_order_on);
}

fn pipelined_outcomes_return_in_query_order_on(backend: Backend) {
    // Reverse each micro-batch's completion order so positions and ids
    // genuinely disagree within every batch.
    let handler: Handler = Arc::new(|queries: Vec<DomainQuery>, _traces, emit| {
        for (i, q) in queries.iter().enumerate().rev() {
            emit(i, echo(tag_of(q)));
        }
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start_with_handler(
        listener,
        handler,
        ServerConfig {
            backend,
            lane_depth: 32,
            micro_batch: 4,
            dispatchers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    let queries: Vec<DomainQuery> = (0..16).map(|i| set_query(100 + i)).collect();
    let outcomes = client
        .search_pipelined(&queries, 8)
        .expect("pipelined round trip");
    assert_eq!(outcomes.len(), queries.len());
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            *outcome,
            Outcome::Results(vec![100 + i as u32]),
            "outcome {i} must belong to query {i}"
        );
    }
    handle.shutdown();
}

/// A connection may pipeline at most `conn_in_flight` responses
/// (admitted or unwritten): beyond that the server stops *reading* the
/// connection — bounded buffering — yet every request is eventually
/// answered once replies drain.
#[test]
fn reply_buffering_is_bounded_per_connection() {
    common::for_each_backend(reply_buffering_is_bounded_per_connection_on);
}

fn reply_buffering_is_bounded_per_connection_on(backend: Backend) {
    const CAP: usize = 2;
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let handler: Handler = Arc::new(move |queries: Vec<DomainQuery>, _traces, emit| {
        started_tx.send(()).expect("test alive");
        gate_rx
            .lock()
            .expect("gate lock")
            .recv()
            .expect("gate open");
        for (i, q) in queries.iter().enumerate() {
            emit(i, echo(tag_of(q)));
        }
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start_with_handler(
        listener,
        handler,
        ServerConfig {
            backend,
            lane_depth: 64,
            micro_batch: 1,
            dispatchers: 1,
            conn_in_flight: CAP,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    // Send far more than the budget while the handler stalls. The
    // reader admits the first CAP (one reaches the dispatcher, the
    // rest queue), then stops reading — the lane must never hold more
    // than the budget, however hard the client pushes.
    const N: u32 = 12;
    let ids: Vec<u64> = (0..N)
        .map(|i| client.send_query(set_query(i)).expect("send"))
        .collect();
    started_rx.recv().expect("first query reached the handler");
    // Give the reader every chance to (incorrectly) admit more.
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        handle.lane_len(Domain::Set) <= CAP,
        "admitted-or-buffered responses must stay within the {CAP}-slot \
         budget, lane holds {}",
        handle.lane_len(Domain::Set)
    );

    // Drain: as the client reads replies, the budget frees and the
    // remaining requests flow; every id is answered exactly once.
    for _ in 0..N {
        gate_tx.send(()).expect("dispatcher alive");
    }
    let mut seen = Vec::new();
    for _ in 0..N {
        let (id, outcome) = client.recv_reply().expect("reply");
        let Outcome::Results(tags) = outcome else {
            panic!("unexpected outcome {outcome:?}");
        };
        seen.push((id, tags[0]));
    }
    seen.sort_unstable();
    let expect: Vec<(u64, u32)> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as u32))
        .collect();
    assert_eq!(seen, expect, "every pipelined request answered by id");
    handle.shutdown();
}

/// The headline fairness property, per the weighted-fair design:
///
/// 1. a stalled GED burst saturates *only* graph's lane — graph draws
///    `Busy` while Hamming is still admitted into its own lane;
/// 2. the next micro-batch is assembled by weighted round-robin (it
///    contains the Hamming query even though four graph queries queued
///    strictly earlier) and the handler streams the Hamming reply
///    *before* stalling on the batch's graph share — so Hamming is
///    answered while GED work is still stalled and graph backlog
///    remains queued.
#[test]
fn hamming_answered_while_graph_lane_is_saturated() {
    common::for_each_backend(hamming_answered_while_graph_lane_is_saturated_on);
}

fn hamming_answered_while_graph_lane_is_saturated_on(backend: Backend) {
    const LANE: usize = 4;
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let (started_tx, started_rx) = mpsc::channel::<()>();
    // Graph queries stall on the gate; everything else answers
    // immediately. Crucially the handler emits the fast queries of a
    // mixed batch *before* stalling — the same order the real
    // `EngineSet::run_streaming` uses (fast domains first).
    let handler: Handler = Arc::new(move |queries: Vec<DomainQuery>, _traces, emit| {
        for (i, q) in queries.iter().enumerate() {
            if !matches!(q, DomainQuery::Graph { .. }) {
                emit(i, echo(tag_of(q)));
            }
        }
        for (i, q) in queries.iter().enumerate() {
            if matches!(q, DomainQuery::Graph { .. }) {
                started_tx.send(()).expect("test alive");
                gate_rx
                    .lock()
                    .expect("gate lock")
                    .recv()
                    .expect("gate open");
                emit(i, echo(tag_of(q)));
            }
        }
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    // One dispatcher so the stall is total: fairness must come from the
    // WRR batch mix plus reply streaming, not from a free dispatcher.
    let handle = start_with_handler(
        listener,
        handler,
        ServerConfig {
            backend,
            lane_depth: LANE,
            micro_batch: 2,
            dispatchers: 1,
            lane_weights: LaneWeightPolicy::Static([1, 1, 1, 1]),
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = handle.addr();

    // A pipelined connection floods graph: the first query reaches the
    // dispatcher and stalls, LANE more fill the lane to capacity.
    let mut flood = Client::connect(addr).expect("connect");
    let mut flood_ids = vec![flood.send_query(graph_query(50)).expect("send")];
    started_rx.recv().expect("first graph query stalls");
    for i in 1..=LANE as u32 {
        flood_ids.push(flood.send_query(graph_query(50 + i)).expect("send"));
    }
    wait_for("graph lane to fill", || {
        handle.lane_len(Domain::Graph) == LANE
    });

    // Graph admission is now exhausted: one more graph query draws
    // Busy…
    let mut probe = Client::connect(addr).expect("connect");
    assert_eq!(
        probe.search(graph_query(99)).expect("probe"),
        Outcome::Busy,
        "saturated graph lane must reject"
    );

    // …while Hamming is still admitted: per-lane budgets.
    let hamming_done = {
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).expect("connect");
            let got = c
                .search(hamming_query(7))
                .expect("hamming while graph stalls");
            tx.send(got).expect("test alive");
        });
        rx
    };
    wait_for("hamming to be admitted", || {
        handle.lane_len(Domain::Hamming) == 1
    });

    // Release only the head graph query. The dispatcher's next WRR
    // batch holds the Hamming query plus one graph query (not two
    // graph: round-robin visits hamming's lane in between); the
    // handler answers Hamming first, then stalls on that graph query —
    // Hamming completes while GED is stalled and backlog remains.
    gate_tx.send(()).expect("dispatcher alive");
    let got = hamming_done
        .recv_timeout(Duration::from_secs(10))
        .expect("hamming must be answered while graph work is stalled");
    assert_eq!(got, Outcome::Results(vec![7]));
    assert!(
        handle.lane_len(Domain::Graph) > 0,
        "graph backlog still queued behind the stall"
    );

    // Unstall fully and verify every admitted graph query still
    // completes, matched to its id.
    for _ in 0..LANE {
        gate_tx.send(()).expect("dispatcher alive");
    }
    let mut seen = Vec::new();
    for _ in &flood_ids {
        let (id, outcome) = flood.recv_reply().expect("flood reply");
        let Outcome::Results(ids) = outcome else {
            panic!("graph query failed: {outcome:?}");
        };
        seen.push((id, ids[0]));
    }
    seen.sort_unstable();
    let expect: Vec<(u64, u32)> = flood_ids
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, 50 + i as u32))
        .collect();
    assert_eq!(seen, expect, "every admitted graph query answered by id");
    handle.shutdown();
}
