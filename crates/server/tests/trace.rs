//! Trace-correctness acceptance: a loopback server with 1-in-1
//! sampling must produce, for every query, a span tree with valid
//! parentage (no dangling parents), the full stage ladder — queue
//! wait, dispatch, plan, pool, per-shard execution — under one `query`
//! root, and per-filter-stage counts **bit-identical** to the engines'
//! own [`MergeStats`](pigeonring_service::MergeStats) from an identically
//! built in-process run. Also covers the per-query EXPLAIN flag: same
//! ids as the plain path, span tree inline with the answer.

mod common;

use std::net::TcpListener;
use std::sync::Arc;

use pigeonring_editdist::EditParams;
use pigeonring_graph::GraphParams;
use pigeonring_hamming::HammingParams;
use pigeonring_server::server::Backend;
use pigeonring_server::wire::{Domain, DomainQuery};
use pigeonring_server::{start, Client, EngineSet, EngineSpec, Outcome, ServerConfig};
use pigeonring_service::WorkerPool;
use pigeonring_setsim::SetParams;
use pigeonring_telemetry::json::{self, Value};

fn tiny_spec() -> EngineSpec {
    EngineSpec {
        shards: 2,
        hamming_n: 400,
        edit_n: 300,
        set_n: 300,
        graph_n: 80,
        query_count: 6,
        ..EngineSpec::full()
    }
}

const QUERIES_PER_DOMAIN: usize = 3;

/// Result ids plus named filter-chain stage counts for one query.
type IdsAndStages = (Vec<u32>, Vec<(&'static str, u64)>);

/// Per-query reference run on an identically built engine set: result
/// ids plus the engine's own filter-chain stage counts, via the same
/// `MergeStats::visit` seam the tracer exports through.
fn reference_run(
    engines: &EngineSet,
    domain: Domain,
    queries: &[DomainQuery],
) -> Vec<IdsAndStages> {
    fn collect<S: pigeonring_service::MergeStats>(
        results: Vec<pigeonring_service::SearchResult<S>>,
    ) -> Vec<IdsAndStages> {
        results
            .into_iter()
            .map(|r| {
                let mut stages = Vec::new();
                r.stats.visit(&mut |name, value| stages.push((name, value)));
                (r.ids, stages)
            })
            .collect()
    }
    match domain {
        Domain::Hamming => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Hamming { query, .. } = q else {
                        panic!("mixed domain")
                    };
                    query.clone()
                })
                .collect();
            let DomainQuery::Hamming { tau, l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = HammingParams {
                tau: *tau,
                l: *l as usize,
            };
            collect(engines.hamming_index().search_batch(&batch, &params, 2))
        }
        Domain::Edit => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Edit { query, .. } = q else {
                        panic!("mixed domain")
                    };
                    query.clone()
                })
                .collect();
            let DomainQuery::Edit { l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = EditParams { l: *l as usize };
            collect(engines.edit_index().search_batch(&batch, &params, 2))
        }
        Domain::Set => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Set { tokens, .. } = q else {
                        panic!("mixed domain")
                    };
                    tokens.clone()
                })
                .collect();
            let DomainQuery::Set { l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = SetParams { l: *l as usize };
            collect(engines.set_index().search_batch(&batch, &params, 2))
        }
        Domain::Graph => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Graph { query, .. } = q else {
                        panic!("mixed domain")
                    };
                    query.clone()
                })
                .collect();
            let DomainQuery::Graph { l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = GraphParams { l: *l as usize };
            collect(engines.graph_index().search_batch(&batch, &params, 2))
        }
    }
}

/// The `stage` instant spans of one span tree, as `(name, count)`.
fn stage_counts(spans: &[&Value]) -> Vec<(String, u64)> {
    spans
        .iter()
        .filter(|s| s.get("kind").and_then(Value::as_str) == Some("stage"))
        .map(|s| {
            let name = s
                .get("name")
                .and_then(Value::as_str)
                .expect("stage span has a name")
                .to_string();
            let count = s
                .get("tags")
                .and_then(|t| t.get("count"))
                .and_then(Value::as_u64)
                .expect("stage span carries a count tag");
            (name, count)
        })
        .collect()
}

/// Structural invariants of one span tree: exactly one root, no
/// dangling parents, every stage span hangs off the root, and the full
/// stage ladder (queue_wait/dispatch/plan/pool/shard) is present.
fn assert_tree_shape(spans: &[&Value], expect_domain: &str) {
    let ids: Vec<u64> = spans
        .iter()
        .map(|s| s.get("id").and_then(Value::as_u64).expect("span id"))
        .collect();
    let mut root_id = None;
    for s in spans {
        let parent = s.get("parent").and_then(Value::as_u64).expect("parent");
        if parent == 0 {
            assert!(root_id.is_none(), "exactly one root span per trace");
            assert_eq!(
                s.get("kind").and_then(Value::as_str),
                Some("query"),
                "root span is the query span"
            );
            assert_eq!(
                s.get("name").and_then(Value::as_str),
                Some(expect_domain),
                "root span is named after the domain"
            );
            root_id = s.get("id").and_then(Value::as_u64);
        } else {
            assert!(
                ids.contains(&parent),
                "span parent {parent} must exist in the same trace"
            );
        }
    }
    let root_id = root_id.expect("trace has a root span");
    // The full ladder; `plan` only exists on plan-once indexes
    // (dictionary-first editdist/setsim builds — hamming and graph
    // re-plan inside each shard and have no shared plan phase).
    let mut required = vec!["queue_wait", "dispatch", "pool", "shard", "stage"];
    if matches!(expect_domain, "editdist" | "setsim") {
        required.push("plan");
    }
    for kind in required {
        assert!(
            spans
                .iter()
                .any(|s| s.get("kind").and_then(Value::as_str) == Some(kind)),
            "trace for {expect_domain} is missing a {kind:?} span"
        );
    }
    for s in spans {
        if s.get("kind").and_then(Value::as_str) == Some("stage") {
            assert_eq!(
                s.get("parent").and_then(Value::as_u64),
                Some(root_id),
                "stage markers hang off the query root"
            );
        }
    }
}

/// EXPLAIN per query: ids identical to the reference run, span tree
/// inline, stage counts bit-identical to the engines' own MergeStats.
#[test]
fn explain_returns_reference_identical_ids_and_stage_counts() {
    common::for_each_backend(explain_returns_reference_identical_ids_and_stage_counts_on);
}

fn explain_returns_reference_identical_ids_and_stage_counts_on(backend: Backend) {
    let spec = tiny_spec();
    let engines = Arc::new(EngineSet::build(spec.clone()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    // Sampling disabled: EXPLAIN must force tracing on its own.
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(2),
        ServerConfig {
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let reference = EngineSet::build(spec.clone());
    let mut client = Client::connect(handle.addr()).expect("connect");
    for domain in Domain::ALL {
        let queries: Vec<_> = spec
            .sample_queries(domain)
            .into_iter()
            .take(QUERIES_PER_DOMAIN)
            .collect();
        let expected = reference_run(&reference, domain, &queries);
        for (q, (want_ids, want_stages)) in queries.iter().zip(&expected) {
            let (ids, tree) = client.explain(q.clone()).expect("EXPLAIN answered");
            assert_eq!(&ids, want_ids, "EXPLAIN ids for {domain}");
            let doc = json::parse(&tree).expect("span tree is valid JSON");
            assert!(doc.get("trace_id").and_then(Value::as_u64).is_some());
            let Some(Value::Arr(spans)) = doc.get("spans") else {
                panic!("span tree has a spans array")
            };
            let spans: Vec<&Value> = spans.iter().collect();
            assert_tree_shape(&spans, domain.as_str());
            let got = stage_counts(&spans);
            assert_eq!(
                got.len(),
                want_stages.len(),
                "one stage marker per MergeStats field for {domain}"
            );
            for (name, want) in want_stages {
                let count = got
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|&(_, c)| c)
                    .unwrap_or_else(|| panic!("stage {name} missing for {domain}"));
                assert_eq!(
                    count, *want,
                    "stage {name} count for {domain} must equal the engine's own stats"
                );
            }
        }
    }
    handle.shutdown();
}

/// Head sampling at 1-in-1: every plain query lands a complete trace
/// in the ring, retrievable over the wire via `Request::Trace`.
#[test]
fn sampled_traces_cover_every_query_with_valid_parentage() {
    common::for_each_backend(sampled_traces_cover_every_query_with_valid_parentage_on);
}

fn sampled_traces_cover_every_query_with_valid_parentage_on(backend: Backend) {
    let spec = tiny_spec();
    let engines = Arc::new(EngineSet::build(spec.clone()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(2),
        ServerConfig {
            backend,
            trace_sample: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect");
    for domain in Domain::ALL {
        for q in spec
            .sample_queries(domain)
            .into_iter()
            .take(QUERIES_PER_DOMAIN)
        {
            let outcome = client.search(q).expect("query answered");
            assert!(matches!(outcome, Outcome::Results(_)), "{domain}");
        }
    }

    let export = client.trace().expect("trace endpoint answered");
    let doc = json::parse(&export).expect("trace export is valid JSON");
    assert_eq!(
        doc.get("sample_every").and_then(Value::as_u64),
        Some(1),
        "export reports the sampling cadence"
    );
    assert_eq!(
        doc.get("dropped_spans").and_then(Value::as_u64),
        Some(0),
        "this little traffic must not overflow the default ring"
    );
    let Some(Value::Arr(traces)) = doc.get("traces") else {
        panic!("export has a traces array")
    };
    assert_eq!(
        traces.len(),
        Domain::ALL.len() * QUERIES_PER_DOMAIN,
        "1-in-1 sampling traces every query"
    );
    let mut roots_by_domain = vec![0usize; Domain::ALL.len()];
    for trace in traces {
        let Some(Value::Arr(spans)) = trace.get("spans") else {
            panic!("trace has a spans array")
        };
        let spans: Vec<&Value> = spans.iter().collect();
        let root = spans
            .iter()
            .find(|s| s.get("parent").and_then(Value::as_u64) == Some(0))
            .expect("trace has a root span");
        let name = root.get("name").and_then(Value::as_str).expect("root name");
        let di = Domain::ALL
            .iter()
            .position(|d| d.as_str() == name)
            .unwrap_or_else(|| panic!("root span named after a domain, got {name:?}"));
        roots_by_domain[di] += 1;
        assert_tree_shape(&spans, name);
    }
    assert!(
        roots_by_domain.iter().all(|&n| n == QUERIES_PER_DOMAIN),
        "every domain fully sampled: {roots_by_domain:?}"
    );
    handle.shutdown();
}
