//! Admission control end to end: with lane depth `Q` and a stalled
//! worker pool, request `Q+1` of that domain receives a typed `Busy` —
//! immediately, without queueing — and every previously queued request
//! still completes once the pool unstalls.

mod common;

use std::net::TcpListener;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pigeonring_server::server::{start_with_handler, Backend, Handler, ServerConfig};
use pigeonring_server::wire::{DomainQuery, ErrorCode, Response, CONNECTION_REQUEST_ID};
use pigeonring_server::{Client, ClientError, Outcome};

const Q: usize = 3;

/// A single-dispatcher config so the tests can reason about exactly one
/// in-flight batch (the pipelining tests cover multi-dispatcher
/// behavior).
fn config(backend: Backend, lane_depth: usize) -> ServerConfig {
    ServerConfig {
        backend,
        lane_depth,
        micro_batch: 1,
        dispatchers: 1,
        ..ServerConfig::default()
    }
}

fn query(tag: u32) -> DomainQuery {
    DomainQuery::Set {
        tokens: vec![tag],
        l: 1,
    }
}

/// Echo the query's tag back as its result ids.
fn echo(queries: &[DomainQuery], emit: &mut dyn FnMut(usize, Response)) {
    for (i, q) in queries.iter().enumerate() {
        let DomainQuery::Set { tokens, .. } = q else {
            panic!("test sends Set queries only");
        };
        emit(
            i,
            Response::Results {
                request_id: CONNECTION_REQUEST_ID,
                ids: tokens.clone(),
            },
        );
    }
}

/// Spin-waits for `cond` (the queue fills asynchronously as connection
/// threads push).
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn queue_overflow_answers_busy_and_queued_requests_complete() {
    common::for_each_backend(queue_overflow_answers_busy_and_queued_requests_complete_on);
}

fn queue_overflow_answers_busy_and_queued_requests_complete_on(backend: Backend) {
    // A handler that blocks on a gate: the "stalled pool". It records
    // which queries it eventually served so we can prove none of the
    // admitted requests was dropped or corrupted.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let served: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let handler: Handler = {
        let served = Arc::clone(&served);
        Arc::new(move |queries, _traces, emit| {
            started_tx.send(()).expect("test alive");
            gate_rx
                .lock()
                .expect("gate lock")
                .recv()
                .expect("gate open");
            for q in &queries {
                let DomainQuery::Set { tokens, .. } = q else {
                    panic!("test sends Set queries only");
                };
                served.lock().expect("served lock").push(tokens[0]);
            }
            echo(&queries, emit);
        })
    };

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start_with_handler(listener, handler, config(backend, Q)).expect("server starts");
    let addr = handle.addr();

    // Request 0 is popped by the dispatcher, which then stalls on the
    // gate — the queue itself is empty again once the handler starts.
    let head = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.search(query(0)).expect("head request")
    });
    started_rx.recv().expect("dispatcher picked up request 0");

    // Q more requests fill the lane to capacity while the pool stalls.
    let queued: Vec<_> = (1..=Q as u32)
        .map(|tag| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                c.search(query(tag)).expect("queued request")
            })
        })
        .collect();
    wait_for("queue to fill", || handle.queue_len() == Q);

    // Request Q+1: typed Busy, immediately (no waiting on the gate).
    let mut overflow = Client::connect(addr).expect("connect");
    let verdict = overflow.search(query(99)).expect("overflow request");
    assert_eq!(verdict, Outcome::Busy, "request Q+1 must be rejected");
    assert_eq!(handle.queue_len(), Q, "rejected request was not queued");

    // Unstall: every admitted request (head + Q queued) completes with
    // its own answer.
    for _ in 0..=Q {
        gate_tx.send(()).expect("dispatcher alive");
    }
    assert_eq!(head.join().expect("head thread"), Outcome::Results(vec![0]));
    for (i, t) in queued.into_iter().enumerate() {
        let tag = (i + 1) as u32;
        assert_eq!(
            t.join().expect("queued thread"),
            Outcome::Results(vec![tag]),
            "queued request {tag} must complete with its own answer"
        );
    }
    let mut served = served.lock().expect("served lock").clone();
    served.sort_unstable();
    assert_eq!(
        served,
        vec![0, 1, 2, 3],
        "exactly the admitted requests ran — no drops, no duplicates, \
         and the rejected tag 99 never reached the pool"
    );
    handle.shutdown();
}

#[test]
fn shutdown_answers_terminal_internal_error_not_busy() {
    common::for_each_backend(shutdown_answers_terminal_internal_error_not_busy_on);
}

fn shutdown_answers_terminal_internal_error_not_busy_on(backend: Backend) {
    // A client that is mid-connection when the server shuts down must
    // see a *terminal* typed error, not a retryable Busy — otherwise
    // well-behaved retry loops hammer a dying server.
    let handler: Handler =
        Arc::new(|queries: Vec<DomainQuery>, _traces, emit| echo(&queries, emit));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start_with_handler(listener, handler, config(backend, Q)).expect("server starts");
    let addr = handle.addr();

    let mut client = Client::connect(addr).expect("connect");
    assert_eq!(
        client.search(query(5)).expect("live server answers"),
        Outcome::Results(vec![5])
    );

    // Shutdown closes the lanes; the connection thread stays up long
    // enough to answer in-flight frames.
    handle.shutdown();
    match client.search(query(6)) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::Internal);
            assert!(
                message.contains("shutting down"),
                "terminal shutdown error, got: {message}"
            );
        }
        other => panic!("expected a terminal Internal error, got {other:?}"),
    }
}

#[test]
fn busy_connection_stays_usable() {
    common::for_each_backend(busy_connection_stays_usable_on);
}

fn busy_connection_stays_usable_on(backend: Backend) {
    // After a Busy, the same connection can retry and succeed.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gate_rx = Mutex::new(gate_rx);
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let handler: Handler = Arc::new(move |queries: Vec<DomainQuery>, _traces, emit| {
        started_tx.send(()).expect("test alive");
        gate_rx
            .lock()
            .expect("gate lock")
            .recv()
            .expect("gate open");
        for i in 0..queries.len() {
            emit(
                i,
                Response::Results {
                    request_id: CONNECTION_REQUEST_ID,
                    ids: vec![7],
                },
            );
        }
    });
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start_with_handler(listener, handler, config(backend, 1)).expect("server starts");
    let addr = handle.addr();

    let head = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.search(query(0)).expect("head")
    });
    started_rx.recv().expect("dispatcher busy");
    let filler = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.search(query(1)).expect("filler")
    });
    wait_for("queue to fill", || handle.queue_len() == 1);

    let mut probe = Client::connect(addr).expect("connect");
    assert_eq!(probe.search(query(2)).expect("probe"), Outcome::Busy);

    // Drain the stall; the *same* probe connection retries successfully.
    // (Three tokens: head, filler, and the probe's retry.)
    for _ in 0..3 {
        gate_tx.send(()).expect("gate");
    }
    assert_eq!(head.join().expect("head"), Outcome::Results(vec![7]));
    assert_eq!(filler.join().expect("filler"), Outcome::Results(vec![7]));
    let retried = probe
        .search_with_retry(query(2), 100)
        .expect("retry after Busy");
    assert_eq!(retried, Outcome::Results(vec![7]));
    handle.shutdown();
}
