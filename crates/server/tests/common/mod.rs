//! Shared two-backend harness: every integration suite that exercises
//! connection handling runs its body once per [`Backend`], so the
//! nonblocking reactor and the PR 4 thread-per-connection path are
//! held to bit-identical protocol semantics by the same assertions.

// Each test binary includes this module and uses its own subset.
#![allow(dead_code)]

use pigeonring_editdist::EditParams;
use pigeonring_graph::GraphParams;
use pigeonring_hamming::HammingParams;
use pigeonring_server::server::Backend;
use pigeonring_server::wire::{Domain, DomainQuery};
use pigeonring_server::EngineSet;
use pigeonring_service::ResultHasher;
use pigeonring_setsim::SetParams;

/// The backends under differential test. `Backend::Reactor` needs the
/// Unix readiness syscalls; elsewhere only the threaded path exists.
pub fn backends() -> &'static [Backend] {
    #[cfg(unix)]
    {
        &[Backend::Threaded, Backend::Reactor]
    }
    #[cfg(not(unix))]
    {
        &[Backend::Threaded]
    }
}

/// Runs `body` once per backend, labeling failures with the backend so
/// a differential regression names the guilty implementation.
pub fn for_each_backend(body: impl Fn(Backend)) {
    for &backend in backends() {
        eprintln!("--- backend: {backend} ---");
        body(backend);
    }
}

/// Fingerprint of a direct in-process `search_batch` run over the
/// domain's standard query set.
pub fn in_process_hash(engines: &EngineSet, domain: Domain, queries: &[DomainQuery]) -> u64 {
    let mut hasher = ResultHasher::new();
    match domain {
        Domain::Hamming => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Hamming { query, .. } = q else {
                        panic!("mixed domain")
                    };
                    query.clone()
                })
                .collect();
            let DomainQuery::Hamming { tau, l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = HammingParams {
                tau: *tau,
                l: *l as usize,
            };
            for r in engines.hamming_index().search_batch(&batch, &params, 2) {
                hasher.push(&r.ids);
            }
        }
        Domain::Edit => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Edit { query, .. } = q else {
                        panic!("mixed domain")
                    };
                    query.clone()
                })
                .collect();
            let DomainQuery::Edit { l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = EditParams { l: *l as usize };
            for r in engines.edit_index().search_batch(&batch, &params, 2) {
                hasher.push(&r.ids);
            }
        }
        Domain::Set => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Set { tokens, .. } = q else {
                        panic!("mixed domain")
                    };
                    tokens.clone()
                })
                .collect();
            let DomainQuery::Set { l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = SetParams { l: *l as usize };
            for r in engines.set_index().search_batch(&batch, &params, 2) {
                hasher.push(&r.ids);
            }
        }
        Domain::Graph => {
            let batch: Vec<_> = queries
                .iter()
                .map(|q| {
                    let DomainQuery::Graph { query, .. } = q else {
                        panic!("mixed domain")
                    };
                    query.clone()
                })
                .collect();
            let DomainQuery::Graph { l, .. } = &queries[0] else {
                panic!("mixed domain")
            };
            let params = GraphParams { l: *l as usize };
            for r in engines.graph_index().search_batch(&batch, &params, 2) {
                hasher.push(&r.ids);
            }
        }
    }
    hasher.finish()
}
