//! The acceptance check, as a test: a loopback server round-trip must
//! return byte-identical result-id sets (compared via the service
//! layer's `result_hash` fingerprint) to a direct in-process
//! [`ShardedIndex::search_batch`] run, for all four domains. Also
//! covers version negotiation and fail-closed behavior on garbage
//! bytes.

mod common;

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use pigeonring_server::server::Backend;
use pigeonring_server::wire::{
    encode_request, read_frame, write_frame, Domain, DomainQuery, ErrorCode, Request,
    PROTOCOL_VERSION,
};
use pigeonring_server::{start, Client, ClientError, EngineSet, EngineSpec, Outcome, ServerConfig};
use pigeonring_service::{ResultHasher, WorkerPool};

fn tiny_spec() -> EngineSpec {
    EngineSpec {
        shards: 3,
        hamming_n: 400,
        edit_n: 300,
        set_n: 300,
        graph_n: 80,
        query_count: 6,
        ..EngineSpec::full()
    }
}

#[test]
fn loopback_round_trip_matches_in_process_for_all_domains() {
    common::for_each_backend(loopback_round_trip_matches_in_process_for_all_domains_on);
}

fn loopback_round_trip_matches_in_process_for_all_domains_on(backend: Backend) {
    let engines = Arc::new(EngineSet::build(tiny_spec()));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = start(
        listener,
        Arc::clone(&engines),
        WorkerPool::new(2),
        ServerConfig {
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut client = Client::connect(handle.addr()).expect("connect + negotiate");
    assert_eq!(client.version(), PROTOCOL_VERSION);

    for domain in Domain::ALL {
        let queries = engines.spec().sample_queries(domain);
        let mut server_hasher = ResultHasher::new();
        for q in &queries {
            match client.search(q.clone()).expect("query over loopback") {
                Outcome::Results(ids) => server_hasher.push(&ids),
                other => panic!("unloaded server must answer results, got {other:?}"),
            }
        }
        let expect = common::in_process_hash(&engines, domain, &queries);
        assert_eq!(
            server_hasher.finish(),
            expect,
            "server round-trip differs from in-process search_batch for {domain}"
        );
    }
    handle.shutdown();
}

#[test]
fn garbage_bytes_fail_closed_with_typed_error() {
    common::for_each_backend(garbage_bytes_fail_closed_with_typed_error_on);
}

fn garbage_bytes_fail_closed_with_typed_error_on(backend: Backend) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    // Handler irrelevant: garbage never reaches it.
    let handle = pigeonring_server::start_with_handler(
        listener,
        Arc::new(|_, _, _| {}),
        ServerConfig {
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    // An oversized length prefix draws a typed Malformed error, then the
    // server closes the connection (read returns clean EOF).
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .write_all(&u32::MAX.to_le_bytes())
        .expect("send hostile prefix");
    let payload = read_frame(&mut stream)
        .expect("typed error frame")
        .expect("server responds before closing");
    let resp = pigeonring_server::wire::decode_response(&payload).expect("decodes");
    assert!(matches!(
        resp,
        pigeonring_server::Response::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));
    assert!(
        read_frame(&mut stream).expect("clean close").is_none(),
        "connection closed after protocol error"
    );

    // A frame with a bogus version draws UnsupportedVersion.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let mut payload = encode_request(&Request::Query {
        request_id: 1,
        query: DomainQuery::Set {
            tokens: vec![1],
            l: 1,
        },
        explain: false,
    });
    payload[0] = 42;
    write_frame(&mut stream, &payload).expect("send bad version");
    let reply = read_frame(&mut stream)
        .expect("typed error frame")
        .expect("server responds before closing");
    let resp = pigeonring_server::wire::decode_response(&reply).expect("decodes");
    assert!(matches!(
        resp,
        pigeonring_server::Response::Error {
            code: ErrorCode::UnsupportedVersion,
            ..
        }
    ));
    handle.shutdown();
}

#[test]
fn query_before_hello_is_refused() {
    common::for_each_backend(query_before_hello_is_refused_on);
}

fn query_before_hello_is_refused_on(backend: Backend) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = pigeonring_server::start_with_handler(
        listener,
        Arc::new(|_, _, _| {}),
        ServerConfig {
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    write_frame(
        &mut stream,
        &encode_request(&Request::Query {
            request_id: 1,
            query: DomainQuery::Set {
                tokens: vec![1],
                l: 1,
            },
            explain: false,
        }),
    )
    .expect("send premature query");
    let reply = read_frame(&mut stream)
        .expect("typed error frame")
        .expect("server responds before closing");
    let resp = pigeonring_server::wire::decode_response(&reply).expect("decodes");
    assert!(matches!(
        resp,
        pigeonring_server::Response::Error {
            code: ErrorCode::Malformed,
            ..
        }
    ));
    assert!(
        read_frame(&mut stream).expect("clean close").is_none(),
        "connection closed after un-negotiated query"
    );
    handle.shutdown();
}

#[test]
fn old_client_version_is_refused_in_negotiation() {
    common::for_each_backend(old_client_version_is_refused_in_negotiation_on);
}

fn old_client_version_is_refused_in_negotiation_on(backend: Backend) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = pigeonring_server::start_with_handler(
        listener,
        Arc::new(|_, _, _| {}),
        ServerConfig {
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");

    // A v1-only client (and anything older) is refused in negotiation
    // with the typed UnsupportedVersion — it never reaches a query.
    for max_version in [0u8, 1] {
        let mut stream = TcpStream::connect(handle.addr()).expect("connect");
        write_frame(
            &mut stream,
            &encode_request(&Request::Hello { max_version }),
        )
        .expect("send hello");
        let reply = read_frame(&mut stream)
            .expect("typed error frame")
            .expect("server responds");
        let resp = pigeonring_server::wire::decode_response(&reply).expect("decodes");
        assert!(
            matches!(
                resp,
                pigeonring_server::Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    ..
                }
            ),
            "max_version {max_version} must be refused, got {resp:?}"
        );
    }

    // The high-level client surfaces this as a typed server error.
    match Client::connect(handle.addr()) {
        Ok(_) => {} // current client speaks v2, so this path is fine
        Err(ClientError::Server { .. }) => panic!("v2 client must connect"),
        Err(e) => panic!("unexpected error: {e}"),
    }
    handle.shutdown();
}
