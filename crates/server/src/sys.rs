//! Readiness syscalls for the nonblocking reactor backend, with no
//! dependency on `libc`: hand-rolled `extern "C"` bindings for
//! `epoll_create1` / `epoll_ctl` / `epoll_wait` on Linux plus a
//! portable `poll(2)` fallback that works on any Unix (and doubles as
//! the differential test partner for the epoll path on Linux).
//!
//! Everything here returns typed [`io::Error`]s — a failed syscall is
//! an ordinary error on the connection or the reactor, never a panic —
//! and every unsafe site carries the `// SAFETY:` justification
//! `pigeonring-lint` enforces.
//!
//! The [`Waker`] deliberately avoids `pipe2`/`eventfd`: a connected
//! loopback UDP socket pair is readiness-compatible with both pollers,
//! allocation-free on the wake path, and needs no unsafe at all.

#![cfg(unix)]
// The workspace denies `unsafe_code`; this module is the scoped
// exception for the readiness-syscall FFI — the `extern "C"`
// declarations and each call site are the only unsafe in the crate,
// every one carries an inline `// SAFETY:` argument (enforced by
// `pigeonring-lint`'s safety-comment rule), and the two pollers are
// differentially exercised against each other by the module tests and
// the reactor's `PIGEONRING_FORCE_POLL` seam.
#![allow(unsafe_code)]

use std::io;
use std::net::UdpSocket;
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

use std::ffi::{c_int, c_short};

// Linux `nfds_t` is `unsigned long`; the other Unixes declare
// `poll(2)` with `unsigned int`.
#[cfg(target_os = "linux")]
type NfdsT = std::ffi::c_ulong;
#[cfg(not(target_os = "linux"))]
type NfdsT = std::ffi::c_uint;

// ---------------------------------------------------------- constants
//
// Values are the Linux UAPI / POSIX ABI constants; `poll` and `epoll`
// deliberately share the low event bits (IN=0x1, OUT=0x4, ERR=0x8,
// HUP=0x10), which is why [`Event`] can decode either poller's mask
// with one helper.

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;

const POLLIN: c_short = 0x1;
const POLLOUT: c_short = 0x4;
const POLLERR: c_short = 0x8;
const POLLHUP: c_short = 0x10;

// ------------------------------------------------------- FFI bindings

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel
/// ABI packs it (no padding between `events` and `data`); every other
/// architecture uses natural alignment — same split `libc` encodes.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Mirror of POSIX `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

#[cfg(target_os = "linux")]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

// ----------------------------------------------------------- surfaces

/// Which readiness classes a registration asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable again.
    pub write: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };

    fn epoll_mask(self) -> u32 {
        let mut m = 0;
        if self.read {
            m |= EPOLLIN;
        }
        if self.write {
            m |= EPOLLOUT;
        }
        m
    }

    fn poll_mask(self) -> c_short {
        let mut m = 0;
        if self.read {
            m |= POLLIN;
        }
        if self.write {
            m |= POLLOUT;
        }
        m
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable now (includes a pending EOF).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hangup — the owner should read (draining any final
    /// bytes and observing the EOF/error) and wind the fd down.
    pub error: bool,
}

impl Event {
    /// Decodes a readiness mask (epoll and poll share these bits).
    fn from_mask(token: u64, mask: u32) -> Event {
        Event {
            token,
            readable: mask & EPOLLIN != 0,
            writable: mask & EPOLLOUT != 0,
            error: mask & (EPOLLERR | EPOLLHUP) != 0,
        }
    }
}

/// The readiness backend: level-triggered epoll on Linux, portable
/// `poll(2)` everywhere (selectable for differential testing).
pub enum Poller {
    /// `epoll` instance (Linux only).
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    /// `poll(2)` over an explicit registration table.
    Poll(PollPoller),
}

impl Poller {
    /// The platform's best poller: epoll on Linux (falling back to
    /// `poll` if `epoll_create1` is unavailable), `poll` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            match EpollPoller::new() {
                Ok(ep) => Ok(Poller::Epoll(ep)),
                Err(_) => Ok(Poller::Poll(PollPoller::new())),
            }
        }
        #[cfg(not(target_os = "linux"))]
        Ok(Poller::Poll(PollPoller::new()))
    }

    /// The portable fallback, explicitly — used by tests to run the
    /// same reactor over both readiness backends on one host.
    pub fn new_poll_fallback() -> Poller {
        Poller::Poll(PollPoller::new())
    }

    /// A short static name for logs and artifacts.
    pub fn kind(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            Poller::Poll(_) => "poll",
        }
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(EPOLL_CTL_ADD, fd, token, interest),
            Poller::Poll(pp) => pp.register(fd, token, interest),
        }
    }

    /// Replaces `fd`'s interest set (re-arming `EPOLLOUT`, dropping
    /// read interest under backpressure).
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(EPOLL_CTL_MOD, fd, token, interest),
            Poller::Poll(pp) => pp.register(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Must be called before the fd closes so the
    /// poll table (and the epoll interest list) stays accurate.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Poller::Poll(pp) => {
                pp.deregister(fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready (or `timeout`
    /// elapses; `None` waits indefinitely), then fills `events`.
    /// Returns the number of events delivered; `0` means timeout.
    /// `EINTR` is retried internally.
    pub fn wait(
        &mut self,
        events: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            // +999_999 rounds nanoseconds up: sleeping *short* of a
            // stall deadline would spin the loop at 0 ms timeouts.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
            None => -1,
        };
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(ep) => ep.wait(events, timeout_ms),
            Poller::Poll(pp) => pp.wait(events, timeout_ms),
        }
    }
}

/// A level-triggered epoll instance. The fd is owned: closed on drop.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: RawFd,
    buf: Vec<EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<EpollPoller> {
        // SAFETY: epoll_create1 takes no pointers; any flag value is
        // safe to pass and an invalid one reports EINVAL via errno.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollPoller {
            epfd,
            buf: vec![EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&mut self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: interest.epoll_mask(),
            data: token,
        };
        // SAFETY: `ev` is a live, properly initialized EpollEvent for
        // the duration of the call; the kernel copies it and keeps no
        // reference past return (EPOLL_CTL_DEL ignores it entirely).
        let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: c_int) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer outlives the call and `maxevents` is
            // its exact length, so the kernel writes only within it.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            let n = n as usize;
            for ev in self.buf.iter().take(n) {
                // Copy out of the (possibly packed) struct before use.
                let (mask, token) = (ev.events, ev.data);
                events.push(Event::from_mask(token, mask));
            }
            // A full buffer means more events may be pending; growing
            // amortizes toward one wait per loop turn.
            if n == self.buf.len() {
                self.buf
                    .resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
            }
            return Ok(events.len());
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: epfd came from a successful epoll_create1 and is
        // closed exactly once, here.
        unsafe {
            close(self.epfd);
        }
    }
}

/// The portable fallback: an explicit registration table handed to
/// `poll(2)` on every wait. O(registered fds) per wait — fine for the
/// fallback role; Linux production uses epoll.
pub struct PollPoller {
    table: Vec<(RawFd, u64, Interest)>,
    buf: Vec<PollFd>,
}

impl PollPoller {
    fn new() -> PollPoller {
        PollPoller {
            table: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self.table.iter_mut().find(|(f, _, _)| *f == fd) {
            Some(entry) => *entry = (fd, token, interest),
            None => self.table.push((fd, token, interest)),
        }
        Ok(())
    }

    fn deregister(&mut self, fd: RawFd) {
        self.table.retain(|(f, _, _)| *f != fd);
    }

    fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: c_int) -> io::Result<usize> {
        self.buf.clear();
        self.buf
            .extend(self.table.iter().map(|&(fd, _, interest)| PollFd {
                fd,
                events: interest.poll_mask(),
                revents: 0,
            }));
        loop {
            // SAFETY: the pollfd buffer outlives the call and `nfds`
            // is its exact length; the kernel only writes the
            // `revents` fields within it.
            let n = unsafe { poll(self.buf.as_mut_ptr(), self.buf.len() as NfdsT, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in self.buf.iter().zip(self.table.iter()) {
                // POLLERR/POLLHUP are delivered even when unrequested.
                let mask = pfd.revents & (POLLIN | POLLOUT | POLLERR | POLLHUP);
                if mask != 0 {
                    events.push(Event::from_mask(token, mask as u32));
                }
            }
            return Ok(events.len());
        }
    }
}

// --------------------------------------------------------------- waker

/// The cross-thread wake mechanism: dispatchers finishing a reply (and
/// shutdown) must interrupt a reactor blocked in [`Poller::wait`]. A
/// connected loopback UDP socket pair gives readiness semantics both
/// pollers understand with no extra syscall bindings: `wake` sends one
/// datagram, the reactor's poller reports the receive side readable.
pub struct Waker {
    tx: UdpSocket,
}

impl Waker {
    /// Signals the reactor. Infallible by design: a full socket buffer
    /// means wakes are already pending, which is all a waker needs.
    pub fn wake(&self) {
        let _ = self.tx.send(&[1u8]);
    }
}

/// The reactor-side half of the wake pair: register
/// [`WakeReceiver::raw_fd`] for read interest and [`drain`] it on
/// every readiness report so level-triggered pollers quiesce.
///
/// [`drain`]: WakeReceiver::drain
pub struct WakeReceiver {
    rx: UdpSocket,
}

impl WakeReceiver {
    /// The fd to register with the poller.
    pub fn raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Consumes every pending wake datagram.
    pub fn drain(&self) {
        let mut buf = [0u8; 16];
        while self.rx.recv(&mut buf).is_ok() {}
    }
}

/// Builds a connected wake pair. Both sockets are loopback-bound,
/// mutually connected (stray datagrams from other senders are
/// rejected by the kernel), and nonblocking.
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let tx = UdpSocket::bind("127.0.0.1:0")?;
    let rx = UdpSocket::bind("127.0.0.1:0")?;
    tx.connect(rx.local_addr()?)?;
    rx.connect(tx.local_addr()?)?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    /// Both pollers must report the same readiness story for a simple
    /// TCP exchange: nothing before data, readable after, quiet after
    /// the data is consumed.
    fn exercise(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let mut client = TcpStream::connect(listener.local_addr().expect("addr")).expect("dial");
        let (mut serverside, _) = listener.accept().expect("accept");
        serverside.set_nonblocking(true).expect("nonblocking");

        poller
            .register(serverside.as_raw_fd(), 7, Interest::READ)
            .expect("register");
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "no data yet ⇒ timeout");

        client.write_all(b"ping").expect("send");
        client.flush().expect("flush");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert_eq!(n, 1, "exactly the registered fd is ready");
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);

        let mut buf = [0u8; 16];
        let got = serverside.read(&mut buf).expect("read");
        assert_eq!(&buf[..got], b"ping");

        // Write interest on a fresh, unfilled socket reports writable.
        poller
            .reregister(
                serverside.as_raw_fd(),
                7,
                Interest {
                    read: true,
                    write: true,
                },
            )
            .expect("reregister");
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .expect("wait");
        assert!(n >= 1 && events.iter().any(|e| e.token == 7 && e.writable));

        poller
            .deregister(serverside.as_raw_fd())
            .expect("deregister");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "deregistered fd no longer reports");
    }

    #[test]
    fn default_poller_reports_readiness() {
        exercise(Poller::new().expect("poller"));
    }

    #[test]
    fn poll_fallback_reports_readiness() {
        exercise(Poller::new_poll_fallback());
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new().expect("poller");
        let (waker, receiver) = wake_pair().expect("wake pair");
        poller
            .register(receiver.raw_fd(), 1, Interest::READ)
            .expect("register");
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            waker.wake();
        });
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events[0].token, 1);
        receiver.drain();
        handle.join().expect("waker thread");
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .expect("wait");
        assert_eq!(n, 0, "drained waker quiesces");
    }

    #[test]
    fn wake_pair_rejects_stray_datagrams() {
        let (_waker, receiver) = wake_pair().expect("wake pair");
        // recv on the connected, empty socket reports WouldBlock, not
        // data from an unconnected sender.
        let mut buf = [0u8; 4];
        assert!(receiver.rx.recv(&mut buf).is_err());
    }
}
