//! # pigeonring-server
//!
//! The network frontend over the `pigeonring-service` query layer: a
//! dependency-free `std::net` TCP server speaking a versioned,
//! length-prefixed binary wire protocol across all four domains
//! (Hamming, edit distance, set similarity, graph edit distance).
//!
//! The ROADMAP north star is heavy traffic from millions of users; PR 2
//! built the shard-parallel in-process layer, and this crate puts a
//! server boundary in front of it, the way FAISS-style similarity
//! systems are consumed in production (batched service APIs):
//!
//! * [`wire`] — the frame format and message codec (v2: tagged request
//!   ids, so many requests ride one connection and responses may return
//!   out of order). Strict, typed, allocation-bounded decoding:
//!   malformed input fails the connection closed, never panics the
//!   server.
//! * [`queue`] — the bounded request queues. Admission control lives
//!   here: the [`FairQueue`] keeps one bounded lane per domain, so a
//!   full lane answers `Busy` for *that domain only* and weighted
//!   round-robin batch formation stops a slow-domain burst from
//!   inflating every domain's tail.
//! * [`server`] — connection handling (a nonblocking [`sys`]-backed
//!   reactor by default, so connection count costs file descriptors
//!   instead of threads; the PR 4 thread-per-connection backend stays
//!   selectable via [`Backend`] for differential testing) and the
//!   weighted-fair dispatchers that coalesce up to `B` queued queries
//!   per fan-out so the network path inherits the service layer's
//!   batch amortization on the shared persistent
//!   [`WorkerPool`](pigeonring_service::WorkerPool). Lane weights come
//!   from a validated [`LaneWeightPolicy`] — derived live from the
//!   measured per-domain cost EMA by default.
//! * [`sys`] — dependency-free readiness syscalls: hand-rolled
//!   `extern "C"` epoll bindings with a portable `poll(2)` fallback,
//!   and the UDP-pair waker that lets dispatchers interrupt a blocked
//!   poll wait.
//! * [`registry`] — deterministic engine construction
//!   ([`EngineSpec`] → [`EngineSet`]) from the same data loaders the
//!   `repro` harness uses, so a server and an in-process run built from
//!   equal specs answer from bit-identical datasets (the CI smoke
//!   check diffs their `result_hash`es).
//! * [`client`] — a blocking client library; `repro query` and
//!   `repro loadgen` are thin wrappers over it.
//!
//! Observability rides the same wire: `Request::Stats` returns the
//! live metrics snapshot, `Request::Trace` the recent sampled span
//! timelines (see `pigeonring_telemetry::trace`), and a query's
//! EXPLAIN flag returns its own span tree inline with its results —
//! all answered even when every lane is saturated.

pub mod client;
pub mod queue;
#[cfg(unix)]
pub(crate) mod reactor;
pub mod registry;
pub mod server;
#[cfg(unix)]
pub mod sys;
pub mod weights;
pub mod wire;

pub use client::{Client, ClientError, Outcome};
pub use queue::{lane_of, BoundedQueue, FairQueue, PushError, NUM_LANES};
pub use registry::{EngineSet, EngineSpec};
pub use server::{
    start, start_with_handler, Backend, Handler, ServerConfig, ServerHandle, ServerMetrics,
    SlowQuery,
};
pub use weights::{CostEmaWeights, LaneWeightPolicy, WeightConfigError, DEFAULT_STATIC_WEIGHTS};
pub use wire::{
    Domain, DomainQuery, ErrorCode, Request, Response, WireError, CONNECTION_REQUEST_ID,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};

// Re-exported so handler implementations (`Handler` takes a
// `&TraceBatch`) need no direct telemetry dependency.
pub use pigeonring_telemetry::trace::TraceBatch;
