//! Bounded request queue: the admission-control point.
//!
//! Producers (connection threads) *never block*: [`BoundedQueue::try_push`]
//! either enqueues or returns the item back immediately when the queue
//! holds `capacity` items — the caller then answers the client with a
//! typed `Busy` response instead of queueing unboundedly. The single
//! consumer (the dispatcher) blocks in [`BoundedQueue::pop_batch`] and
//! drains up to `max` items per wakeup, which is what turns queued
//! singles into micro-batches.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with non-blocking, fail-fast producers.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity.max(1)` buffered items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission-control depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently buffered (racy outside tests/metrics).
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue mutex poisoned").items.len()
    }

    /// Whether the queue is currently empty (racy outside tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue. Returns `Err(item)` — immediately, never
    /// blocking — when the queue is full or closed; the caller turns
    /// that into a `Busy` (or connection-shutdown) response.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue mutex poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available (or the queue is
    /// closed), then moves up to `max` items into `out` in FIFO order.
    /// Returns `false` when the queue is closed *and* drained — the
    /// consumer's shutdown signal.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let mut state = self.state.lock().expect("queue mutex poisoned");
        loop {
            if !state.items.is_empty() {
                let take = max.max(1).min(state.items.len());
                out.extend(state.items.drain(..take));
                return true;
            }
            if state.closed {
                return false;
            }
            state = self
                .not_empty
                .wait(state)
                .expect("queue mutex poisoned while waiting");
        }
    }

    /// Closes the queue: future pushes fail, and the consumer unblocks
    /// once the remaining items are drained.
    pub fn close(&self) {
        self.state.lock().expect("queue mutex poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_fails_fast_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3), "depth-2 queue rejects the third");
        assert_eq!(q.len(), 2);
        let mut out = Vec::new();
        assert!(q.pop_batch(8, &mut out));
        assert_eq!(out, vec![1, 2], "FIFO order");
        assert!(q.try_push(3).is_ok(), "space freed after drain");
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("under capacity");
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(2, &mut out));
        assert_eq!(out, vec![0, 1]);
        assert!(q.pop_batch(2, &mut out));
        assert_eq!(out, vec![2, 3]);
        assert!(q.pop_batch(2, &mut out));
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn close_unblocks_consumer_after_drain() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).expect("under capacity");
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut seen = Vec::new();
                while q.pop_batch(4, &mut out) {
                    seen.append(&mut out);
                }
                seen
            })
        };
        q.close();
        assert_eq!(consumer.join().expect("consumer exits"), vec![1]);
        assert_eq!(q.try_push(2), Err(2), "closed queue rejects pushes");
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(2));
        assert!(!q.is_empty());
    }
}
