//! Bounded request queues: the admission-control point.
//!
//! Producers (connection threads) *never block*: `try_push` either
//! enqueues or returns the item back immediately — as
//! [`PushError::Full`] when the lane holds `capacity` items (the caller
//! answers a retryable `Busy`), or as [`PushError::Closed`] during
//! shutdown (the caller answers a *terminal* error, so clients don't
//! retry-storm a dying server). Consumers (dispatchers) block in
//! `pop_batch` and drain up to `max` items per wakeup, which is what
//! turns queued singles into micro-batches.
//!
//! Two queues live here:
//!
//! * [`BoundedQueue`] — the original single-FIFO queue, kept for
//!   single-stream workloads and as the building-block reference.
//! * [`FairQueue`] — one bounded lane per [`Domain`] with
//!   weighted-round-robin batch formation. A burst of slow-domain
//!   queries (graph GED) fills *its own* lane and draws per-lane `Busy`
//!   while the other domains' lanes keep admitting and every popped
//!   micro-batch contains each backlogged domain in proportion to its
//!   weight — the fix for the head-of-line blocking recorded in
//!   `results/BENCH_server.json` (editdist/graph p50 ≈ 3.5× faster
//!   domains under the old global FIFO).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};

use pigeonring_telemetry::Gauge;

use crate::wire::Domain;

/// Locks `m`, recovering the data on poison. Queue state holds no
/// invariant a mid-panic unwind can half-apply (every mutation is a
/// single `VecDeque` op or a flag write), so recovery is always sound
/// — and a connection thread must never abort because a sibling
/// thread died while holding the lock.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Why `try_push` refused an item; the item rides back in either case.
///
/// `Full` is *retryable* (the queue is at capacity right now); `Closed`
/// is *terminal* (the queue is shutting down and will never admit
/// again). Conflating the two turns shutdown into a retry storm, which
/// is exactly the bug this distinction fixes.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The lane is at capacity; the caller may retry later.
    Full(T),
    /// The queue is closed; no future push will ever succeed.
    Closed(T),
}

impl<T> PushError<T> {
    /// The rejected item, regardless of the reason.
    pub fn into_inner(self) -> T {
        match self {
            PushError::Full(item) | PushError::Closed(item) => item,
        }
    }
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with non-blocking, fail-fast producers.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity.max(1)` buffered items.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The admission-control depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently buffered (racy outside tests/metrics).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).items.len()
    }

    /// Whether the queue is currently empty (racy outside tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue. Returns immediately — never blocking — with
    /// [`PushError::Full`] at capacity (retryable `Busy`) or
    /// [`PushError::Closed`] after [`BoundedQueue::close`] (terminal).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut state = lock_recover(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is available (or the queue is
    /// closed), then moves up to `max` items into `out` in FIFO order.
    /// Returns `false` when the queue is closed *and* drained — the
    /// consumer's shutdown signal.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let mut state = lock_recover(&self.state);
        loop {
            if !state.items.is_empty() {
                let take = max.max(1).min(state.items.len());
                out.extend(state.items.drain(..take));
                return true;
            }
            if state.closed {
                return false;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: future pushes fail with [`PushError::Closed`],
    /// and consumers unblock once the remaining items are drained.
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.not_empty.notify_all();
    }
}

/// Number of lanes in a [`FairQueue`] — one per [`Domain`], in
/// [`Domain::ALL`] order.
pub const NUM_LANES: usize = Domain::ALL.len();

struct FairState<T> {
    lanes: [VecDeque<T>; NUM_LANES],
    closed: bool,
    /// Next lane the weighted-round-robin sweep starts from, so no lane
    /// is systematically favored across batches.
    cursor: usize,
}

impl<T> FairState<T> {
    fn total(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// A bounded multi-lane queue: one FIFO lane per [`Domain`], weighted
/// round-robin batch formation, per-lane admission control.
///
/// Supports multiple concurrent consumers (the server runs several
/// dispatcher threads); each [`FairQueue::pop_batch`] call atomically
/// assembles one mixed-domain batch.
pub struct FairQueue<T> {
    state: Mutex<FairState<T>>,
    not_empty: Condvar,
    lane_capacity: usize,
    /// Per-sweep lane shares. Atomics so the cost-EMA weight tuner can
    /// retune a live queue without touching the queue mutex; each
    /// weight is read independently per sweep step, so a mid-sweep
    /// retune simply takes effect lane by lane.
    weights: [AtomicUsize; NUM_LANES],
    /// Optional per-lane depth gauges, maintained at push/pop so depth
    /// can be read without taking the queue mutex.
    depth_gauges: OnceLock<[Arc<Gauge>; NUM_LANES]>,
}

impl<T> FairQueue<T> {
    /// A queue admitting at most `lane_capacity.max(1)` buffered items
    /// *per lane*. `weights[i]` (clamped to ≥ 1) is how many items lane
    /// `i` — indexed in [`Domain::ALL`] order — contributes per
    /// round-robin sweep of [`FairQueue::pop_batch`].
    pub fn new(lane_capacity: usize, weights: [usize; NUM_LANES]) -> Self {
        FairQueue {
            state: Mutex::new(FairState {
                lanes: Default::default(),
                closed: false,
                cursor: 0,
            }),
            not_empty: Condvar::new(),
            lane_capacity: lane_capacity.max(1),
            weights: weights.map(|w| AtomicUsize::new(w.max(1))),
            depth_gauges: OnceLock::new(),
        }
    }

    /// Replaces the per-lane weights (each clamped to ≥ 1). Safe to
    /// call while consumers are popping: the next sweep step over a
    /// lane observes its new share. This is the cost-EMA tuner's entry
    /// point; static configurations simply never call it.
    pub fn set_weights(&self, weights: [usize; NUM_LANES]) {
        for (slot, w) in self.weights.iter().zip(weights) {
            slot.store(w.max(1), Ordering::Relaxed);
        }
    }

    /// The current per-lane weights ([`Domain::ALL`] order).
    pub fn weights(&self) -> [usize; NUM_LANES] {
        std::array::from_fn(|i| {
            // lint: allow(panic) — from_fn indexes 0..NUM_LANES, the array length
            self.weights[i].load(Ordering::Relaxed)
        })
    }

    /// Attaches one depth gauge per lane ([`Domain::ALL`] order);
    /// thereafter every successful push increments and every pop
    /// decrements the owning lane's gauge. First attach wins.
    pub fn attach_depth_gauges(&self, gauges: [Arc<Gauge>; NUM_LANES]) {
        let _ = self.depth_gauges.set(gauges);
    }

    /// The attached depth gauge for `domain`'s lane, if any.
    pub fn depth_gauge(&self, domain: Domain) -> Option<&Arc<Gauge>> {
        // lint: allow(panic) — lane_of is always < NUM_LANES, the array length
        self.depth_gauges.get().map(|g| &g[lane_of(domain)])
    }

    /// The per-lane admission-control depth.
    pub fn lane_capacity(&self) -> usize {
        self.lane_capacity
    }

    /// Items currently buffered across all lanes (racy outside tests).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).total()
    }

    /// Whether every lane is currently empty (racy outside tests).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items currently buffered in `domain`'s lane (racy outside tests).
    pub fn lane_len(&self, domain: Domain) -> usize {
        // lint: allow(panic) — lane_of is always < NUM_LANES, the array length
        lock_recover(&self.state).lanes[lane_of(domain)].len()
    }

    /// Attempts to enqueue into `domain`'s lane. Returns immediately —
    /// never blocking — with [`PushError::Full`] when *that lane* is at
    /// capacity (the other lanes are unaffected: a graph burst cannot
    /// consume Hamming's admission budget) or [`PushError::Closed`]
    /// after [`FairQueue::close`].
    pub fn try_push(&self, domain: Domain, item: T) -> Result<(), PushError<T>> {
        let mut state = lock_recover(&self.state);
        if state.closed {
            return Err(PushError::Closed(item));
        }
        // lint: allow(panic) — lane_of is always < NUM_LANES, the array length
        let lane = &mut state.lanes[lane_of(domain)];
        if lane.len() >= self.lane_capacity {
            return Err(PushError::Full(item));
        }
        lane.push_back(item);
        drop(state);
        if let Some(gauges) = self.depth_gauges.get() {
            // lint: allow(panic) — lane_of is always < NUM_LANES, the array length
            gauges[lane_of(domain)].inc();
        }
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until any lane has an item (or the queue is closed), then
    /// assembles one batch of up to `max` items by weighted round-robin:
    /// sweeping lanes from the rotating cursor, each non-empty lane
    /// contributes up to its weight per sweep, until `max` is reached or
    /// every lane is drained. Within a lane order stays FIFO; across
    /// lanes no backlog can starve another lane. Returns `false` when
    /// the queue is closed *and* fully drained.
    pub fn pop_batch(&self, max: usize, out: &mut Vec<T>) -> bool {
        out.clear();
        let max = max.max(1);
        let mut state = lock_recover(&self.state);
        loop {
            if state.total() > 0 {
                let mut taken = [0usize; NUM_LANES];
                while out.len() < max && state.total() > 0 {
                    let li = state.cursor % NUM_LANES;
                    state.cursor = state.cursor.wrapping_add(1);
                    // lint: allow(panic) — li is cursor % NUM_LANES, in bounds for all three arrays
                    let quota = self.weights[li]
                        .load(Ordering::Relaxed)
                        .min(max - out.len());
                    // lint: allow(panic) — li is cursor % NUM_LANES, in bounds
                    let lane = &mut state.lanes[li];
                    let take = quota.min(lane.len());
                    out.extend(lane.drain(..take));
                    // lint: allow(panic) — li is cursor % NUM_LANES, in bounds
                    taken[li] += take;
                }
                drop(state);
                if let Some(gauges) = self.depth_gauges.get() {
                    for (li, &n) in taken.iter().enumerate() {
                        if n > 0 {
                            // lint: allow(panic) — li enumerates a NUM_LANES array
                            gauges[li].sub(n as i64);
                        }
                    }
                }
                return true;
            }
            if state.closed {
                return false;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes every lane: future pushes fail with [`PushError::Closed`],
    /// and consumers unblock once the remaining items are drained.
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.not_empty.notify_all();
    }
}

/// Lane index for a domain ([`Domain::ALL`] order).
pub fn lane_of(domain: Domain) -> usize {
    Domain::ALL
        .iter()
        .position(|&d| d == domain)
        // lint: allow(panic) — Domain::ALL enumerates every variant by construction
        .expect("every domain has a lane")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_fails_fast_when_full() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(
            q.try_push(3),
            Err(PushError::Full(3)),
            "depth-2 queue rejects the third as retryable"
        );
        assert_eq!(q.len(), 2);
        let mut out = Vec::new();
        assert!(q.pop_batch(8, &mut out));
        assert_eq!(out, vec![1, 2], "FIFO order");
        assert!(q.try_push(3).is_ok(), "space freed after drain");
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.try_push(i).expect("under capacity");
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(2, &mut out));
        assert_eq!(out, vec![0, 1]);
        assert!(q.pop_batch(2, &mut out));
        assert_eq!(out, vec![2, 3]);
        assert!(q.pop_batch(2, &mut out));
        assert_eq!(out, vec![4]);
    }

    #[test]
    fn close_unblocks_consumer_after_drain() {
        let q = Arc::new(BoundedQueue::new(4));
        q.try_push(1).expect("under capacity");
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut seen = Vec::new();
                while q.pop_batch(4, &mut out) {
                    seen.append(&mut out);
                }
                seen
            })
        };
        q.close();
        assert_eq!(consumer.join().expect("consumer exits"), vec![1]);
        assert_eq!(
            q.try_push(2),
            Err(PushError::Closed(2)),
            "closed queue rejects pushes terminally, not as Full"
        );
    }

    #[test]
    fn capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert!(!q.is_empty());
    }

    #[test]
    fn push_error_returns_the_item() {
        assert_eq!(PushError::Full(7).into_inner(), 7);
        assert_eq!(PushError::Closed(9).into_inner(), 9);
    }

    // ------------------------------------------------------- FairQueue

    /// `(domain, tag)` items for lane tests.
    fn fq(lane_capacity: usize) -> FairQueue<(Domain, u32)> {
        FairQueue::new(lane_capacity, [1, 1, 1, 1])
    }

    #[test]
    fn fair_admission_is_per_lane() {
        let q = fq(2);
        // Fill the graph lane.
        q.try_push(Domain::Graph, (Domain::Graph, 0)).expect("room");
        q.try_push(Domain::Graph, (Domain::Graph, 1)).expect("room");
        assert!(
            matches!(
                q.try_push(Domain::Graph, (Domain::Graph, 2)),
                Err(PushError::Full(_))
            ),
            "graph lane at capacity"
        );
        // Every other lane still admits: the burst is contained.
        for d in [Domain::Hamming, Domain::Edit, Domain::Set] {
            q.try_push(d, (d, 0))
                .expect("other lanes unaffected by the graph burst");
        }
        assert_eq!(q.lane_len(Domain::Graph), 2);
        assert_eq!(q.lane_len(Domain::Hamming), 1);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn fair_pop_interleaves_a_backlogged_lane() {
        let q = fq(16);
        // 8 graph items queued first, then 2 hamming items.
        for i in 0..8 {
            q.try_push(Domain::Graph, (Domain::Graph, i)).expect("room");
        }
        for i in 0..2 {
            q.try_push(Domain::Hamming, (Domain::Hamming, i))
                .expect("room");
        }
        // A batch of 4 with unit weights must contain hamming items even
        // though graph queued strictly earlier — no FIFO head-of-line.
        let mut out = Vec::new();
        assert!(q.pop_batch(4, &mut out));
        assert_eq!(out.len(), 4);
        let hamming = out.iter().filter(|(d, _)| *d == Domain::Hamming).count();
        assert!(
            hamming >= 1,
            "WRR batch must include the backlogged hamming lane: {out:?}"
        );
        // Lane order stays FIFO: graph items appear in insertion order.
        let graph_tags: Vec<u32> = out
            .iter()
            .filter(|(d, _)| *d == Domain::Graph)
            .map(|&(_, t)| t)
            .collect();
        assert!(graph_tags.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn fair_weights_set_the_mix() {
        // Weights [3, 1, 1, 1]: a sweep takes 3 hamming per 1 of each
        // other lane.
        let q: FairQueue<(Domain, u32)> = FairQueue::new(16, [3, 1, 1, 1]);
        for i in 0..6 {
            q.try_push(Domain::Hamming, (Domain::Hamming, i))
                .expect("room");
            q.try_push(Domain::Graph, (Domain::Graph, i)).expect("room");
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(4, &mut out));
        let hamming = out.iter().filter(|(d, _)| *d == Domain::Hamming).count();
        let graph = out.iter().filter(|(d, _)| *d == Domain::Graph).count();
        assert_eq!((hamming, graph), (3, 1), "weighted shares: {out:?}");
    }

    #[test]
    fn fair_weights_can_be_retuned_live() {
        let q: FairQueue<(Domain, u32)> = FairQueue::new(16, [1, 1, 1, 1]);
        assert_eq!(q.weights(), [1, 1, 1, 1]);
        q.set_weights([3, 1, 1, 0]); // zero clamps to 1 — no lane starves
        assert_eq!(q.weights(), [3, 1, 1, 1]);
        for i in 0..6 {
            q.try_push(Domain::Hamming, (Domain::Hamming, i))
                .expect("room");
            q.try_push(Domain::Graph, (Domain::Graph, i)).expect("room");
        }
        let mut out = Vec::new();
        assert!(q.pop_batch(4, &mut out));
        let hamming = out.iter().filter(|(d, _)| *d == Domain::Hamming).count();
        let graph = out.iter().filter(|(d, _)| *d == Domain::Graph).count();
        assert_eq!(
            (hamming, graph),
            (3, 1),
            "retuned weights drive the mix: {out:?}"
        );
    }

    #[test]
    fn fair_pop_drains_everything_across_batches() {
        let q = fq(64);
        let mut pushed = 0u32;
        for d in Domain::ALL {
            for _ in 0..5 {
                q.try_push(d, (d, pushed)).expect("room");
                pushed += 1;
            }
        }
        q.close();
        let mut seen = Vec::new();
        let mut out = Vec::new();
        while q.pop_batch(3, &mut out) {
            seen.extend(out.iter().map(|&(_, t)| t));
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..pushed).collect::<Vec<_>>());
    }

    #[test]
    fn fair_close_is_terminal_and_unblocks_consumers() {
        let q = Arc::new(fq(4));
        q.try_push(Domain::Set, (Domain::Set, 1)).expect("room");
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut seen = 0;
                while q.pop_batch(4, &mut out) {
                    seen += out.len();
                }
                seen
            })
        };
        q.close();
        assert_eq!(consumer.join().expect("consumer exits"), 1);
        assert!(matches!(
            q.try_push(Domain::Set, (Domain::Set, 2)),
            Err(PushError::Closed(_))
        ));
    }

    #[test]
    fn fair_depth_gauges_track_push_and_pop() {
        let q = fq(8);
        q.attach_depth_gauges(std::array::from_fn(|_| Arc::new(Gauge::new())));
        for i in 0..3 {
            q.try_push(Domain::Graph, (Domain::Graph, i)).expect("room");
        }
        q.try_push(Domain::Edit, (Domain::Edit, 0)).expect("room");
        let read = |d: Domain| q.depth_gauge(d).expect("attached").get();
        assert_eq!(read(Domain::Graph), 3);
        assert_eq!(read(Domain::Edit), 1);
        assert_eq!(read(Domain::Hamming), 0);
        let mut out = Vec::new();
        assert!(q.pop_batch(16, &mut out));
        assert_eq!(out.len(), 4);
        for d in Domain::ALL {
            assert_eq!(read(d), 0, "{d} lane drained");
        }
    }

    #[test]
    fn fair_cursor_rotates_between_batches() {
        // With every lane loaded and batch = 1, consecutive pops must
        // visit different lanes (the cursor advances), not hammer lane 0.
        let q = fq(8);
        for d in Domain::ALL {
            for i in 0..4 {
                q.try_push(d, (d, i)).expect("room");
            }
        }
        let mut out = Vec::new();
        let mut first_domains = Vec::new();
        for _ in 0..4 {
            assert!(q.pop_batch(1, &mut out));
            first_domains.push(out[0].0);
        }
        first_domains.sort_by_key(|d| lane_of(*d));
        assert_eq!(
            first_domains,
            Domain::ALL.to_vec(),
            "four unit batches visit all four lanes"
        );
    }
}
