//! Lane-weight policy: how the [`FairQueue`](crate::queue::FairQueue)
//! decides each domain's share of a dispatch micro-batch.
//!
//! PR 4 hard-coded static weights in `ServerConfig::lane_weights`;
//! this module replaces that with a typed, range-validated policy.
//! The default derives weights from the per-domain cost EMA the engine
//! set already measures (`EngineSet::run_streaming`): cheap domains
//! earn larger shares, expensive domains smaller ones, so a batch
//! costs roughly the same wall-clock no matter which lanes are
//! backlogged. Static weights remain available as an explicit
//! override, and every configuration is validated up front with typed
//! errors (the threshold-validation idiom from SNIPPETS.md) instead of
//! being silently clamped at runtime.

use std::fmt;

use crate::queue::NUM_LANES;

/// Static fallback used while no lane has a cost sample yet, and by
/// [`ServerConfig::default`](crate::server::ServerConfig): the PR 4
/// hand-tuned shares ([`Domain::ALL`](crate::wire::Domain::ALL) order
/// — hamming, editdist, setsim, graph).
pub const DEFAULT_STATIC_WEIGHTS: [usize; NUM_LANES] = [8, 4, 8, 2];

/// How [`FairQueue`](crate::queue::FairQueue) lane weights are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LaneWeightPolicy {
    /// Fixed per-lane shares, set once at startup. Every weight must
    /// be ≥ 1 (a zero share would starve that lane's domain).
    Static([usize; NUM_LANES]),
    /// Derive shares from the measured per-domain cost EMA, retuned
    /// periodically while the server runs.
    CostEma(CostEmaWeights),
}

impl LaneWeightPolicy {
    /// Checks every range invariant, returning the first violation as
    /// a typed error. Called by the server before any thread spawns,
    /// so a bad config fails startup instead of misbehaving live.
    pub fn validate(&self) -> Result<(), WeightConfigError> {
        match self {
            LaneWeightPolicy::Static(weights) => {
                if let Some(lane) = weights.iter().position(|&w| w == 0) {
                    return Err(WeightConfigError::ZeroStaticWeight { lane });
                }
                Ok(())
            }
            LaneWeightPolicy::CostEma(cfg) => cfg.validate(),
        }
    }

    /// The weights to install before any cost sample exists.
    pub fn initial_weights(&self) -> [usize; NUM_LANES] {
        match self {
            LaneWeightPolicy::Static(weights) => *weights,
            LaneWeightPolicy::CostEma(_) => DEFAULT_STATIC_WEIGHTS,
        }
    }
}

impl Default for LaneWeightPolicy {
    fn default() -> Self {
        LaneWeightPolicy::CostEma(CostEmaWeights::default())
    }
}

/// Parameters for cost-EMA-derived lane weights.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostEmaWeights {
    /// Smallest share any lane may receive (≥ 1): even the most
    /// expensive domain keeps making progress every sweep.
    pub floor: usize,
    /// Largest share any lane may receive; the cheapest sampled lane
    /// is pinned here and the others scale down from it. Must satisfy
    /// `floor ≤ ceil ≤ MAX_CEIL`.
    pub ceil: usize,
    /// Retune cadence, in dispatcher batches (> 0). Weight derivation
    /// is a handful of atomic loads, so this mostly bounds how fast
    /// the mix can oscillate under a shifting workload.
    pub refresh_batches: u32,
}

impl CostEmaWeights {
    /// Upper bound on `ceil`: shares beyond this cannot matter because
    /// a micro-batch is at most `micro_batch` (default 16) items.
    pub const MAX_CEIL: usize = 64;

    /// Range-checks the configuration (threshold-validation idiom:
    /// every violated invariant is its own typed error).
    pub fn validate(&self) -> Result<(), WeightConfigError> {
        if self.floor == 0 {
            return Err(WeightConfigError::ZeroFloor);
        }
        if self.ceil < self.floor {
            return Err(WeightConfigError::CeilBelowFloor {
                floor: self.floor,
                ceil: self.ceil,
            });
        }
        if self.ceil > Self::MAX_CEIL {
            return Err(WeightConfigError::CeilTooLarge {
                ceil: self.ceil,
                max: Self::MAX_CEIL,
            });
        }
        if self.refresh_batches == 0 {
            return Err(WeightConfigError::ZeroRefresh);
        }
        Ok(())
    }

    /// Derives per-lane weights from per-lane cost estimates in
    /// nanoseconds (`0` = no sample yet for that lane).
    ///
    /// The cheapest sampled lane gets `ceil`; every other lane gets
    /// `ceil · cheapest / cost`, clamped to `[floor, ceil]` — i.e.
    /// shares are inversely proportional to measured cost, so a sweep
    /// admits roughly equal *work* from every backlogged lane.
    /// Unsampled lanes optimistically get `ceil` until their first
    /// completion reprices them.
    pub fn derive(&self, cost_ns: [u64; NUM_LANES]) -> [usize; NUM_LANES] {
        let cheapest = cost_ns.iter().copied().filter(|&c| c > 0).min();
        let cheapest = match cheapest {
            Some(c) => c,
            None => return [self.ceil; NUM_LANES],
        };
        cost_ns.map(|c| {
            if c == 0 {
                self.ceil
            } else {
                let scaled = (self.ceil as u64).saturating_mul(cheapest) / c.max(1);
                (scaled as usize).clamp(self.floor, self.ceil)
            }
        })
    }
}

impl Default for CostEmaWeights {
    fn default() -> Self {
        CostEmaWeights {
            floor: 1,
            ceil: 8,
            refresh_batches: 32,
        }
    }
}

/// Why a [`LaneWeightPolicy`] failed validation.
#[derive(Debug, PartialEq, Eq)]
pub enum WeightConfigError {
    /// A static weight of 0 would starve that lane's domain forever.
    ZeroStaticWeight {
        /// Offending lane index ([`Domain::ALL`](crate::wire::Domain::ALL) order).
        lane: usize,
    },
    /// `floor` must be ≥ 1 for the same reason.
    ZeroFloor,
    /// `ceil < floor` makes the clamp range empty.
    CeilBelowFloor {
        /// Configured floor.
        floor: usize,
        /// Configured (smaller) ceiling.
        ceil: usize,
    },
    /// `ceil` beyond [`CostEmaWeights::MAX_CEIL`] cannot change batch
    /// composition and indicates a units mistake.
    CeilTooLarge {
        /// Configured ceiling.
        ceil: usize,
        /// The allowed maximum.
        max: usize,
    },
    /// `refresh_batches` of 0 would retune on a modulo-zero cadence.
    ZeroRefresh,
}

impl fmt::Display for WeightConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightConfigError::ZeroStaticWeight { lane } => {
                write!(
                    f,
                    "static lane weight for lane {lane} is 0; every lane needs a share ≥ 1"
                )
            }
            WeightConfigError::ZeroFloor => {
                write!(f, "cost-EMA weight floor is 0; the floor must be ≥ 1")
            }
            WeightConfigError::CeilBelowFloor { floor, ceil } => {
                write!(f, "cost-EMA weight ceil {ceil} is below floor {floor}")
            }
            WeightConfigError::CeilTooLarge { ceil, max } => {
                write!(f, "cost-EMA weight ceil {ceil} exceeds the maximum {max}")
            }
            WeightConfigError::ZeroRefresh => {
                write!(
                    f,
                    "cost-EMA refresh_batches is 0; retune cadence must be ≥ 1 batch"
                )
            }
        }
    }
}

impl std::error::Error for WeightConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_validates() {
        assert_eq!(LaneWeightPolicy::default().validate(), Ok(()));
        assert_eq!(
            LaneWeightPolicy::Static(DEFAULT_STATIC_WEIGHTS).validate(),
            Ok(())
        );
    }

    #[test]
    fn zero_static_weight_is_refused_with_the_lane_index() {
        let err = LaneWeightPolicy::Static([2, 0, 1, 1])
            .validate()
            .expect_err("zero weight");
        assert_eq!(err, WeightConfigError::ZeroStaticWeight { lane: 1 });
        assert!(err.to_string().contains("lane 1"));
    }

    #[test]
    fn range_violations_each_get_a_typed_error() {
        let bad_floor = CostEmaWeights {
            floor: 0,
            ..CostEmaWeights::default()
        };
        assert_eq!(bad_floor.validate(), Err(WeightConfigError::ZeroFloor));

        let inverted = CostEmaWeights {
            floor: 8,
            ceil: 2,
            refresh_batches: 32,
        };
        assert_eq!(
            inverted.validate(),
            Err(WeightConfigError::CeilBelowFloor { floor: 8, ceil: 2 })
        );

        let huge = CostEmaWeights {
            ceil: CostEmaWeights::MAX_CEIL + 1,
            ..CostEmaWeights::default()
        };
        assert_eq!(
            huge.validate(),
            Err(WeightConfigError::CeilTooLarge {
                ceil: CostEmaWeights::MAX_CEIL + 1,
                max: CostEmaWeights::MAX_CEIL,
            })
        );

        let never = CostEmaWeights {
            refresh_batches: 0,
            ..CostEmaWeights::default()
        };
        assert_eq!(never.validate(), Err(WeightConfigError::ZeroRefresh));
    }

    #[test]
    fn derive_is_inverse_to_cost_and_clamped() {
        let cfg = CostEmaWeights {
            floor: 1,
            ceil: 8,
            refresh_batches: 1,
        };
        // Costs 1×, 2×, 4×, 100× the cheapest → shares 8, 4, 2, floor.
        assert_eq!(
            cfg.derive([10_000, 20_000, 40_000, 1_000_000]),
            [8, 4, 2, 1]
        );
    }

    #[test]
    fn derive_treats_unsampled_lanes_optimistically() {
        let cfg = CostEmaWeights::default();
        assert_eq!(cfg.derive([0, 0, 0, 0]), [cfg.ceil; NUM_LANES]);
        // One sampled lane: it is the cheapest, others stay at ceil.
        assert_eq!(
            cfg.derive([0, 5_000, 0, 0]),
            [cfg.ceil, cfg.ceil, cfg.ceil, cfg.ceil]
        );
        // An unsampled lane among sampled ones still gets ceil.
        assert_eq!(cfg.derive([1_000, 0, 2_000, 8_000]), [8, 8, 4, 1]);
    }

    #[test]
    fn initial_weights_fall_back_to_the_static_defaults() {
        assert_eq!(
            LaneWeightPolicy::default().initial_weights(),
            DEFAULT_STATIC_WEIGHTS
        );
        assert_eq!(
            LaneWeightPolicy::Static([1, 2, 3, 4]).initial_weights(),
            [1, 2, 3, 4]
        );
    }
}
